//! Admission control and per-shard accounting.
//!
//! The control plane is deliberately backend-independent: every submission,
//! whatever executor ends up running it, first claims a slot in its target
//! shard's bounded window here. That is what makes the runtime's
//! backpressure and its exactly-once shutdown guarantee uniform across
//! MP-SERVER, HYBCOMB, CC-SYNCH and plain locks.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crossbeam_utils::CachePadded;
use mpsync_telemetry::AtomicLog2Hist;

use crate::config::SubmitPolicy;

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeError {
    /// The runtime is shutting down; no new operations are admitted.
    Closed,
    /// The target shard's submission window is full and the runtime is
    /// configured with [`SubmitPolicy::Fail`](crate::SubmitPolicy::Fail).
    Busy,
    /// The session budget
    /// ([`max_sessions`](crate::RuntimeConfig::max_sessions)) is exhausted.
    SessionsExhausted,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Closed => write!(f, "runtime is closed"),
            RuntimeError::Busy => write!(f, "shard submission window is full"),
            RuntimeError::SessionsExhausted => write!(f, "session budget exhausted"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Per-shard counters. One cache line each so shards don't false-share.
#[derive(Debug, Default)]
pub(crate) struct ShardMetrics {
    /// Operations executed by the shard's dispatcher.
    pub ops: AtomicU64,
    /// Operations admitted through [`Control::admit`].
    pub submitted: AtomicU64,
    /// Submissions refused with [`RuntimeError::Busy`].
    pub rejected: AtomicU64,
    /// Submissions that found the window full at least once before being
    /// admitted (Block policy).
    pub retried: AtomicU64,
    /// Admitted-but-incomplete operations (bounded by `queue_depth`).
    pub inflight: AtomicUsize,
    /// While `true`, submissions to this shard wait (even under the Fail
    /// policy — a pause is transient, bounded by the drain of at most
    /// `queue_depth` in-flight operations). The adaptive executor raises it
    /// to quiesce a shard before swapping its backend mode.
    pub paused: AtomicBool,
    /// Service batches/combining rounds observed.
    pub batches: AtomicU64,
    /// Log2 histogram of batch sizes (always recorded — one update per
    /// batch — independent of the `telemetry` feature).
    pub batch_hist: AtomicLog2Hist,
}

pub(crate) fn spin(spins: &mut u32) {
    *spins = spins.saturating_add(1);
    if *spins < 128 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// The runtime's shared control block: closed flag, session accounting, and
/// the per-shard windows. Backend-independent and non-generic, so sessions
/// can hold it without dragging the state type along.
pub(crate) struct Control {
    /// Once `true`, no submission passes [`Control::admit`]. SeqCst on both
    /// sides (see `admit`) so shutdown's in-flight drain cannot miss an
    /// admitted operation.
    closed: AtomicBool,
    /// Currently live sessions (shutdown waits for zero).
    pub sessions_live: AtomicUsize,
    /// Sessions ever created (the budget for backends whose per-thread
    /// executor slots are not recycled).
    pub sessions_created: AtomicUsize,
    queue_depth: usize,
    submit: SubmitPolicy,
    pub shards: Box<[CachePadded<ShardMetrics>]>,
    /// Per-shard versioned read caches, allocated only when the runtime's
    /// `read_fast` mask is non-empty.
    read: Option<Box<[CachePadded<ReadCache>]>>,
}

impl Control {
    pub fn new(shards: usize, queue_depth: usize, submit: SubmitPolicy) -> Self {
        Self {
            closed: AtomicBool::new(false),
            sessions_live: AtomicUsize::new(0),
            sessions_created: AtomicUsize::new(0),
            queue_depth,
            submit,
            shards: (0..shards).map(|_| CachePadded::default()).collect(),
            read: None,
        }
    }

    /// Allocates a [`ReadCache`] per shard (builder; call before sharing).
    pub fn with_read_cache(mut self) -> Self {
        self.read = Some(
            (0..self.shards.len())
                .map(|_| CachePadded::new(ReadCache::new()))
                .collect(),
        );
        self
    }

    /// The shard's read cache, if the runtime enabled the fast path.
    #[inline]
    pub fn read_cache(&self, shard: usize) -> Option<&ReadCache> {
        self.read.as_ref().map(|r| &*r[shard])
    }

    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    /// Claims an in-flight slot on `shard`, enforcing the bounded window.
    ///
    /// Exactly-once shutdown hinges on the re-check after the CAS: `close()`
    /// stores `closed` with SeqCst and then polls `inflight`. If this
    /// submission's SeqCst load below still reads `closed == false`, the
    /// load is ordered before the store in the single total order, hence so
    /// is our increment — the drain loop must observe the slot until
    /// [`Control::complete`] releases it, i.e. until the operation has been
    /// applied and answered. If the load reads `true`, we back out and the
    /// operation is never sent.
    pub fn admit(&self, shard: usize) -> Result<(), RuntimeError> {
        self.admit_with(shard, || {})
    }

    /// [`Control::admit`] with an `idle` hook invoked on every full-window
    /// wait iteration (Block policy).
    ///
    /// External drivers need this: when a reactor thread both submits
    /// operations and *is* the executor for its own shard, a plain spin
    /// while the window is full could wait on work only the waiter itself
    /// can perform. The hook lets it keep ticking its shard core while
    /// blocked.
    pub fn admit_with(&self, shard: usize, mut idle: impl FnMut()) -> Result<(), RuntimeError> {
        let m = &self.shards[shard];
        let mut counted_retry = false;
        let mut spins = 0u32;
        loop {
            if self.closed.load(Ordering::SeqCst) {
                return Err(RuntimeError::Closed);
            }
            if m.paused.load(Ordering::SeqCst) {
                // A backend swap is quiescing this shard; wait it out. This
                // is deliberately a wait even under the Fail policy: unlike
                // a full window, a pause is not load the caller could shed.
                idle();
                spin(&mut spins);
                continue;
            }
            let cur = m.inflight.load(Ordering::Acquire);
            if cur < self.queue_depth {
                if m.inflight
                    .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    if self.closed.load(Ordering::SeqCst) {
                        m.inflight.fetch_sub(1, Ordering::AcqRel);
                        return Err(RuntimeError::Closed);
                    }
                    if m.paused.load(Ordering::SeqCst) {
                        // Same protocol as the closed re-check: if the
                        // swapper's SeqCst `paused` store precedes this
                        // load, back out so its quiesce poll cannot miss
                        // us; if our load precedes the store, our increment
                        // does too and the poll waits for us.
                        m.inflight.fetch_sub(1, Ordering::AcqRel);
                        idle();
                        spin(&mut spins);
                        continue;
                    }
                    m.submitted.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                continue; // lost the CAS race; re-read
            }
            match self.submit {
                SubmitPolicy::Fail => {
                    m.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(RuntimeError::Busy);
                }
                SubmitPolicy::Block => {
                    if !counted_retry {
                        m.retried.fetch_add(1, Ordering::Relaxed);
                        counted_retry = true;
                    }
                    idle();
                    spin(&mut spins);
                }
            }
        }
    }

    /// Releases the in-flight slot claimed by [`Control::admit`]. Called
    /// after the operation's response has been received.
    pub fn complete(&self, shard: usize) {
        self.shards[shard].inflight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Records one service batch of `n` operations on `shard`.
    pub fn record_batch(&self, shard: usize, n: u64) {
        debug_assert!(n > 0);
        let m = &self.shards[shard];
        m.batches.fetch_add(1, Ordering::Relaxed);
        m.batch_hist.record(n);
    }

    /// Closes `shard`'s admission gate without erroring waiters: new
    /// submissions block until [`Control::unpause`]. SeqCst to pair with the
    /// re-check in [`Control::admit_with`].
    pub fn pause(&self, shard: usize) {
        self.shards[shard].paused.store(true, Ordering::SeqCst);
    }

    /// Reopens a paused shard.
    pub fn unpause(&self, shard: usize) {
        self.shards[shard].paused.store(false, Ordering::SeqCst);
    }

    /// Blocks until `shard`'s window is empty. Only meaningful while the
    /// shard is paused (or the runtime closed) — otherwise new admissions
    /// keep arriving. The SeqCst load pairs with the admit protocol exactly
    /// like [`Control::drain_inflight`]'s.
    pub fn wait_quiesced(&self, shard: usize) {
        let mut spins = 0u32;
        while self.shards[shard].inflight.load(Ordering::SeqCst) != 0 {
            spin(&mut spins);
        }
    }

    /// Blocks until every shard's window is empty. Only meaningful after
    /// [`Control::close`] (otherwise new submissions keep arriving).
    pub fn drain_inflight(&self) {
        for m in self.shards.iter() {
            let mut spins = 0u32;
            while m.inflight.load(Ordering::SeqCst) != 0 {
                spin(&mut spins);
            }
        }
    }

    /// Blocks until every session has been dropped.
    pub fn wait_sessions(&self) {
        let mut spins = 0u32;
        while self.sessions_live.load(Ordering::Acquire) != 0 {
            spin(&mut spins);
        }
    }
}

/// Slots in each shard's read cache (direct-mapped by key hash).
const READ_SLOTS: usize = 64;

struct ReadSlot {
    /// Seqlock sequence: odd while the executor rewrites the slot.
    seq: AtomicU64,
    /// The packed `(key, op)` word this slot caches.
    word: AtomicU64,
    /// The cached return value.
    ret: AtomicU64,
    /// The shard mutation version the value was read under.
    ver: AtomicU64,
}

/// A per-shard versioned snapshot of recently read keys, letting sessions
/// answer read-mostly hot keys (the Zipf head) without a delegation
/// round-trip.
///
/// Single writer, many readers. The *writer* is whatever thread currently
/// executes the shard's dispatches — unique at any instant by the executor's
/// own mutual-exclusion protocol, and across adaptive mode switches by the
/// pause/quiesce swap. It maintains two things:
///
/// * `version`, bumped (SeqCst RMW) **before** any mutating dispatch begins;
/// * per-slot seqlock-published `(word, ret, ver)` tuples recorded after
///   each masked read executes, with `ver` the version it executed under.
///
/// A reader that copies a consistent tuple for its word and then observes
/// `version == ver` (SeqCst) knows no mutation has begun on the shard since
/// the cached read executed, so the cached value is still the key's current
/// value; the read linearizes at the version load. A session's own completed
/// write bumps the version with a happens-before edge to the session (the
/// response hand-off), so the session can never read its own write's
/// pre-image — per-session per-key FIFO holds. Any conflict (torn slot,
/// wrong word, stale version) falls back to normal submission.
pub(crate) struct ReadCache {
    version: AtomicU64,
    slots: Box<[ReadSlot]>,
}

impl ReadCache {
    fn new() -> Self {
        Self {
            version: AtomicU64::new(0),
            slots: (0..READ_SLOTS)
                .map(|_| ReadSlot {
                    seq: AtomicU64::new(0),
                    word: AtomicU64::new(u64::MAX), // matches no packed word
                    ret: AtomicU64::new(0),
                    ver: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    #[inline]
    fn slot_of(word: u64) -> usize {
        // Fibonacci hash; top 6 bits index the direct-mapped table.
        (word.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize
    }

    /// Executor side: marks the start of a mutating dispatch. SeqCst so the
    /// bump and every reader's validation load fall in one total order.
    #[inline]
    pub fn begin_mutation(&self) {
        self.version.fetch_add(1, Ordering::SeqCst);
    }

    /// Executor side: records that reading `word` returned `ret`, valid as
    /// of the current version. Must only be called by the shard's unique
    /// executing thread (the seqlock write side is single-writer).
    #[inline]
    pub fn publish(&self, word: u64, ret: u64) {
        // The executor is the only thread that bumps `version`, so its own
        // Relaxed load is exact.
        let ver = self.version.load(Ordering::Relaxed);
        let s = &self.slots[Self::slot_of(word)];
        let seq = s.seq.load(Ordering::Relaxed);
        s.seq.store(seq.wrapping_add(1), Ordering::Relaxed); // odd: writing
        fence(Ordering::Release);
        s.word.store(word, Ordering::Relaxed);
        s.ret.store(ret, Ordering::Relaxed);
        s.ver.store(ver, Ordering::Relaxed);
        s.seq.store(seq.wrapping_add(2), Ordering::Release); // even: published
    }

    /// Session side: attempts to answer a read of `word` from the cache.
    #[inline]
    pub fn try_read(&self, word: u64) -> Option<u64> {
        let s = &self.slots[Self::slot_of(word)];
        let seq = s.seq.load(Ordering::Acquire);
        if seq & 1 == 1 {
            return None; // writer mid-update
        }
        let w = s.word.load(Ordering::Relaxed);
        let r = s.ret.load(Ordering::Relaxed);
        let v = s.ver.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if s.seq.load(Ordering::Relaxed) != seq || w != word {
            return None; // torn copy or a different key owns the slot
        }
        // The tuple is consistent; it is *current* iff no mutation has
        // begun since it was read (see the type-level argument).
        if self.version.load(Ordering::SeqCst) != v {
            return None;
        }
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_respects_window() {
        let c = Control::new(1, 2, SubmitPolicy::Fail);
        assert!(c.admit(0).is_ok());
        assert!(c.admit(0).is_ok());
        assert_eq!(c.admit(0), Err(RuntimeError::Busy));
        c.complete(0);
        assert!(c.admit(0).is_ok());
        let m = &c.shards[0];
        assert_eq!(m.submitted.load(Ordering::Relaxed), 3);
        assert_eq!(m.rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn closed_rejects_everything() {
        let c = Control::new(2, 8, SubmitPolicy::Block);
        assert!(c.admit(1).is_ok());
        c.close();
        assert_eq!(c.admit(0), Err(RuntimeError::Closed));
        assert_eq!(c.admit(1), Err(RuntimeError::Closed));
        // The pre-close admission still holds its slot until completed.
        assert_eq!(c.shards[1].inflight.load(Ordering::SeqCst), 1);
        c.complete(1);
        c.drain_inflight();
    }

    #[test]
    fn batch_histogram_buckets() {
        use mpsync_telemetry::bucket_of;
        let c = Control::new(1, 1, SubmitPolicy::Fail);
        for n in [1u64, 2, 3, 4, 127, 128, 1000] {
            c.record_batch(0, n);
        }
        let hist = c.shards[0].batch_hist.snapshot();
        assert_eq!(hist.count(), 7);
        assert_eq!(hist.max(), 1000);
        assert_eq!(hist.sum(), 1 + 2 + 3 + 4 + 127 + 128 + 1000);
        // 3 lands with 2 (bucket 2), 127 with 4..=127's top bucket (7).
        assert_eq!(bucket_of(3), bucket_of(2));
        assert_eq!(hist.bucket_count(bucket_of(1)), 1);
        assert_eq!(hist.bucket_count(bucket_of(2)), 2);
        assert_eq!(c.shards[0].batches.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn paused_shard_blocks_even_under_fail_policy() {
        use std::sync::Arc;
        let c = Arc::new(Control::new(1, 4, SubmitPolicy::Fail));
        c.pause(0);
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || c2.admit(0));
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(!t.is_finished(), "admit must wait out a pause, not fail");
        c.unpause(0);
        assert_eq!(t.join().unwrap(), Ok(()));
        // Pauses are not rejections.
        assert_eq!(c.shards[0].rejected.load(Ordering::Relaxed), 0);
        c.complete(0);
    }

    #[test]
    fn quiesce_waits_for_inflight() {
        let c = Control::new(1, 4, SubmitPolicy::Block);
        assert!(c.admit(0).is_ok());
        c.pause(0);
        // Quiesce must not return while the pre-pause admission is live.
        c.complete(0);
        c.wait_quiesced(0);
        c.unpause(0);
        assert!(c.admit(0).is_ok());
        c.complete(0);
    }

    #[test]
    fn read_cache_hits_until_mutation() {
        let c = Control::new(1, 4, SubmitPolicy::Block).with_read_cache();
        let rc = c.read_cache(0).expect("cache allocated");
        assert_eq!(rc.try_read(42), None, "cold cache misses");
        rc.publish(42, 7);
        assert_eq!(rc.try_read(42), Some(7));
        assert_eq!(rc.try_read(43), None, "other words miss");
        rc.begin_mutation();
        assert_eq!(rc.try_read(42), None, "any mutation invalidates");
        rc.publish(42, 9);
        assert_eq!(rc.try_read(42), Some(9));
        // A control plane without the builder has no cache.
        assert!(Control::new(1, 4, SubmitPolicy::Block)
            .read_cache(0)
            .is_none());
    }

    #[test]
    fn block_policy_waits_for_slot() {
        use std::sync::Arc;
        let c = Arc::new(Control::new(1, 1, SubmitPolicy::Block));
        assert!(c.admit(0).is_ok());
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || c2.admit(0));
        std::thread::sleep(std::time::Duration::from_millis(10));
        c.complete(0);
        assert_eq!(t.join().unwrap(), Ok(()));
        assert_eq!(c.shards[0].retried.load(Ordering::Relaxed), 1);
    }
}
