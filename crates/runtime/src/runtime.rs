//! The sharded delegation runtime: N key-partitioned shards, each protected
//! by one critical-section executor, multiplexing many client sessions.

use std::sync::{Arc, Mutex};

use mpsync_core::{wire, ApplyOp, CcSynch, Dispatcher, HybComb, LockCs, McsLock};
use mpsync_telemetry as telemetry;
use mpsync_telemetry::{Algo, Counter, Lane};
use mpsync_udn::{
    Endpoint, EndpointId, Fabric, FabricConfig, CHANNELS_PER_CORE, QUEUE_CAPACITY_WORDS,
};

use crate::adaptive::{
    backend_mode, mode_backend, spawn_controller, AdaptiveAccess, AdaptiveHandle, AdaptiveShard,
    Controller, MpModeDispatch, SlotLease, SlotPool, MODE_MP,
};
use crate::config::{Backend, OpMask, RuntimeConfig};
use crate::control::Control;
use crate::drive::{CoreDrive, DriveShard, ShardDriver};
use crate::router::{pack, shard_for};
use crate::shard::{ShardCore, ShardServer, Ticker};
use crate::stats::RuntimeStats;
use crate::timer::{self, Expire};
use crate::RuntimeError;

/// The keyed critical-section body a runtime executes: `(state, key, op,
/// arg) → result`. The runtime routes by `key`, so unlike the two-word
/// [`Dispatcher`] bodies of `mpsync-core`, the key reaches the body as an
/// explicit word.
///
/// Implemented by every `Fn(&mut S, u64, u64, u64) -> u64` that is `Clone +
/// Send + Sync + 'static` (each shard gets its own copy).
pub trait KeyedDispatch<S>:
    Fn(&mut S, u64, u64, u64) -> u64 + Clone + Send + Sync + 'static
{
}

impl<S, F> KeyedDispatch<S> for F where
    F: Fn(&mut S, u64, u64, u64) -> u64 + Clone + Send + Sync + 'static
{
}

/// The expiry hook a timed runtime threads through every dispatcher: fires
/// the state's due timers under the shard's exclusion (see
/// [`Runtime::new_expiring`]).
pub(crate) type ExpiryHook<S> = Arc<dyn Fn(&mut S) + Send + Sync>;

/// The per-shard [`Dispatcher`] adapter: unpacks the `(key, op)` request
/// word, counts the execution, maintains the shard's read cache (when the
/// fast path is on), runs due timer expirations, and calls the keyed body.
pub(crate) struct RtDispatch<S, F> {
    pub(crate) f: F,
    pub(crate) control: Arc<Control>,
    pub(crate) shard: usize,
    pub(crate) read_fast: OpMask,
    /// Timer pass for expiring states, run before each potentially-mutating
    /// dispatch; `None` for untimed runtimes. This is what makes expiry
    /// work identically on the inline backends (Lock/HybComb/CcSynch) and
    /// in every Adaptive mode: whoever executes the critical section also
    /// sweeps the timers, so expiry is always linearized before the op
    /// that triggered the sweep.
    pub(crate) expire: Option<ExpiryHook<S>>,
}

impl<S, F> Dispatcher<S> for RtDispatch<S, F>
where
    F: KeyedDispatch<S>,
    S: 'static,
{
    #[inline]
    fn dispatch(&self, state: &mut S, word: u64, arg: u64) -> u64 {
        let (key, op) = crate::router::unpack(word);
        self.control.shards[self.shard]
            .ops
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if let Some(cache) = self.control.read_cache(self.shard) {
            if self.read_fast.contains(op) {
                // A masked read mutates nothing: execute it, then publish
                // the result for future fast reads of this word.
                let ret = (self.f)(state, key, op, arg);
                cache.publish(word, ret);
                return ret;
            }
            // Potentially mutating: invalidate *before* touching the state
            // so no fast read can serve a value this dispatch outdates.
            cache.begin_mutation();
        }
        if let Some(expire) = &self.expire {
            // Runs after begin_mutation (expiry mutates the state) and
            // before the op, so the op observes fully-expired state.
            expire(state);
        }
        (self.f)(state, key, op, arg)
    }
}

/// One executor per shard, behind the backend chosen at construction.
enum Executors<S, F: KeyedDispatch<S>>
where
    S: Send + 'static,
{
    Mp {
        fabric: Arc<Fabric>,
        servers: Vec<ShardServer<S>>,
        server_ids: Arc<[EndpointId]>,
    },
    /// MP-SERVER without dedicated threads: each shard core is handed out
    /// once as a [`ShardDriver`]; `slots` get the states back on driver
    /// drop. See [`RuntimeConfig::external_drive`].
    MpExternal {
        fabric: Arc<Fabric>,
        drivers: Mutex<Vec<Option<Box<dyn DriveShard>>>>,
        slots: Vec<Arc<Mutex<Option<S>>>>,
        server_ids: Arc<[EndpointId]>,
    },
    Hyb {
        fabric: Arc<Fabric>,
        combs: Vec<HybComb<S, RtDispatch<S, F>>>,
    },
    Cc {
        execs: Vec<CcSynch<S, RtDispatch<S, F>>>,
    },
    Lock {
        execs: Vec<LockCs<S, McsLock, RtDispatch<S, F>>>,
    },
    /// The adaptive executor: every shard can be served by a lock, a
    /// combiner, or its (always-running) MP server thread, switched live by
    /// the controller or [`Runtime::force_backend`].
    Adaptive {
        fabric: Arc<Fabric>,
        shards: Vec<Arc<AdaptiveShard<S, F>>>,
        servers: Vec<ShardServer<Arc<AdaptiveShard<S, F>>>>,
        server_ids: Arc<[EndpointId]>,
        slots: Arc<SlotPool>,
        controller: Option<Controller>,
    },
}

/// A sharded, batched delegation runtime.
///
/// `Runtime` owns `shards` copies of a sequential state `S`, each protected
/// by its own critical-section executor (the [`Backend`] chosen in
/// [`RuntimeConfig`]), and routes every keyed operation to the shard that
/// owns its key — the generalization of the paper's two-memory-controller
/// address striping (§5.4) to N servicing units. Because a key's operations
/// all execute on one shard and each shard executes in mutual exclusion,
/// per-key operations are linearizable and their per-session order is
/// preserved.
///
/// Clients interact through [`Session`]s (see [`Runtime::session`]); each
/// session may be moved to its own thread.
///
/// ```
/// use mpsync_runtime::{Runtime, RuntimeConfig, Backend};
/// use mpsync_objects::seq::{keyed_counter_dispatch, KeyedCounters};
///
/// let rt = Runtime::new(
///     RuntimeConfig::new(2).with_backend(Backend::Lock),
///     |_shard| KeyedCounters::new(),
///     keyed_counter_dispatch,
/// );
/// let mut s = rt.session().unwrap();
/// assert_eq!(s.submit(7, 0, 0).unwrap(), 0); // fetch-inc key 7
/// assert_eq!(s.submit(7, 0, 0).unwrap(), 1);
/// drop(s);
/// let report = rt.shutdown();
/// assert_eq!(report.stats.total_ops(), 2);
/// ```
pub struct Runtime<S, F>
where
    S: Send + 'static,
    F: KeyedDispatch<S>,
{
    config: RuntimeConfig,
    control: Arc<Control>,
    executors: Executors<S, F>,
}

impl<S, F> Runtime<S, F>
where
    S: Send + 'static,
    F: KeyedDispatch<S>,
{
    /// Builds the runtime: `init(shard)` produces each shard's initial
    /// state, `f` is the keyed critical-section body every shard runs.
    pub fn new(config: RuntimeConfig, init: impl FnMut(usize) -> S, f: F) -> Self {
        Self::build(config, init, f, None)
    }

    fn build(
        config: RuntimeConfig,
        mut init: impl FnMut(usize) -> S,
        f: F,
        timers: Option<TimerWiring<S>>,
    ) -> Self {
        config.validate();
        // Flight-record each shard's executor choice: after a panic or a
        // failed smoke run the first question is "what was this runtime
        // actually running?", and the recorder works with telemetry off.
        // Adaptive is not in `Backend::ALL` (it is a policy over the fixed
        // four); the recorder gives it the next discriminant.
        let backend_disc = match config.backend {
            Backend::Adaptive => Backend::ALL.len() as u64,
            b => Backend::ALL.iter().position(|&x| x == b).unwrap_or(0) as u64,
        };
        for i in 0..config.shards {
            telemetry::flight(
                telemetry::FlightKind::Backend,
                i as u64,
                backend_disc,
                config.external_drive as u64,
            );
        }
        let mut control = Control::new(config.shards, config.queue_depth, config.submit);
        if !config.read_fast.is_empty() {
            control = control.with_read_cache();
        }
        let control = Arc::new(control);
        let hook = timers.as_ref().map(|t| Arc::clone(&t.hook));
        let dispatch = |shard: usize| RtDispatch {
            f: f.clone(),
            control: Arc::clone(&control),
            shard,
            read_fast: config.read_fast,
            expire: hook.clone(),
        };
        let ticker = |shard: usize| timers.as_ref().map(|t| (t.ticker)(&control, shard));
        let executors = match config.backend {
            Backend::MpServer if config.external_drive => {
                let fabric = sized_fabric(&config, config.shards + config.max_sessions);
                let mut drivers = Vec::with_capacity(config.shards);
                let mut slots = Vec::with_capacity(config.shards);
                let mut server_ids = Vec::with_capacity(config.shards);
                for i in 0..config.shards {
                    let ep = fabric.register_any().expect("fabric sized for shards");
                    server_ids.push(ep.id());
                    let mut core = ShardCore::new(
                        ep,
                        init(i),
                        dispatch(i),
                        Arc::clone(&control),
                        i,
                        config.max_batch,
                        config.merge_ops,
                    );
                    if let Some(t) = ticker(i) {
                        core.set_ticker(t);
                    }
                    let slot = Arc::new(Mutex::new(None));
                    drivers
                        .push(Some(Box::new(CoreDrive::new(core, Arc::clone(&slot)))
                            as Box<dyn DriveShard>));
                    slots.push(slot);
                }
                Executors::MpExternal {
                    fabric,
                    drivers: Mutex::new(drivers),
                    slots,
                    server_ids: server_ids.into(),
                }
            }
            Backend::MpServer => {
                let fabric = sized_fabric(&config, config.shards + config.max_sessions);
                let mut servers = Vec::with_capacity(config.shards);
                let mut server_ids = Vec::with_capacity(config.shards);
                for i in 0..config.shards {
                    let ep = fabric.register_any().expect("fabric sized for shards");
                    server_ids.push(ep.id());
                    servers.push(ShardServer::spawn(
                        ep,
                        init(i),
                        dispatch(i),
                        Arc::clone(&control),
                        i,
                        config.max_batch,
                        config.merge_ops,
                        None,
                        ticker(i),
                    ));
                }
                Executors::Mp {
                    fabric,
                    servers,
                    server_ids: server_ids.into(),
                }
            }
            Backend::HybComb => {
                let fabric = sized_fabric(&config, config.shards * config.max_sessions);
                let combs = (0..config.shards)
                    .map(|i| {
                        HybComb::new(config.max_sessions, config.max_batch, init(i), dispatch(i))
                    })
                    .collect();
                Executors::Hyb { fabric, combs }
            }
            Backend::CcSynch => Executors::Cc {
                execs: (0..config.shards)
                    .map(|i| {
                        CcSynch::new(config.max_sessions, config.max_batch, init(i), dispatch(i))
                    })
                    .collect(),
            },
            Backend::Lock => Executors::Lock {
                execs: (0..config.shards)
                    .map(|i| LockCs::new(init(i), dispatch(i)))
                    .collect(),
            },
            Backend::Adaptive => {
                let fabric = sized_fabric(&config, config.shards + config.max_sessions);
                let mut shards = Vec::with_capacity(config.shards);
                let mut servers = Vec::with_capacity(config.shards);
                let mut server_ids = Vec::with_capacity(config.shards);
                for i in 0..config.shards {
                    let ep = fabric.register_any().expect("fabric sized for shards");
                    server_ids.push(ep.id());
                    let sh = Arc::new(AdaptiveShard::new(
                        init(i),
                        dispatch(i),
                        Arc::clone(&control),
                        i,
                        &config,
                    ));
                    // The Mp-mode server runs for the shard's whole life,
                    // but deadline-polling costs a core: gate it on the
                    // shard's mode so that outside Mp mode it sleeps
                    // instead of competing with the lock/comb executors.
                    let gate = {
                        let sh = Arc::clone(&sh);
                        Arc::new(move || sh.mode() == MODE_MP)
                            as Arc<dyn Fn() -> bool + Send + Sync>
                    };
                    // No core-level ticker here: the adaptive server thread
                    // is only the executor while the shard is in Mp mode,
                    // and the swap protocol doesn't quiesce against ticks.
                    // Timed states expire through the dispatch hook
                    // instead, which runs under whichever mode's exclusion
                    // is current.
                    servers.push(ShardServer::spawn(
                        ep,
                        Arc::clone(&sh),
                        MpModeDispatch,
                        Arc::clone(&control),
                        i,
                        config.max_batch,
                        config.merge_ops,
                        Some(gate),
                        None,
                    ));
                    shards.push(sh);
                }
                let controller = config
                    .adaptive_auto
                    .then(|| spawn_controller(shards.clone(), Arc::clone(&control), config));
                Executors::Adaptive {
                    fabric,
                    shards,
                    servers,
                    server_ids: server_ids.into(),
                    slots: SlotPool::new(config.max_sessions),
                    controller,
                }
            }
        };
        Self {
            config,
            control,
            executors,
        }
    }

    /// The configuration this runtime was built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The shard that owns `key` under this runtime's striping.
    pub fn shard_of(&self, key: u64) -> usize {
        shard_for(key, self.config.shards)
    }

    /// Takes ownership of `shard`'s externally-driven executor.
    ///
    /// Returns `Some` exactly once per shard, and only for runtimes built
    /// with [`RuntimeConfig::external_drive`] on the MP-SERVER backend —
    /// every other configuration executes shards itself and returns `None`.
    ///
    /// The returned [`ShardDriver`] must be ticked for submissions routed
    /// to that shard to complete; see [`ShardDriver::tick`] and
    /// [`Session::submit_with`].
    pub fn take_driver(&self, shard: usize) -> Option<ShardDriver> {
        match &self.executors {
            Executors::MpExternal { drivers, .. } => drivers
                .lock()
                .expect("driver registry poisoned")
                .get_mut(shard)?
                .take()
                .map(|inner| ShardDriver::new(shard, inner)),
            _ => None,
        }
    }

    /// Opens a client session.
    ///
    /// At most [`RuntimeConfig::max_sessions`] sessions may be live at once.
    /// For the combining backends (`HybComb`, `CcSynch`) the bound is on
    /// sessions *ever created* — their per-thread executor slots are not
    /// recycled when a session drops.
    pub fn session(&self) -> Result<Session, RuntimeError> {
        use std::sync::atomic::Ordering;
        if self.control.is_closed() {
            return Err(RuntimeError::Closed);
        }
        let max = self.config.max_sessions;
        match self.config.backend {
            Backend::HybComb | Backend::CcSynch => {
                // Lifetime budget: executor handle slots are consumed forever.
                if self
                    .control
                    .sessions_created
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                        (n < max).then_some(n + 1)
                    })
                    .is_err()
                {
                    return Err(RuntimeError::SessionsExhausted);
                }
                self.control.sessions_live.fetch_add(1, Ordering::AcqRel);
            }
            Backend::MpServer | Backend::Lock | Backend::Adaptive => {
                // Concurrency budget: slots are returned on session drop.
                if self
                    .control
                    .sessions_live
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                        (n < max).then_some(n + 1)
                    })
                    .is_err()
                {
                    return Err(RuntimeError::SessionsExhausted);
                }
                self.control
                    .sessions_created
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        let transport = match &self.executors {
            Executors::Mp {
                fabric, server_ids, ..
            }
            | Executors::MpExternal {
                fabric, server_ids, ..
            } => Transport::Mp {
                endpoint: fabric
                    .register_any()
                    .expect("fabric sized for session budget"),
                servers: Arc::clone(server_ids),
            },
            Executors::Hyb { fabric, combs } => Transport::Inline {
                handles: combs
                    .iter()
                    .map(|c| {
                        let ep = fabric
                            .register_any()
                            .expect("fabric sized for session budget");
                        Box::new(c.handle(ep)) as Box<dyn ApplyOp + Send>
                    })
                    .collect(),
            },
            Executors::Cc { execs } => Transport::Inline {
                handles: execs
                    .iter()
                    .map(|e| Box::new(e.handle()) as Box<dyn ApplyOp + Send>)
                    .collect(),
            },
            Executors::Lock { execs } => Transport::Inline {
                handles: execs
                    .iter()
                    .map(|e| Box::new(e.handle()) as Box<dyn ApplyOp + Send>)
                    .collect(),
            },
            Executors::Adaptive {
                fabric,
                shards,
                server_ids,
                slots,
                ..
            } => {
                let lease = slots.acquire();
                Transport::Adaptive {
                    endpoint: fabric
                        .register_any()
                        .expect("fabric sized for session budget"),
                    servers: Arc::clone(server_ids),
                    handles: shards
                        .iter()
                        .map(|sh| {
                            Box::new(AdaptiveHandle::new(Arc::clone(sh), lease.slot))
                                as Box<dyn AdaptiveAccess>
                        })
                        .collect(),
                    _lease: lease,
                }
            }
        };
        Ok(Session {
            control: Arc::clone(&self.control),
            shards: self.config.shards,
            read_fast: self.config.read_fast,
            transport,
        })
    }

    /// Pins `shard` to the fixed backend's execution mode, switching live
    /// (quiesce → install → reopen) and excluding the shard from the
    /// controller's decisions. Returns `false` when this runtime is not
    /// adaptive or `backend` has no adaptive mode (`CcSynch`, `Adaptive`).
    pub fn force_backend(&self, shard: usize, backend: Backend) -> bool {
        if let (Executors::Adaptive { shards, .. }, Some(mode)) =
            (&self.executors, backend_mode(backend))
        {
            shards[shard].force(mode);
            true
        } else {
            false
        }
    }

    /// The fixed backend currently serving `shard`: the live mode for an
    /// adaptive runtime, the configured backend otherwise.
    pub fn shard_backend(&self, shard: usize) -> Backend {
        match &self.executors {
            Executors::Adaptive { shards, .. } => mode_backend(shards[shard].mode()),
            _ => self.config.backend,
        }
    }

    /// Completed backend switches on `shard` (always 0 for fixed backends).
    pub fn swap_epoch(&self, shard: usize) -> u64 {
        match &self.executors {
            Executors::Adaptive { shards, .. } => shards[shard].epoch(),
            _ => 0,
        }
    }

    /// Stops admitting new operations. Operations already admitted still
    /// complete; subsequent submissions fail with
    /// [`RuntimeError::Closed`].
    pub fn close(&self) {
        self.control.close();
    }

    /// Snapshot of the runtime's counters.
    pub fn stats(&self) -> RuntimeStats {
        let mut stats = RuntimeStats::from_control(&self.control);
        match &self.executors {
            Executors::Mp { .. } | Executors::MpExternal { .. } => {
                for s in &mut stats.shards {
                    if s.batches > 0 {
                        s.avg_batch = s.ops as f64 / s.batches as f64;
                    }
                }
            }
            Executors::Hyb { combs, .. } => {
                for (s, c) in stats.shards.iter_mut().zip(combs) {
                    let hs = c.stats();
                    s.batches = hs.rounds;
                    s.avg_batch = hs.combining_rate();
                    s.batch_hist = c.batch_hist();
                }
            }
            Executors::Cc { execs } => {
                for (s, e) in stats.shards.iter_mut().zip(execs) {
                    s.avg_batch = e.combining_rate();
                    s.batch_hist = e.batch_hist();
                    s.batches = s.batch_hist.count();
                }
            }
            Executors::Lock { .. } => {
                for s in &mut stats.shards {
                    s.batches = s.ops;
                    if s.ops > 0 {
                        s.avg_batch = 1.0;
                    }
                }
            }
            Executors::Adaptive { .. } => {
                // Every mode records batches into the control plane (lock
                // ops as batches of one), so the Mp arithmetic applies.
                for s in &mut stats.shards {
                    if s.batches > 0 {
                        s.avg_batch = s.ops as f64 / s.batches as f64;
                    }
                }
            }
        }
        stats
    }

    /// Gracefully shuts the runtime down and returns the final shard states.
    ///
    /// The sequence is: close admissions → drain every in-flight operation
    /// (each admitted operation is applied and answered exactly once) →
    /// wait for every [`Session`] to be dropped → stop the executors.
    ///
    /// Blocks until all sessions are dropped; call from a thread that does
    /// not itself hold one.
    pub fn shutdown(self) -> ShutdownReport<S> {
        self.control.close();
        self.control.drain_inflight();
        self.control.wait_sessions();
        let stats = self.stats();
        let states = match self.executors {
            Executors::Mp { servers, .. } => servers.into_iter().map(ShardServer::stop).collect(),
            Executors::MpExternal { drivers, slots, .. } => {
                // Drop every driver still in the registry (never taken):
                // CoreDrive's Drop parks its state in the slot. Drivers
                // taken by an external loop park theirs when that loop
                // drops them — wait for each slot to fill.
                drop(drivers);
                slots
                    .into_iter()
                    .map(|slot| {
                        let mut spins = 0u32;
                        loop {
                            if let Some(state) = slot.lock().expect("state slot poisoned").take() {
                                return state;
                            }
                            crate::control::spin(&mut spins);
                        }
                    })
                    .collect()
            }
            Executors::Hyb { combs, .. } => combs.into_iter().map(HybComb::into_state).collect(),
            Executors::Cc { execs } => execs.into_iter().map(CcSynch::into_state).collect(),
            Executors::Lock { execs } => execs.into_iter().map(LockCs::into_state).collect(),
            Executors::Adaptive {
                shards,
                servers,
                controller,
                ..
            } => {
                // Stop the controller first: it holds shard Arcs and could
                // otherwise race a switch against teardown.
                if let Some(controller) = controller {
                    controller.stop();
                }
                let arcs: Vec<_> = servers.into_iter().map(ShardServer::stop).collect();
                drop(shards);
                arcs.into_iter()
                    .map(|sh| {
                        Arc::try_unwrap(sh)
                            .ok()
                            .expect("adaptive shard still shared after drain")
                            .into_state()
                    })
                    .collect()
            }
        };
        ShutdownReport { states, stats }
    }
}

/// Per-shard timer plumbing for expiring states (built by
/// [`Runtime::new_expiring`], threaded through [`Runtime::build`]).
struct TimerWiring<S> {
    /// Dispatch-path hook: sweeps due timers before a mutating op.
    hook: ExpiryHook<S>,
    /// Builds the shard-loop ticker for MP-backed shards (idle expiry).
    #[allow(clippy::type_complexity)]
    ticker: Box<dyn Fn(&Arc<Control>, usize) -> Ticker<S>>,
}

impl<S, F> Runtime<S, F>
where
    S: Send + Expire + 'static,
    F: KeyedDispatch<S>,
{
    /// Builds a runtime whose shard states carry timers ([`Expire`]).
    ///
    /// Expiry runs under each shard's mutual exclusion, on two paths:
    ///
    /// * **every backend** — before each potentially-mutating dispatch, the
    ///   executing thread (server, reactor, combiner, lock holder, or any
    ///   Adaptive mode's executor) sweeps timers that have come due;
    /// * **MP-SERVER shards** (threaded or externally driven) — the shard
    ///   loop additionally runs the sweep while *idle*: the blocking tick
    ///   bounds its wait by the nearest deadline, so TTLs fire on time even
    ///   with no traffic. Inline backends have no serving thread, so an
    ///   idle shard's timers wait for the next operation — reads that must
    ///   not observe expired entries should check deadlines themselves
    ///   (the `mpsync-apps` session store does).
    pub fn new_expiring(config: RuntimeConfig, init: impl FnMut(usize) -> S, f: F) -> Self {
        let hook: ExpiryHook<S> = Arc::new(|s: &mut S| {
            if let Some(d) = s.next_deadline_ns() {
                let now = timer::mono_ns();
                if d <= now {
                    s.expire(now);
                }
            }
        });
        let ticker = Box::new(|control: &Arc<Control>, shard: usize| -> Ticker<S> {
            let control = Arc::clone(control);
            Box::new(move |s: &mut S| {
                let next = s.next_deadline_ns()?;
                let now = timer::mono_ns();
                if next > now {
                    return Some(next);
                }
                // Expiry mutates the state outside RtDispatch: invalidate
                // the read cache first, exactly like a mutating dispatch.
                if let Some(cache) = control.read_cache(shard) {
                    cache.begin_mutation();
                }
                s.expire(now);
                s.next_deadline_ns()
            })
        });
        Self::build(config, init, f, Some(TimerWiring { hook, ticker }))
    }
}

/// Sizes the emulated fabric for `endpoints` registrations, with queues deep
/// enough that neither a shard's full admission window nor every session
/// sending at once can deadlock a hardware queue.
fn sized_fabric(config: &RuntimeConfig, endpoints: usize) -> Arc<Fabric> {
    let cores = endpoints.div_ceil(CHANNELS_PER_CORE).max(1);
    let words = wire::REQ_WORDS * (config.queue_depth + config.max_sessions) + wire::REQ_WORDS;
    Arc::new(Fabric::new(
        FabricConfig::new(cores).with_queue_capacity(words.max(QUEUE_CAPACITY_WORDS)),
    ))
}

/// What [`Runtime::shutdown`] returns.
pub struct ShutdownReport<S> {
    /// Final shard states, in shard order.
    pub states: Vec<S>,
    /// Counter snapshot taken after the drain, before executor teardown.
    pub stats: RuntimeStats,
}

/// How a session reaches the shard executors.
enum Transport {
    /// MP-SERVER backend: one private response endpoint, requests addressed
    /// to the per-shard server queues. One endpoint suffices for all shards
    /// because a session submits one operation at a time.
    Mp {
        endpoint: Endpoint,
        servers: Arc<[EndpointId]>,
    },
    /// Inline backends (HybComb / CcSynch / Lock): one executor handle per
    /// shard; the session's own thread runs or delegates the critical
    /// section through it.
    Inline {
        handles: Vec<Box<dyn ApplyOp + Send>>,
    },
    /// Adaptive backend: per-shard handles that apply inline in Lock/Comb
    /// modes and fall through to the wire (like Mp) when the shard's server
    /// owns execution.
    Adaptive {
        endpoint: Endpoint,
        servers: Arc<[EndpointId]>,
        handles: Vec<Box<dyn AdaptiveAccess>>,
        /// The session's combining-record slot, shared by all its handles;
        /// recycled when the session drops.
        _lease: SlotLease,
    },
}

/// A client connection to a [`Runtime`]. Sessions are `Send` — move each to
/// its own thread — and submit one operation at a time.
pub struct Session {
    control: Arc<Control>,
    shards: usize,
    read_fast: OpMask,
    transport: Transport,
}

impl Session {
    /// The shard that owns `key`.
    pub fn shard_of(&self, key: u64) -> usize {
        shard_for(key, self.shards)
    }

    /// Executes `(op, arg)` against `key`'s shard and returns the result.
    ///
    /// Blocks or fails under backpressure according to the runtime's
    /// [`SubmitPolicy`](crate::SubmitPolicy); fails with
    /// [`RuntimeError::Closed`] once the runtime is shutting down.
    ///
    /// # Panics
    ///
    /// Panics if `key` exceeds 56 bits or `op` exceeds 8 bits (see
    /// [`pack`]).
    pub fn submit(&mut self, key: u64, op: u64, arg: u64) -> Result<u64, RuntimeError> {
        let word = pack(key, op); // validate before claiming a slot
        let shard = shard_for(key, self.shards);
        let t0 = telemetry::now_ns();
        if let Some(ret) = self.try_fast_read(shard, word, op, t0) {
            return Ok(ret);
        }
        self.control.admit(shard)?;
        let ret = self.apply_on(shard, word, arg);
        self.control.complete(shard);
        if telemetry::ENABLED {
            // Submit = admission wait + transport + service + reply: the
            // client-observed latency of one runtime operation.
            telemetry::record_span(shard as u32, Algo::Runtime, Lane::Submit, t0);
            telemetry::count(Counter::RuntimeSubmits, 1);
        }
        Ok(ret)
    }

    /// [`Session::submit`] with an `idle` hook invoked on every wait
    /// iteration — both while blocked on admission and while waiting for
    /// the shard's response.
    ///
    /// This is the submission form an externally-driving event loop must
    /// use: a reactor that owns shard A's [`ShardDriver`] and submits an
    /// operation to shard B passes `|| { driver.tick(); }`, so requests
    /// *to* A keep being served while the reactor waits *on* B. Without
    /// the hook, two reactors waiting on each other's shards would
    /// deadlock; with it, every wait still executes the waiter's own
    /// shard, so some chain member always makes progress.
    pub fn submit_with(
        &mut self,
        key: u64,
        op: u64,
        arg: u64,
        mut idle: impl FnMut(),
    ) -> Result<u64, RuntimeError> {
        let word = pack(key, op);
        let shard = shard_for(key, self.shards);
        let t0 = telemetry::now_ns();
        if let Some(ret) = self.try_fast_read(shard, word, op, t0) {
            return Ok(ret);
        }
        self.control.admit_with(shard, &mut idle)?;
        let ret = match &mut self.transport {
            Transport::Mp { endpoint, servers } => {
                Self::wire_apply_with(endpoint, servers[shard], word, arg, &mut idle)
            }
            Transport::Inline { handles } => handles[shard].apply(word, arg),
            Transport::Adaptive {
                endpoint,
                servers,
                handles,
                ..
            } => match handles[shard].try_apply_local(word, arg) {
                Some(ret) => ret,
                None => Self::wire_apply_with(endpoint, servers[shard], word, arg, &mut idle),
            },
        };
        self.control.complete(shard);
        if telemetry::ENABLED {
            telemetry::record_span(shard as u32, Algo::Runtime, Lane::Submit, t0);
            telemetry::count(Counter::RuntimeSubmits, 1);
        }
        Ok(ret)
    }

    /// Executes a multi-key fan-out: each `(key, op, arg)` runs on its own
    /// shard, in deterministic order (ascending shard, then input order),
    /// and the results come back in input order.
    ///
    /// Not transactional: operations on different shards execute
    /// independently, and on error (`Busy`/`Closed` mid-fanout) the
    /// operations already executed stay executed.
    pub fn apply_fanout(&mut self, ops: &[(u64, u64, u64)]) -> Result<Vec<u64>, RuntimeError> {
        let mut order: Vec<usize> = (0..ops.len()).collect();
        order.sort_by_key(|&i| (shard_for(ops[i].0, self.shards), i));
        let mut results = vec![0u64; ops.len()];
        for i in order {
            let (key, op, arg) = ops[i];
            results[i] = self.submit(key, op, arg)?;
        }
        Ok(results)
    }

    fn apply_on(&mut self, shard: usize, word: u64, arg: u64) -> u64 {
        match &mut self.transport {
            Transport::Mp { endpoint, servers } => {
                endpoint
                    .send(
                        servers[shard],
                        &wire::request(endpoint.id().to_word(), word, arg),
                    )
                    .expect("shard server vanished");
                endpoint.receive1()
            }
            Transport::Inline { handles } => handles[shard].apply(word, arg),
            Transport::Adaptive {
                endpoint,
                servers,
                handles,
                ..
            } => match handles[shard].try_apply_local(word, arg) {
                Some(ret) => ret,
                None => {
                    endpoint
                        .send(
                            servers[shard],
                            &wire::request(endpoint.id().to_word(), word, arg),
                        )
                        .expect("shard server vanished");
                    endpoint.receive1()
                }
            },
        }
    }

    /// Wire round-trip with an idle hook on the receive wait.
    fn wire_apply_with(
        endpoint: &mut Endpoint,
        server: EndpointId,
        word: u64,
        arg: u64,
        idle: &mut impl FnMut(),
    ) -> u64 {
        endpoint
            .send(server, &wire::request(endpoint.id().to_word(), word, arg))
            .expect("shard server vanished");
        // Responses are a single word, so a successful try_receive is
        // always complete.
        let mut buf = [0u64; 1];
        let mut spins = 0u32;
        loop {
            if endpoint.try_receive(&mut buf) == 1 {
                break buf[0];
            }
            idle();
            crate::control::spin(&mut spins);
        }
    }

    /// The read-side fast path: answers a masked read from the shard's
    /// versioned snapshot without claiming a slot or entering the executor.
    /// `None` = take the normal path (and count the fallback when the op
    /// was eligible).
    #[inline]
    fn try_fast_read(&self, shard: usize, word: u64, op: u64, t0: u64) -> Option<u64> {
        if !self.read_fast.contains(op) || self.control.is_closed() {
            return None;
        }
        let cache = self.control.read_cache(shard)?;
        match cache.try_read(word) {
            Some(ret) => {
                if telemetry::ENABLED {
                    telemetry::record_span(shard as u32, Algo::Runtime, Lane::Submit, t0);
                    telemetry::count(Counter::RuntimeSubmits, 1);
                    telemetry::count(Counter::RuntimeFastReads, 1);
                }
                Some(ret)
            }
            None => {
                telemetry::count(Counter::RuntimeFastFallbacks, 1);
                None
            }
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.control
            .sessions_live
            .fetch_sub(1, std::sync::atomic::Ordering::AcqRel);
    }
}
