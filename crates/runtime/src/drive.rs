//! Externally-driven shard execution.
//!
//! With [`RuntimeConfig::external_drive`](crate::RuntimeConfig) set, the
//! MP-SERVER backend does not spawn `rt-shard-*` threads. Each shard's
//! [`ShardCore`](crate::shard::ShardCore) is instead handed out exactly once
//! as a [`ShardDriver`] — a type-erased, `Send` handle whose owner calls
//! [`ShardDriver::tick`] from its own event loop. This is how `mpsync-net`'s
//! reactor threads become the paper's servicing cores: the thread that reads
//! a request off a socket is the same thread that executes it, with no
//! cross-core handoff in between.
//!
//! Shard state recovery works through a per-shard *return slot*: dropping a
//! driver parks the shard state in its slot, and
//! [`Runtime::shutdown`](crate::Runtime::shutdown) collects the slots after
//! the usual close → drain → session-wait sequence (waiting, if need be, for
//! drivers still held elsewhere to drop).

use std::sync::{Arc, Mutex};

use mpsync_core::Dispatcher;

use crate::shard::ShardCore;

/// Object-safe driving interface over a typed [`ShardCore`].
pub(crate) trait DriveShard: Send {
    /// Serve every queued request (bounded by the runtime's `max_batch`);
    /// returns the number served.
    fn tick(&mut self) -> u64;
}

/// The typed payload behind a [`ShardDriver`]: the core plus the return
/// slot its state parks in on drop.
pub(crate) struct CoreDrive<S: Send + 'static, D: Dispatcher<S> + Send> {
    core: Option<ShardCore<S, D>>,
    slot: Arc<Mutex<Option<S>>>,
}

impl<S: Send + 'static, D: Dispatcher<S> + Send> CoreDrive<S, D> {
    pub fn new(core: ShardCore<S, D>, slot: Arc<Mutex<Option<S>>>) -> Self {
        Self {
            core: Some(core),
            slot,
        }
    }
}

impl<S: Send + 'static, D: Dispatcher<S> + Send> DriveShard for CoreDrive<S, D> {
    fn tick(&mut self) -> u64 {
        self.core.as_mut().expect("core taken").tick()
    }
}

impl<S: Send + 'static, D: Dispatcher<S> + Send> Drop for CoreDrive<S, D> {
    fn drop(&mut self) {
        if let Some(core) = self.core.take() {
            *self.slot.lock().expect("state slot poisoned") = Some(core.into_state());
        }
    }
}

/// An externally-driven shard executor, obtained from
/// [`Runtime::take_driver`](crate::Runtime::take_driver).
///
/// The owner must call [`ShardDriver::tick`] regularly — queued submissions
/// to this shard complete only when it does. Dropping the driver returns the
/// shard state to the runtime; drop only once the shard is quiescent (the
/// runtime's shutdown drain guarantees this for well-behaved servers).
pub struct ShardDriver {
    shard: usize,
    inner: Box<dyn DriveShard>,
}

impl ShardDriver {
    pub(crate) fn new(shard: usize, inner: Box<dyn DriveShard>) -> Self {
        Self { shard, inner }
    }

    /// The shard index this driver executes.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Serves every request queued to this shard (bounded by the runtime's
    /// `max_batch`); returns the number served. Non-blocking.
    pub fn tick(&mut self) -> u64 {
        self.inner.tick()
    }
}

impl std::fmt::Debug for ShardDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardDriver")
            .field("shard", &self.shard)
            .finish_non_exhaustive()
    }
}
