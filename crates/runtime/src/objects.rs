//! Ready-made sharded objects on top of the runtime: a keyed counter
//! service and a key-value store.

use std::collections::HashMap;

use mpsync_objects::seq::{
    keyed_counter_dispatch, keyed_counter_ops, kv_dispatch, kv_ops, KeyedCounters, KvMap,
};
use mpsync_objects::{Counter, EMPTY};

use crate::runtime::{Runtime, Session, ShutdownReport};
use crate::stats::RuntimeStats;
use crate::{RuntimeConfig, RuntimeError, ShardDriver};

type KeyedCounterFn = fn(&mut KeyedCounters, u64, u64, u64) -> u64;
type KvFn = fn(&mut KvMap, u64, u64, u64) -> u64;

/// Live state drain/load for a sharded service, in the service's own typed
/// entry shape.
///
/// The cluster handoff path (and any other migration machinery) moves a
/// service's contents while it keeps serving. The original implementation
/// was hardcoded to [`ShardedKvStore`]'s `(u64, u64)` pairs; this trait
/// generalizes it so richer objects — the `mpsync-apps` suite's session
/// store, ledger, etc. — drain through the same protocol with their own
/// `Entry` types.
///
/// Implementations must issue the walk through ordinary sessions so the
/// export serializes against concurrent traffic under each shard's mutual
/// exclusion: the result is per-key linearizable, not a global cut.
pub trait StateExport {
    /// One exported record.
    type Entry: Clone + Send + 'static;

    /// Snapshots every live entry while the service keeps serving.
    fn export_entries(&self) -> Result<Vec<Self::Entry>, RuntimeError>;

    /// Loads entries through ordinary writes (last write wins against
    /// concurrent traffic).
    fn import_entries(&self, entries: &[Self::Entry]) -> Result<(), RuntimeError>;
}

/// A sharded family of named `u64` counters: the runtime serving
/// [`keyed_counter_dispatch`], one `KeyedCounters` map per shard.
pub struct ShardedCounter {
    runtime: Runtime<KeyedCounters, KeyedCounterFn>,
}

impl ShardedCounter {
    /// Builds the counter service.
    pub fn new(config: RuntimeConfig) -> Self {
        Self {
            runtime: Runtime::new(config, |_| KeyedCounters::new(), keyed_counter_dispatch),
        }
    }

    /// Opens a client session.
    pub fn session(&self) -> Result<CounterSession, RuntimeError> {
        Ok(CounterSession {
            inner: self.runtime.session()?,
        })
    }

    /// Opens an untyped [`Session`] speaking raw `(key, op, arg)` words —
    /// the form wire-facing frontends (`mpsync-net`) forward verbatim.
    pub fn raw_session(&self) -> Result<Session, RuntimeError> {
        self.runtime.session()
    }

    /// Counter snapshot (delegates to [`Runtime::stats`]).
    pub fn stats(&self) -> RuntimeStats {
        self.runtime.stats()
    }

    /// Number of delegation shards.
    pub fn shards(&self) -> usize {
        self.runtime.config().shards
    }

    /// The shard that owns `key` (delegates to [`Runtime::shard_of`]).
    pub fn shard_of(&self, key: u64) -> usize {
        self.runtime.shard_of(key)
    }

    /// Takes `shard`'s externally-driven executor (delegates to
    /// [`Runtime::take_driver`]).
    pub fn take_driver(&self, shard: usize) -> Option<ShardDriver> {
        self.runtime.take_driver(shard)
    }

    /// Completed backend switches on `shard` — always 0 for fixed
    /// backends (delegates to [`Runtime::swap_epoch`]).
    pub fn swap_epoch(&self, shard: usize) -> u64 {
        self.runtime.swap_epoch(shard)
    }

    /// Stops admissions (delegates to [`Runtime::close`]).
    pub fn close(&self) {
        self.runtime.close();
    }

    /// Shuts down and returns every counter's final value, merged across
    /// shards, plus the stats snapshot.
    pub fn shutdown(self) -> (HashMap<u64, u64>, RuntimeStats) {
        let ShutdownReport { states, stats } = self.runtime.shutdown();
        let mut merged = HashMap::new();
        for shard in states {
            merged.extend(shard);
        }
        (merged, stats)
    }
}

/// A client session of a [`ShardedCounter`].
pub struct CounterSession {
    inner: Session,
}

impl CounterSession {
    /// Fetch-and-increments `key`'s counter; returns the previous value.
    pub fn fetch_inc(&mut self, key: u64) -> Result<u64, RuntimeError> {
        self.inner.submit(key, keyed_counter_ops::INC, 0)
    }

    /// Adds `delta` to `key`'s counter; returns the new value.
    pub fn add(&mut self, key: u64, delta: u64) -> Result<u64, RuntimeError> {
        self.inner.submit(key, keyed_counter_ops::ADD, delta)
    }

    /// Reads `key`'s counter (0 if never touched).
    pub fn get(&mut self, key: u64) -> Result<u64, RuntimeError> {
        self.inner.submit(key, keyed_counter_ops::GET, 0)
    }

    /// Pins the session to one key, yielding a handle that implements the
    /// plain [`Counter`] trait (so lincheck's counter specification and the
    /// generic benches apply unchanged).
    pub fn bind(self, key: u64) -> BoundCounter {
        BoundCounter { session: self, key }
    }
}

/// A [`CounterSession`] pinned to a single key; implements [`Counter`].
pub struct BoundCounter {
    session: CounterSession,
    key: u64,
}

impl BoundCounter {
    /// The key this handle operates on.
    pub fn key(&self) -> u64 {
        self.key
    }
}

impl Counter for BoundCounter {
    fn fetch_inc(&mut self) -> u64 {
        self.session
            .fetch_inc(self.key)
            .expect("runtime closed under a live BoundCounter")
    }
}

/// A sharded `u64 → u64` key-value store: the runtime serving
/// [`kv_dispatch`], one [`KvMap`] per shard.
pub struct ShardedKvStore {
    runtime: Runtime<KvMap, KvFn>,
}

impl ShardedKvStore {
    /// Builds the store.
    pub fn new(config: RuntimeConfig) -> Self {
        Self {
            runtime: Runtime::new(config, |_| KvMap::new(), kv_dispatch),
        }
    }

    /// Opens a client session.
    pub fn session(&self) -> Result<KvSession, RuntimeError> {
        Ok(KvSession {
            inner: self.runtime.session()?,
        })
    }

    /// Opens an untyped [`Session`] speaking raw `(key, op, arg)` words —
    /// the form wire-facing frontends (`mpsync-net`) forward verbatim.
    pub fn raw_session(&self) -> Result<Session, RuntimeError> {
        self.runtime.session()
    }

    /// Counter snapshot (delegates to [`Runtime::stats`]).
    pub fn stats(&self) -> RuntimeStats {
        self.runtime.stats()
    }

    /// Number of delegation shards.
    pub fn shards(&self) -> usize {
        self.runtime.config().shards
    }

    /// The shard that owns `key` (delegates to [`Runtime::shard_of`]).
    pub fn shard_of(&self, key: u64) -> usize {
        self.runtime.shard_of(key)
    }

    /// Takes `shard`'s externally-driven executor (delegates to
    /// [`Runtime::take_driver`]).
    pub fn take_driver(&self, shard: usize) -> Option<ShardDriver> {
        self.runtime.take_driver(shard)
    }

    /// Completed backend switches on `shard` — always 0 for fixed
    /// backends (delegates to [`Runtime::swap_epoch`]).
    pub fn swap_epoch(&self, shard: usize) -> u64 {
        self.runtime.swap_epoch(shard)
    }

    /// Stops admissions (delegates to [`Runtime::close`]).
    pub fn close(&self) {
        self.runtime.close();
    }

    /// Shuts down and returns the whole map, merged across shards, plus the
    /// stats snapshot.
    pub fn shutdown(self) -> (HashMap<u64, u64>, RuntimeStats) {
        let ShutdownReport { states, stats } = self.runtime.shutdown();
        let mut merged = HashMap::new();
        for shard in states {
            merged.extend(shard);
        }
        (merged, stats)
    }

    /// Snapshots every `(key, value)` pair in the store **while it keeps
    /// serving**: a cursor walk (per-shard [`kv_ops::SCAN`] + `GET`) issued
    /// through an ordinary session, so it serializes against concurrent
    /// traffic under each shard's mutual exclusion instead of requiring
    /// shutdown. This is the state-export path cluster handoff uses.
    ///
    /// Entries come out grouped by shard, ascending by key within a shard.
    /// Concurrent writers may land before or after the cursor passes their
    /// key — the snapshot is per-key linearizable, not a global cut.
    pub fn export_entries(&self) -> Result<Vec<(u64, u64)>, RuntimeError> {
        let mut s = self.runtime.session()?;
        let shards = self.shards();
        let mut out = Vec::new();
        for shard in 0..shards {
            let probe = crate::probe_key(shard, shards);
            let mut cursor = 0u64;
            loop {
                let key = s.submit(probe, kv_ops::SCAN, cursor)?;
                if key == EMPTY {
                    break;
                }
                let val = s.submit(key, kv_ops::GET, 0)?;
                if val != EMPTY {
                    out.push((key, val));
                }
                cursor = key + 1;
            }
        }
        Ok(out)
    }

    /// Loads `(key, value)` pairs through ordinary `PUT`s (the inverse of
    /// [`ShardedKvStore::export_entries`], used when a node imports a
    /// transferred slot). Last write wins against concurrent traffic.
    pub fn import_entries(&self, entries: &[(u64, u64)]) -> Result<(), RuntimeError> {
        let mut s = self.runtime.session()?;
        for &(key, val) in entries {
            s.submit(key, kv_ops::PUT, val)?;
        }
        Ok(())
    }
}

/// The generic drain path for the KV store: same wire walk as the
/// inherent methods (which remain for source compatibility with existing
/// callers — the cluster `RuntimeStore` among them).
impl StateExport for ShardedKvStore {
    type Entry = (u64, u64);

    fn export_entries(&self) -> Result<Vec<(u64, u64)>, RuntimeError> {
        ShardedKvStore::export_entries(self)
    }

    fn import_entries(&self, entries: &[(u64, u64)]) -> Result<(), RuntimeError> {
        ShardedKvStore::import_entries(self, entries)
    }
}

/// A client session of a [`ShardedKvStore`].
pub struct KvSession {
    inner: Session,
}

impl KvSession {
    /// Reads `key`.
    pub fn get(&mut self, key: u64) -> Result<Option<u64>, RuntimeError> {
        Ok(decode(self.inner.submit(key, kv_ops::GET, 0)?))
    }

    /// Stores `value` under `key`; returns the previous value.
    pub fn put(&mut self, key: u64, value: u64) -> Result<Option<u64>, RuntimeError> {
        assert_ne!(value, EMPTY, "EMPTY sentinel is not storable");
        Ok(decode(self.inner.submit(key, kv_ops::PUT, value)?))
    }

    /// Removes `key`; returns the removed value.
    pub fn del(&mut self, key: u64) -> Result<Option<u64>, RuntimeError> {
        Ok(decode(self.inner.submit(key, kv_ops::DEL, 0)?))
    }

    /// Adds `delta` to `key`'s value (missing keys start at 0); returns the
    /// new value.
    pub fn add(&mut self, key: u64, delta: u64) -> Result<u64, RuntimeError> {
        self.inner.submit(key, kv_ops::ADD, delta)
    }

    /// Moves `amount` from `from` to `to` via a cross-shard fan-out
    /// (SUB then ADD in deterministic shard order); returns the two new
    /// balances. Not transactional — see [`Session::apply_fanout`].
    pub fn transfer(
        &mut self,
        from: u64,
        to: u64,
        amount: u64,
    ) -> Result<(u64, u64), RuntimeError> {
        let res = self
            .inner
            .apply_fanout(&[(from, kv_ops::SUB, amount), (to, kv_ops::ADD, amount)])?;
        Ok((res[0], res[1]))
    }

    /// Reads many keys in one fan-out; results in input order.
    pub fn multi_get(&mut self, keys: &[u64]) -> Result<Vec<Option<u64>>, RuntimeError> {
        let ops: Vec<(u64, u64, u64)> = keys.iter().map(|&k| (k, kv_ops::GET, 0)).collect();
        Ok(self
            .inner
            .apply_fanout(&ops)?
            .into_iter()
            .map(decode)
            .collect())
    }
}

fn decode(word: u64) -> Option<u64> {
    (word != EMPTY).then_some(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;

    fn small(backend: Backend) -> RuntimeConfig {
        RuntimeConfig::new(2)
            .with_backend(backend)
            .with_max_sessions(2)
            .with_queue_depth(4)
    }

    #[test]
    fn counter_roundtrip_every_backend() {
        for backend in Backend::ALL {
            let svc = ShardedCounter::new(small(backend));
            let mut s = svc.session().unwrap();
            assert_eq!(s.fetch_inc(5).unwrap(), 0, "{backend:?}");
            assert_eq!(s.fetch_inc(5).unwrap(), 1);
            assert_eq!(s.add(9, 10).unwrap(), 10);
            assert_eq!(s.get(5).unwrap(), 2);
            drop(s);
            let (totals, stats) = svc.shutdown();
            assert_eq!(totals.get(&5), Some(&2), "{backend:?}");
            assert_eq!(totals.get(&9), Some(&10));
            assert_eq!(stats.total_ops(), 4);
        }
    }

    #[test]
    fn kv_store_roundtrip_and_fanout() {
        let store = ShardedKvStore::new(small(Backend::MpServer));
        let mut s = store.session().unwrap();
        assert_eq!(s.get(1).unwrap(), None);
        assert_eq!(s.put(1, 100).unwrap(), None);
        assert_eq!(s.put(2, 50).unwrap(), None);
        assert_eq!(s.transfer(1, 2, 30).unwrap(), (70, 80));
        assert_eq!(
            s.multi_get(&[1, 2, 3]).unwrap(),
            vec![Some(70), Some(80), None]
        );
        assert_eq!(s.del(1).unwrap(), Some(70));
        drop(s);
        let (map, _) = store.shutdown();
        assert_eq!(map.get(&2), Some(&80));
        assert_eq!(map.get(&1), None);
    }

    #[test]
    fn kv_export_import_roundtrip_while_live() {
        let store = ShardedKvStore::new(small(Backend::MpServer));
        let mut s = store.session().unwrap();
        let mut expect = Vec::new();
        for k in [0u64, 1, 2, 3, 100, 1000, 54321] {
            s.put(k, k + 7).unwrap();
            expect.push((k, k + 7));
        }
        let mut exported = store.export_entries().unwrap();
        exported.sort_unstable();
        assert_eq!(exported, expect);

        // Import into a second live store reproduces the contents.
        let copy = ShardedKvStore::new(small(Backend::MpServer));
        copy.import_entries(&exported).unwrap();
        let mut s2 = copy.session().unwrap();
        for &(k, v) in &expect {
            assert_eq!(s2.get(k).unwrap(), Some(v));
        }
        drop(s2);
        drop(s);
        let (map, _) = copy.shutdown();
        assert_eq!(map.len(), expect.len());
    }

    #[test]
    fn state_export_trait_drains_generically() {
        // Handoff-style code written against the trait works for any
        // service with an export shape.
        fn clone_service<T: StateExport>(src: &T, dst: &T) {
            let entries = src.export_entries().unwrap();
            dst.import_entries(&entries).unwrap();
        }
        let a = ShardedKvStore::new(small(Backend::Lock));
        let b = ShardedKvStore::new(small(Backend::Lock));
        let mut s = a.session().unwrap();
        for k in [3u64, 9, 27] {
            s.put(k, k * 2).unwrap();
        }
        clone_service(&a, &b);
        let mut s2 = b.session().unwrap();
        for k in [3u64, 9, 27] {
            assert_eq!(s2.get(k).unwrap(), Some(k * 2));
        }
    }

    #[test]
    fn probe_keys_land_on_their_shard() {
        for shards in [1usize, 2, 3, 4, 8] {
            for shard in 0..shards {
                let k = crate::probe_key(shard, shards);
                assert_eq!(crate::shard_for(k, shards), shard, "{shards} shards");
            }
        }
    }

    #[test]
    fn bound_counter_implements_counter_trait() {
        let svc = ShardedCounter::new(small(Backend::Lock));
        let mut bound = svc.session().unwrap().bind(42);
        for i in 0..5 {
            assert_eq!(Counter::fetch_inc(&mut bound), i);
        }
        assert_eq!(bound.key(), 42);
        drop(bound);
        let (totals, _) = svc.shutdown();
        assert_eq!(totals.get(&42), Some(&5));
    }
}
