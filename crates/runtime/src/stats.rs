//! Observability: per-shard and runtime-wide counters.

use crate::control::{Control, BATCH_BUCKETS};
use std::sync::atomic::Ordering;

/// Snapshot of one shard's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStats {
    /// Operations executed by the shard's dispatcher.
    pub ops: u64,
    /// Operations admitted into the shard's window.
    pub submitted: u64,
    /// Submissions refused with [`RuntimeError::Busy`](crate::RuntimeError::Busy).
    pub rejected: u64,
    /// Blocking submissions that found the window full at least once.
    pub retried: u64,
    /// Admitted-but-incomplete operations at snapshot time.
    pub inflight: usize,
    /// Service batches / combining rounds observed. Zero for backends that
    /// do not expose round counts (CC-SYNCH).
    pub batches: u64,
    /// Log2 histogram of batch sizes: bucket *i* counts batches of
    /// `2^i ..= 2^(i+1)-1` operations (last bucket open-ended). Only the
    /// MP-SERVER backend fills this — it is the one with a runtime-owned
    /// serving loop; combining backends report averages instead.
    pub batch_hist: [u64; BATCH_BUCKETS],
    /// Average operations per service batch (the achieved combining
    /// degree; 1.0 for the lock backend by construction).
    pub avg_batch: f64,
}

/// Snapshot of the whole runtime's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeStats {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
}

impl RuntimeStats {
    /// Total operations executed across shards.
    pub fn total_ops(&self) -> u64 {
        self.shards.iter().map(|s| s.ops).sum()
    }

    /// Total submissions refused with `Busy`.
    pub fn total_rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected).sum()
    }

    /// Operation-weighted average batch size across shards.
    pub fn avg_batch(&self) -> f64 {
        let ops = self.total_ops();
        if ops == 0 {
            return 0.0;
        }
        let weighted: f64 = self.shards.iter().map(|s| s.avg_batch * s.ops as f64).sum();
        weighted / ops as f64
    }

    /// Batch-size histogram summed across shards.
    pub fn batch_hist(&self) -> [u64; BATCH_BUCKETS] {
        let mut out = [0u64; BATCH_BUCKETS];
        for s in &self.shards {
            for (o, b) in out.iter_mut().zip(s.batch_hist.iter()) {
                *o += b;
            }
        }
        out
    }

    pub(crate) fn from_control(control: &Control) -> Self {
        let shards = control
            .shards
            .iter()
            .map(|m| {
                let mut batch_hist = [0u64; BATCH_BUCKETS];
                for (o, b) in batch_hist.iter_mut().zip(m.batch_hist.iter()) {
                    *o = b.load(Ordering::Relaxed);
                }
                ShardStats {
                    ops: m.ops.load(Ordering::Relaxed),
                    submitted: m.submitted.load(Ordering::Relaxed),
                    rejected: m.rejected.load(Ordering::Relaxed),
                    retried: m.retried.load(Ordering::Relaxed),
                    inflight: m.inflight.load(Ordering::Relaxed),
                    batches: m.batches.load(Ordering::Relaxed),
                    batch_hist,
                    avg_batch: 0.0,
                }
            })
            .collect();
        Self { shards }
    }
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>5} {:>10} {:>10} {:>8} {:>8} {:>9} {:>9}",
            "shard", "ops", "submitted", "rejected", "retried", "batches", "avg_batch"
        )?;
        for (i, s) in self.shards.iter().enumerate() {
            writeln!(
                f,
                "{:>5} {:>10} {:>10} {:>8} {:>8} {:>9} {:>9.2}",
                i, s.ops, s.submitted, s.rejected, s.retried, s.batches, s.avg_batch
            )?;
        }
        let hist = self.batch_hist();
        if hist.iter().any(|&h| h != 0) {
            write!(f, "batch sizes:")?;
            for (i, h) in hist.iter().enumerate() {
                if *h != 0 {
                    let lo = 1u64 << i;
                    if i == BATCH_BUCKETS - 1 {
                        write!(f, " [{lo}+]={h}")?;
                    } else {
                        write!(f, " [{lo}..{}]={h}", (lo << 1) - 1)?;
                    }
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_over_shards() {
        let stats = RuntimeStats {
            shards: vec![
                ShardStats {
                    ops: 100,
                    rejected: 1,
                    avg_batch: 2.0,
                    batch_hist: [1, 0, 0, 0, 0, 0, 0, 0],
                    ..Default::default()
                },
                ShardStats {
                    ops: 300,
                    rejected: 2,
                    avg_batch: 4.0,
                    batch_hist: [0, 2, 0, 0, 0, 0, 0, 1],
                    ..Default::default()
                },
            ],
        };
        assert_eq!(stats.total_ops(), 400);
        assert_eq!(stats.total_rejected(), 3);
        assert!((stats.avg_batch() - 3.5).abs() < 1e-9);
        assert_eq!(stats.batch_hist(), [1, 2, 0, 0, 0, 0, 0, 1]);
        let shown = stats.to_string();
        assert!(shown.contains("avg_batch"));
        assert!(shown.contains("[128+]=1"));
    }

    #[test]
    fn empty_stats_are_quiet() {
        let stats = RuntimeStats { shards: vec![] };
        assert_eq!(stats.total_ops(), 0);
        assert_eq!(stats.avg_batch(), 0.0);
    }
}
