//! Observability: per-shard and runtime-wide counters.

use crate::control::Control;
use mpsync_telemetry::Log2Hist;
use std::sync::atomic::Ordering;

/// Snapshot of one shard's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStats {
    /// Operations executed by the shard's dispatcher.
    pub ops: u64,
    /// Operations admitted into the shard's window.
    pub submitted: u64,
    /// Submissions refused with [`RuntimeError::Busy`](crate::RuntimeError::Busy).
    pub rejected: u64,
    /// Blocking submissions that found the window full at least once.
    pub retried: u64,
    /// Admitted-but-incomplete operations at snapshot time.
    pub inflight: usize,
    /// Service batches / combining rounds observed.
    pub batches: u64,
    /// Log2 histogram of batch sizes ([`Log2Hist`]). Filled for every
    /// batching backend: the MP-SERVER shard loop records it through the
    /// control plane, and the combining backends (HYBCOMB, CC-SYNCH) record
    /// one entry per combining round inside the executor.
    pub batch_hist: Log2Hist,
    /// Average operations per service batch (the achieved combining
    /// degree; 1.0 for the lock backend by construction).
    pub avg_batch: f64,
}

/// Snapshot of the whole runtime's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeStats {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
}

impl RuntimeStats {
    /// Total operations executed across shards.
    pub fn total_ops(&self) -> u64 {
        self.shards.iter().map(|s| s.ops).sum()
    }

    /// Total submissions refused with `Busy`.
    pub fn total_rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected).sum()
    }

    /// Operation-weighted average batch size across shards.
    pub fn avg_batch(&self) -> f64 {
        let ops = self.total_ops();
        if ops == 0 {
            return 0.0;
        }
        let weighted: f64 = self.shards.iter().map(|s| s.avg_batch * s.ops as f64).sum();
        weighted / ops as f64
    }

    /// Batch-size histogram merged across shards.
    pub fn batch_hist(&self) -> Log2Hist {
        let mut out = Log2Hist::new();
        for s in &self.shards {
            out.merge(&s.batch_hist);
        }
        out
    }

    pub(crate) fn from_control(control: &Control) -> Self {
        let shards = control
            .shards
            .iter()
            .map(|m| ShardStats {
                ops: m.ops.load(Ordering::Relaxed),
                submitted: m.submitted.load(Ordering::Relaxed),
                rejected: m.rejected.load(Ordering::Relaxed),
                retried: m.retried.load(Ordering::Relaxed),
                inflight: m.inflight.load(Ordering::Relaxed),
                batches: m.batches.load(Ordering::Relaxed),
                batch_hist: m.batch_hist.snapshot(),
                avg_batch: 0.0,
            })
            .collect();
        Self { shards }
    }
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>5} {:>10} {:>10} {:>8} {:>8} {:>9} {:>9}",
            "shard", "ops", "submitted", "rejected", "retried", "batches", "avg_batch"
        )?;
        for (i, s) in self.shards.iter().enumerate() {
            writeln!(
                f,
                "{:>5} {:>10} {:>10} {:>8} {:>8} {:>9} {:>9.2}",
                i, s.ops, s.submitted, s.rejected, s.retried, s.batches, s.avg_batch
            )?;
        }
        let hist = self.batch_hist();
        if !hist.is_empty() {
            write!(f, "batch sizes:")?;
            for (lo, hi, n) in hist.nonzero_buckets() {
                if hi == u64::MAX {
                    write!(f, " [{lo}+]={n}")?;
                } else if lo == hi {
                    write!(f, " [{lo}]={n}")?;
                } else {
                    write!(f, " [{lo}..{hi}]={n}")?;
                }
            }
            writeln!(f, " ({})", hist.summary())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_over_shards() {
        let mut h1 = Log2Hist::new();
        h1.record(1);
        let mut h2 = Log2Hist::new();
        h2.record(2);
        h2.record(3);
        h2.record(200);
        let stats = RuntimeStats {
            shards: vec![
                ShardStats {
                    ops: 100,
                    rejected: 1,
                    avg_batch: 2.0,
                    batch_hist: h1,
                    ..Default::default()
                },
                ShardStats {
                    ops: 300,
                    rejected: 2,
                    avg_batch: 4.0,
                    batch_hist: h2,
                    ..Default::default()
                },
            ],
        };
        assert_eq!(stats.total_ops(), 400);
        assert_eq!(stats.total_rejected(), 3);
        assert!((stats.avg_batch() - 3.5).abs() < 1e-9);
        let merged = stats.batch_hist();
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.max(), 200);
        let shown = stats.to_string();
        assert!(shown.contains("avg_batch"));
        assert!(shown.contains("[128..255]=1"), "display: {shown}");
    }

    #[test]
    fn empty_stats_are_quiet() {
        let stats = RuntimeStats { shards: vec![] };
        assert_eq!(stats.total_ops(), 0);
        assert_eq!(stats.avg_batch(), 0.0);
    }
}
