//! Observability: per-shard and runtime-wide counters.

use crate::control::Control;
use mpsync_telemetry::Log2Hist;
use std::sync::atomic::Ordering;

/// Snapshot of one shard's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStats {
    /// Operations executed by the shard's dispatcher.
    pub ops: u64,
    /// Operations admitted into the shard's window.
    pub submitted: u64,
    /// Submissions refused with [`RuntimeError::Busy`](crate::RuntimeError::Busy).
    pub rejected: u64,
    /// Blocking submissions that found the window full at least once.
    pub retried: u64,
    /// Admitted-but-incomplete operations at snapshot time.
    pub inflight: usize,
    /// Service batches / combining rounds observed.
    pub batches: u64,
    /// Log2 histogram of batch sizes ([`Log2Hist`]). Filled for every
    /// batching backend: the MP-SERVER shard loop records it through the
    /// control plane, and the combining backends (HYBCOMB, CC-SYNCH) record
    /// one entry per combining round inside the executor.
    pub batch_hist: Log2Hist,
    /// Average operations per service batch (the achieved combining
    /// degree; 1.0 for the lock backend by construction).
    pub avg_batch: f64,
}

/// Snapshot of the whole runtime's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeStats {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
}

impl RuntimeStats {
    /// Total operations executed across shards.
    pub fn total_ops(&self) -> u64 {
        self.shards.iter().map(|s| s.ops).sum()
    }

    /// Total submissions refused with `Busy`.
    pub fn total_rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected).sum()
    }

    /// Operation-weighted average batch size across shards.
    pub fn avg_batch(&self) -> f64 {
        let ops = self.total_ops();
        if ops == 0 {
            return 0.0;
        }
        let weighted: f64 = self.shards.iter().map(|s| s.avg_batch * s.ops as f64).sum();
        weighted / ops as f64
    }

    /// Batch-size histogram merged across shards.
    pub fn batch_hist(&self) -> Log2Hist {
        let mut out = Log2Hist::new();
        for s in &self.shards {
            out.merge(&s.batch_hist);
        }
        out
    }

    /// Hand-rolled JSON mirroring `TelemetryReport::to_json`'s style (the
    /// repo carries no serde): histograms render as
    /// `{ "count": …, "p50": …, "p95": …, "p99": …, "max": …, "mean": … }`.
    ///
    /// The schema is stable — `netbench` and `runtime_native` embed it in
    /// their machine-readable reports, and a golden test pins it:
    ///
    /// ```json
    /// {
    ///   "total_ops": N, "total_rejected": N, "avg_batch": F,
    ///   "shards": [ { "ops": N, "submitted": N, "rejected": N,
    ///                 "retried": N, "inflight": N, "batches": N,
    ///                 "avg_batch": F, "batch_hist": { … } }, … ]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        fn hist_json(h: &Log2Hist) -> String {
            format!(
                "{{ \"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"mean\": {:.1} }}",
                h.count(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max(),
                h.mean()
            )
        }
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"total_ops\": {},\n  \"total_rejected\": {},\n  \"avg_batch\": {:.2},\n  \"shards\": [",
            self.total_ops(),
            self.total_rejected(),
            self.avg_batch()
        ));
        for (i, sh) in self.shards.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{ \"ops\": {}, \"submitted\": {}, \"rejected\": {}, \"retried\": {}, \"inflight\": {}, \"batches\": {}, \"avg_batch\": {:.2}, \"batch_hist\": {} }}",
                sh.ops,
                sh.submitted,
                sh.rejected,
                sh.retried,
                sh.inflight,
                sh.batches,
                sh.avg_batch,
                hist_json(&sh.batch_hist)
            ));
        }
        if !self.shards.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}");
        s
    }

    pub(crate) fn from_control(control: &Control) -> Self {
        let shards = control
            .shards
            .iter()
            .map(|m| ShardStats {
                ops: m.ops.load(Ordering::Relaxed),
                submitted: m.submitted.load(Ordering::Relaxed),
                rejected: m.rejected.load(Ordering::Relaxed),
                retried: m.retried.load(Ordering::Relaxed),
                inflight: m.inflight.load(Ordering::Relaxed),
                batches: m.batches.load(Ordering::Relaxed),
                batch_hist: m.batch_hist.snapshot(),
                avg_batch: 0.0,
            })
            .collect();
        Self { shards }
    }
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>5} {:>10} {:>10} {:>8} {:>8} {:>9} {:>9}",
            "shard", "ops", "submitted", "rejected", "retried", "batches", "avg_batch"
        )?;
        for (i, s) in self.shards.iter().enumerate() {
            writeln!(
                f,
                "{:>5} {:>10} {:>10} {:>8} {:>8} {:>9} {:>9.2}",
                i, s.ops, s.submitted, s.rejected, s.retried, s.batches, s.avg_batch
            )?;
        }
        let hist = self.batch_hist();
        if !hist.is_empty() {
            write!(f, "batch sizes:")?;
            for (lo, hi, n) in hist.nonzero_buckets() {
                if hi == u64::MAX {
                    write!(f, " [{lo}+]={n}")?;
                } else if lo == hi {
                    write!(f, " [{lo}]={n}")?;
                } else {
                    write!(f, " [{lo}..{hi}]={n}")?;
                }
            }
            writeln!(f, " ({})", hist.summary())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_over_shards() {
        let mut h1 = Log2Hist::new();
        h1.record(1);
        let mut h2 = Log2Hist::new();
        h2.record(2);
        h2.record(3);
        h2.record(200);
        let stats = RuntimeStats {
            shards: vec![
                ShardStats {
                    ops: 100,
                    rejected: 1,
                    avg_batch: 2.0,
                    batch_hist: h1,
                    ..Default::default()
                },
                ShardStats {
                    ops: 300,
                    rejected: 2,
                    avg_batch: 4.0,
                    batch_hist: h2,
                    ..Default::default()
                },
            ],
        };
        assert_eq!(stats.total_ops(), 400);
        assert_eq!(stats.total_rejected(), 3);
        assert!((stats.avg_batch() - 3.5).abs() < 1e-9);
        let merged = stats.batch_hist();
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.max(), 200);
        let shown = stats.to_string();
        assert!(shown.contains("avg_batch"));
        assert!(shown.contains("[128..255]=1"), "display: {shown}");
    }

    #[test]
    fn empty_stats_are_quiet() {
        let stats = RuntimeStats { shards: vec![] };
        assert_eq!(stats.total_ops(), 0);
        assert_eq!(stats.avg_batch(), 0.0);
        assert_eq!(
            stats.to_json(),
            "{\n  \"total_ops\": 0,\n  \"total_rejected\": 0,\n  \"avg_batch\": 0.00,\n  \"shards\": []\n}"
        );
    }

    /// Golden test: the JSON schema is a stable machine interface consumed
    /// by `netbench` and `runtime_native`. If this fails, you changed the
    /// schema — update every consumer (and this string) deliberately.
    #[test]
    fn json_schema_is_stable() {
        let mut h = Log2Hist::new();
        for v in [2u64, 3, 8] {
            h.record(v);
        }
        let stats = RuntimeStats {
            shards: vec![
                ShardStats {
                    ops: 10,
                    submitted: 12,
                    rejected: 2,
                    retried: 1,
                    inflight: 0,
                    batches: 3,
                    avg_batch: 3.333,
                    batch_hist: h,
                },
                ShardStats::default(),
            ],
        };
        let golden = concat!(
            "{\n",
            "  \"total_ops\": 10,\n",
            "  \"total_rejected\": 2,\n",
            "  \"avg_batch\": 3.33,\n",
            "  \"shards\": [\n",
            "    { \"ops\": 10, \"submitted\": 12, \"rejected\": 2, \"retried\": 1, \"inflight\": 0, ",
            "\"batches\": 3, \"avg_batch\": 3.33, ",
            "\"batch_hist\": { \"count\": 3, \"p50\": 3, \"p95\": 8, \"p99\": 8, \"max\": 8, \"mean\": 4.3 } },\n",
            "    { \"ops\": 0, \"submitted\": 0, \"rejected\": 0, \"retried\": 0, \"inflight\": 0, ",
            "\"batches\": 0, \"avg_batch\": 0.00, ",
            "\"batch_hist\": { \"count\": 0, \"p50\": 0, \"p95\": 0, \"p99\": 0, \"max\": 0, \"mean\": 0.0 } }\n",
            "  ]\n",
            "}"
        );
        assert_eq!(stats.to_json(), golden);
    }
}
