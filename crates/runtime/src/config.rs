//! Runtime configuration: shard count, backend choice, combining degree,
//! and admission control.

/// Which critical-section executor serves each shard.
///
/// All four run the *same* shard workload behind the same
/// [`Session`](crate::Session) API — the runtime is generic over the paper's
/// [`ApplyOp`](mpsync_core::ApplyOp) executors, so deployments can pick the
/// construction that fits their machine (message-passing delegation,
/// combining, or a plain lock) without touching application code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// A dedicated batched server thread per shard over `udn` message
    /// queues (the paper's MP-SERVER shape, §4.1, plus runtime batching).
    MpServer,
    /// HYBCOMB combining per shard (§4.2): sessions take combiner duty,
    /// no dedicated threads.
    HybComb,
    /// CC-SYNCH combining per shard (shared-memory baseline).
    CcSynch,
    /// A plain MCS-lock critical section per shard (classical baseline).
    Lock,
}

impl Backend {
    /// Every backend, in the order benches sweep them.
    pub const ALL: [Backend; 4] = [
        Backend::MpServer,
        Backend::HybComb,
        Backend::CcSynch,
        Backend::Lock,
    ];

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Backend::MpServer => "mp-server",
            Backend::HybComb => "hybcomb",
            Backend::CcSynch => "cc-synch",
            Backend::Lock => "lock",
        }
    }
}

/// What a session does when its target shard's submission window is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitPolicy {
    /// Wait (spin → yield) for a slot; the call never fails with `Busy`.
    Block,
    /// Fail fast with [`RuntimeError::Busy`](crate::RuntimeError::Busy) so
    /// the caller can shed load or retry with its own policy.
    Fail,
}

/// Configuration for a [`Runtime`](crate::Runtime).
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Number of delegation shards (key partitions). Each shard owns the
    /// keys [`shard_for`](crate::shard_for) routes to it.
    pub shards: usize,
    /// Executor backend serving every shard.
    pub backend: Backend,
    /// Maximum operations a shard services per batch/combining round — the
    /// paper's `MAX_OPS` knob (§5.1, Figure 3c) surfaced as runtime config.
    pub max_batch: u64,
    /// Maximum operations admitted-but-incomplete per shard. Submissions
    /// beyond this bound block or fail per [`RuntimeConfig::submit`]; the
    /// runtime never queues unboundedly.
    pub queue_depth: usize,
    /// Maximum concurrently live [`Session`](crate::Session)s. Sizes the
    /// message fabric and the combining constructions up front.
    pub max_sessions: usize,
    /// Behaviour when a shard's submission window is full.
    pub submit: SubmitPolicy,
    /// When `true` and the backend is [`Backend::MpServer`], the runtime
    /// does **not** spawn shard server threads. Instead each shard's
    /// executor is handed out once as a [`ShardDriver`](crate::ShardDriver)
    /// via [`Runtime::take_driver`](crate::Runtime::take_driver), and some
    /// external event loop (e.g. an `mpsync-net` reactor) must tick it.
    /// Ignored by the inline backends (HybComb / CcSynch / Lock), which
    /// already execute on the submitting thread.
    pub external_drive: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            backend: Backend::MpServer,
            max_batch: 64,
            queue_depth: 32,
            max_sessions: 8,
            submit: SubmitPolicy::Block,
            external_drive: false,
        }
    }
}

impl RuntimeConfig {
    /// Default configuration with the given shard count.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }

    /// Selects the executor backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the per-shard batching bound (`MAX_OPS`).
    pub fn with_max_batch(mut self, max_batch: u64) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the per-shard submission window.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the session capacity.
    pub fn with_max_sessions(mut self, sessions: usize) -> Self {
        self.max_sessions = sessions;
        self
    }

    /// Sets the full-window submission policy.
    pub fn with_submit(mut self, submit: SubmitPolicy) -> Self {
        self.submit = submit;
        self
    }

    /// Hands shard execution to an external driver (see
    /// [`RuntimeConfig::external_drive`]).
    pub fn with_external_drive(mut self, external: bool) -> Self {
        self.external_drive = external;
        self
    }

    pub(crate) fn validate(&self) {
        assert!(self.shards > 0, "runtime needs at least one shard");
        assert!(self.max_batch > 0, "max_batch must be positive");
        assert!(self.queue_depth > 0, "queue_depth must be positive");
        assert!(self.max_sessions > 0, "runtime needs session capacity");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = RuntimeConfig::new(8)
            .with_backend(Backend::HybComb)
            .with_max_batch(200)
            .with_queue_depth(16)
            .with_max_sessions(4)
            .with_submit(SubmitPolicy::Fail);
        assert_eq!(c.shards, 8);
        assert_eq!(c.backend, Backend::HybComb);
        assert_eq!(c.max_batch, 200);
        assert_eq!(c.queue_depth, 16);
        assert_eq!(c.max_sessions, 4);
        assert_eq!(c.submit, SubmitPolicy::Fail);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        RuntimeConfig::new(0).validate();
    }
}
