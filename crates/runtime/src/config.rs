//! Runtime configuration: shard count, backend choice, combining degree,
//! and admission control.

/// Which critical-section executor serves each shard.
///
/// All four run the *same* shard workload behind the same
/// [`Session`](crate::Session) API — the runtime is generic over the paper's
/// [`ApplyOp`](mpsync_core::ApplyOp) executors, so deployments can pick the
/// construction that fits their machine (message-passing delegation,
/// combining, or a plain lock) without touching application code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// A dedicated batched server thread per shard over `udn` message
    /// queues (the paper's MP-SERVER shape, §4.1, plus runtime batching).
    MpServer,
    /// HYBCOMB combining per shard (§4.2): sessions take combiner duty,
    /// no dedicated threads.
    HybComb,
    /// CC-SYNCH combining per shard (shared-memory baseline).
    CcSynch,
    /// A plain MCS-lock critical section per shard (classical baseline).
    Lock,
    /// Per-shard adaptive executor: starts on a lock and live-switches each
    /// shard between lock, combining, and MP-SERVER modes as observed
    /// contention changes (the paper's "no single construction wins
    /// everywhere" conclusion, closed as a runtime control loop).
    Adaptive,
}

impl Backend {
    /// Every *fixed* backend, in the order benches sweep them.
    ///
    /// [`Backend::Adaptive`] is deliberately not listed: it is a policy over
    /// these four, and sweeps compare it *against* them rather than
    /// alongside them.
    pub const ALL: [Backend; 4] = [
        Backend::MpServer,
        Backend::HybComb,
        Backend::CcSynch,
        Backend::Lock,
    ];

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Backend::MpServer => "mp-server",
            Backend::HybComb => "hybcomb",
            Backend::CcSynch => "cc-synch",
            Backend::Lock => "lock",
            Backend::Adaptive => "adaptive",
        }
    }
}

/// A set of opcodes (0..=255), used to mark which operations are safe for
/// the runtime's read-side fast path and which may be merged inside a batch.
///
/// The default mask is empty: both optimisations are strictly opt-in because
/// they rely on semantic contracts the runtime cannot check (see
/// [`RuntimeConfig::read_fast`] and [`RuntimeConfig::merge_ops`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpMask([u64; 4]);

impl OpMask {
    /// The empty mask (no opcodes marked).
    pub const EMPTY: OpMask = OpMask([0; 4]);

    /// Builds a mask from the given opcodes.
    ///
    /// # Panics
    ///
    /// Panics if any opcode is ≥ 256 (the router packs opcodes into 8 bits).
    pub fn of(ops: &[u8]) -> Self {
        let mut words = [0u64; 4];
        for &op in ops {
            words[(op >> 6) as usize] |= 1u64 << (op & 63);
        }
        Self(words)
    }

    /// Whether `op` is in the mask. Opcodes ≥ 256 are never in any mask.
    #[inline]
    pub fn contains(self, op: u64) -> bool {
        op < 256 && self.0[(op >> 6) as usize] & (1u64 << (op & 63)) != 0
    }

    /// Whether no opcode is marked.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == [0; 4]
    }
}

/// What a session does when its target shard's submission window is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitPolicy {
    /// Wait (spin → yield) for a slot; the call never fails with `Busy`.
    Block,
    /// Fail fast with [`RuntimeError::Busy`](crate::RuntimeError::Busy) so
    /// the caller can shed load or retry with its own policy.
    Fail,
}

/// Configuration for a [`Runtime`](crate::Runtime).
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Number of delegation shards (key partitions). Each shard owns the
    /// keys [`shard_for`](crate::shard_for) routes to it.
    pub shards: usize,
    /// Executor backend serving every shard.
    pub backend: Backend,
    /// Maximum operations a shard services per batch/combining round — the
    /// paper's `MAX_OPS` knob (§5.1, Figure 3c) surfaced as runtime config.
    pub max_batch: u64,
    /// Maximum operations admitted-but-incomplete per shard. Submissions
    /// beyond this bound block or fail per [`RuntimeConfig::submit`]; the
    /// runtime never queues unboundedly.
    pub queue_depth: usize,
    /// Maximum concurrently live [`Session`](crate::Session)s. Sizes the
    /// message fabric and the combining constructions up front.
    pub max_sessions: usize,
    /// Behaviour when a shard's submission window is full.
    pub submit: SubmitPolicy,
    /// When `true` and the backend is [`Backend::MpServer`], the runtime
    /// does **not** spawn shard server threads. Instead each shard's
    /// executor is handed out once as a [`ShardDriver`](crate::ShardDriver)
    /// via [`Runtime::take_driver`](crate::Runtime::take_driver), and some
    /// external event loop (e.g. an `mpsync-net` reactor) must tick it.
    /// Ignored by the inline backends (HybComb / CcSynch / Lock), which
    /// already execute on the submitting thread.
    pub external_drive: bool,
    /// Opcodes answerable from the per-shard read cache without entering
    /// the executor at all.
    ///
    /// **Contract:** a masked opcode must be a pure read of its key's value
    /// — for a given state, `dispatch(word, arg)` returns the key's current
    /// value and mutates nothing, for any `arg`. The runtime publishes a
    /// versioned `(word, value)` snapshot after each such read and answers
    /// repeat reads from it while no mutation has *started* since; any
    /// conflict falls back to normal delegation.
    pub read_fast: OpMask,
    /// Opcodes the shard loop may merge within one batch.
    ///
    /// **Contract:** a masked opcode must be fetch-add-shaped — for word
    /// `w`: `dispatch(w, a)` performs `v' = v ⊞ a` (wrapping add) and
    /// returns the *old* value `v`. The shard merges same-word runs into a
    /// single dispatch of the wrapped sum and reconstructs each caller's
    /// return value as `old ⊞ (sum of earlier args in the run)`.
    pub merge_ops: OpMask,
    /// When the backend is [`Backend::Adaptive`]: spawn the contention
    /// controller thread that samples each shard and switches modes
    /// automatically. With `false`, shards stay in their current mode until
    /// [`Runtime::force_backend`](crate::Runtime::force_backend) moves them.
    pub adaptive_auto: bool,
    /// Controller sampling interval in microseconds. The controller
    /// sub-samples occupancy 4× per interval, so its wakeup rate is
    /// `4 / interval` — keep the interval in the milliseconds for
    /// production runtimes (timer wakeups cost real CPU on virtualized
    /// hosts); contention regimes shift on far coarser timescales anyway.
    pub adaptive_interval_us: u64,
    /// Consecutive agreeing samples required before the controller switches
    /// a shard (hysteresis: one noisy interval never flips a mode).
    pub adaptive_confirm: u32,
    /// Mean in-flight occupancy (EWMA, in operations) at or below which a
    /// shard is considered uncontended → lock mode.
    pub adaptive_low: f64,
    /// Mean in-flight occupancy at or above which a shard is considered
    /// heavily contended → MP-SERVER mode. Between `adaptive_low` and this,
    /// the controller picks combining.
    pub adaptive_high: f64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            backend: Backend::MpServer,
            max_batch: 64,
            queue_depth: 32,
            max_sessions: 8,
            submit: SubmitPolicy::Block,
            external_drive: false,
            read_fast: OpMask::EMPTY,
            merge_ops: OpMask::EMPTY,
            adaptive_auto: true,
            adaptive_interval_us: 5_000,
            adaptive_confirm: 4,
            adaptive_low: 1.25,
            adaptive_high: 4.0,
        }
    }
}

impl RuntimeConfig {
    /// Default configuration with the given shard count.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }

    /// Selects the executor backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the per-shard batching bound (`MAX_OPS`).
    pub fn with_max_batch(mut self, max_batch: u64) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the per-shard submission window.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the session capacity.
    pub fn with_max_sessions(mut self, sessions: usize) -> Self {
        self.max_sessions = sessions;
        self
    }

    /// Sets the full-window submission policy.
    pub fn with_submit(mut self, submit: SubmitPolicy) -> Self {
        self.submit = submit;
        self
    }

    /// Hands shard execution to an external driver (see
    /// [`RuntimeConfig::external_drive`]).
    pub fn with_external_drive(mut self, external: bool) -> Self {
        self.external_drive = external;
        self
    }

    /// Marks opcodes for the read-side fast path (see
    /// [`RuntimeConfig::read_fast`] for the required contract).
    pub fn with_read_fast(mut self, mask: OpMask) -> Self {
        self.read_fast = mask;
        self
    }

    /// Marks opcodes for in-batch merging (see [`RuntimeConfig::merge_ops`]
    /// for the required contract).
    pub fn with_merge_ops(mut self, mask: OpMask) -> Self {
        self.merge_ops = mask;
        self
    }

    /// Enables or disables the adaptive controller thread.
    pub fn with_adaptive_auto(mut self, auto: bool) -> Self {
        self.adaptive_auto = auto;
        self
    }

    /// Tunes the adaptive controller: sampling interval (µs), confirmation
    /// streak, and the low/high occupancy thresholds.
    pub fn with_adaptive_thresholds(
        mut self,
        interval_us: u64,
        confirm: u32,
        low: f64,
        high: f64,
    ) -> Self {
        self.adaptive_interval_us = interval_us;
        self.adaptive_confirm = confirm;
        self.adaptive_low = low;
        self.adaptive_high = high;
        self
    }

    pub(crate) fn validate(&self) {
        assert!(self.shards > 0, "runtime needs at least one shard");
        assert!(self.max_batch > 0, "max_batch must be positive");
        assert!(self.queue_depth > 0, "queue_depth must be positive");
        assert!(self.max_sessions > 0, "runtime needs session capacity");
        if self.backend == Backend::Adaptive {
            assert!(
                self.adaptive_interval_us > 0,
                "adaptive interval must be positive"
            );
            assert!(self.adaptive_confirm > 0, "adaptive confirm must be ≥ 1");
            assert!(
                self.adaptive_low <= self.adaptive_high,
                "adaptive_low must not exceed adaptive_high"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = RuntimeConfig::new(8)
            .with_backend(Backend::HybComb)
            .with_max_batch(200)
            .with_queue_depth(16)
            .with_max_sessions(4)
            .with_submit(SubmitPolicy::Fail);
        assert_eq!(c.shards, 8);
        assert_eq!(c.backend, Backend::HybComb);
        assert_eq!(c.max_batch, 200);
        assert_eq!(c.queue_depth, 16);
        assert_eq!(c.max_sessions, 4);
        assert_eq!(c.submit, SubmitPolicy::Fail);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        RuntimeConfig::new(0).validate();
    }

    #[test]
    fn op_mask_membership() {
        let m = OpMask::of(&[0, 7, 63, 64, 200, 255]);
        for op in 0..256u64 {
            let expect = matches!(op, 0 | 7 | 63 | 64 | 200 | 255);
            assert_eq!(m.contains(op), expect, "op {op}");
        }
        // Words above the opcode space never match, even with low bits set.
        assert!(!m.contains(256));
        assert!(!m.contains(u64::MAX));
        assert!(OpMask::EMPTY.is_empty());
        assert!(!m.is_empty());
    }

    #[test]
    fn adaptive_defaults_validate() {
        RuntimeConfig::new(2)
            .with_backend(Backend::Adaptive)
            .validate();
        assert_eq!(Backend::Adaptive.label(), "adaptive");
        // The fixed-backend sweep list must not grow Adaptive implicitly.
        assert!(!Backend::ALL.contains(&Backend::Adaptive));
    }

    #[test]
    #[should_panic(expected = "adaptive_low")]
    fn inverted_adaptive_thresholds_rejected() {
        RuntimeConfig::new(1)
            .with_backend(Backend::Adaptive)
            .with_adaptive_thresholds(500, 4, 8.0, 2.0)
            .validate();
    }
}
