//! A hierarchical timer wheel driven from the shard serve loop.
//!
//! TTL-style applications (the `mpsync-apps` session store) need deadlines
//! that fire *inside* a shard's mutual exclusion, without a dedicated timer
//! thread racing the executor. The runtime's answer mirrors the kernel's
//! classic design: a hierarchical wheel of [`LEVELS`] levels × [`SLOTS`]
//! slots, where level `l` buckets deadlines `SLOTS^l` ticks apart. Insert
//! and cancel are O(1); advancing cascades at most one higher-level slot
//! per window boundary.
//!
//! The wheel itself is a plain sequential structure. It becomes safe under
//! concurrency the same way every other piece of shard state does: it lives
//! *inside* the shard state `S`, and the shard's executor — server thread,
//! reactor tick, combiner, or lock holder — is the only thing that touches
//! it. States opt in by implementing [`Expire`]; the runtime then runs the
//! expiry pass from [`ShardCore::tick`](crate::Runtime) (idle and batch
//! boundaries on the MP backends) and from the dispatch path itself on the
//! inline backends (every executed operation sweeps due timers first), so
//! expiry is linearized against regular operations on every backend.
//!
//! Timestamps are nanoseconds on the process-wide monotonic clock
//! [`mono_ns`] — *not* `telemetry::now_ns()`, which reads 0 when the
//! `telemetry` feature is off.

use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Slots per wheel level (64, so slot indexing is a shift+mask).
pub const SLOTS: usize = 64;
/// Wheel levels. Four levels of 64 slots at the default 1 ms tick cover
/// deadlines ~194 days out before the overflow list is touched.
pub const LEVELS: usize = 4;

const SLOT_BITS: u32 = 6;

/// Process-wide monotonic clock, nanoseconds since the first call.
///
/// All wheel deadlines and [`Expire`] timestamps use this clock. It is
/// deliberately independent of the telemetry clock (which is compiled to a
/// constant 0 without the `telemetry` feature).
pub fn mono_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// The [`Instant`] corresponding to a [`mono_ns`] timestamp (used to bound
/// blocking waits by the nearest timer deadline).
pub fn instant_at(ns: u64) -> Instant {
    // mono_ns is measured from its own first call; re-deriving through the
    // same function keeps both on one epoch.
    let now_ns = mono_ns();
    let now = Instant::now();
    if ns >= now_ns {
        now + Duration::from_nanos(ns - now_ns)
    } else {
        now.checked_sub(Duration::from_nanos(now_ns - ns))
            .unwrap_or(now)
    }
}

/// Shard states with timer-driven expiry, served by the runtime's expiry
/// pass (see [`Runtime::new_expiring`](crate::Runtime::new_expiring)).
///
/// Both methods run under the shard's mutual exclusion, exactly like a
/// dispatched operation; `expire` may mutate the state freely.
pub trait Expire {
    /// Earliest pending deadline on the [`mono_ns`] clock, if any.
    fn next_deadline_ns(&mut self) -> Option<u64>;
    /// Fires everything due at or before `now_ns`.
    fn expire(&mut self, now_ns: u64);
}

/// One armed timer: id, exact deadline, payload.
#[derive(Debug, Clone)]
struct Entry<T> {
    id: u64,
    deadline_ns: u64,
    item: T,
}

/// A timer that [`TimerWheel::advance`] fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expired<T> {
    /// The id [`TimerWheel::insert`] returned.
    pub id: u64,
    /// The deadline the timer was armed for.
    pub deadline_ns: u64,
    /// The payload.
    pub item: T,
}

/// Where an entry currently lives (for O(1)-ish cancel).
#[derive(Clone, Copy)]
enum Place {
    Slot { level: u8, slot: u8 },
    Overflow,
}

/// A hierarchical timer wheel. Deadlines are absolute nanoseconds on
/// whatever clock the caller advances with (the runtime uses [`mono_ns`]);
/// entries fire once the wheel is advanced *past* their tick, so firing
/// lags the exact deadline by at most one tick.
pub struct TimerWheel<T> {
    tick_ns: u64,
    /// Ticks fully processed: every entry with `tick <= now_tick` has fired.
    now_tick: u64,
    next_id: u64,
    len: usize,
    levels: Vec<Vec<Vec<Entry<T>>>>,
    /// Deadlines too far out for the top level; re-examined when the top
    /// level wraps.
    overflow: Vec<Entry<T>>,
    index: HashMap<u64, Place>,
    /// Cached earliest pending deadline; `None` = must recompute.
    next_min: Option<Option<u64>>,
    /// Scratch for advance (reused allocation).
    fired: Vec<Entry<T>>,
}

impl<T> TimerWheel<T> {
    /// A wheel with the given tick resolution (firing granularity).
    ///
    /// # Panics
    ///
    /// Panics if `tick_ns` is 0.
    pub fn new(tick_ns: u64) -> Self {
        assert!(tick_ns > 0, "timer wheel tick must be positive");
        Self {
            tick_ns,
            now_tick: 0,
            next_id: 1,
            len: 0,
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            overflow: Vec::new(),
            index: HashMap::new(),
            next_min: Some(None),
            fired: Vec::new(),
        }
    }

    /// Armed timers currently pending.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no timer is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arms a timer for `deadline_ns`; returns its cancellation id.
    /// Deadlines in the past fire on the next [`TimerWheel::advance`].
    pub fn insert(&mut self, deadline_ns: u64, item: T) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let entry = Entry {
            id,
            deadline_ns,
            item,
        };
        self.place(entry);
        self.len += 1;
        self.next_min = match self.next_min {
            Some(Some(min)) => Some(Some(min.min(deadline_ns))),
            Some(None) => Some(Some(deadline_ns)),
            // Dirty: an unknown smaller deadline may exist — stay dirty.
            None => None,
        };
        id
    }

    /// Disarms timer `id`, returning its payload if it had not fired.
    pub fn cancel(&mut self, id: u64) -> Option<T> {
        let place = self.index.remove(&id)?;
        let bucket = match place {
            Place::Slot { level, slot } => &mut self.levels[level as usize][slot as usize],
            Place::Overflow => &mut self.overflow,
        };
        let pos = bucket
            .iter()
            .position(|e| e.id == id)
            .expect("timer index points at a live entry");
        let entry = bucket.swap_remove(pos);
        self.len -= 1;
        self.next_min = None; // may have removed the minimum
        Some(entry.item)
    }

    /// Exact earliest pending deadline, if any (cached; recomputed lazily
    /// after fires and cancels).
    pub fn next_deadline_ns(&mut self) -> Option<u64> {
        if let Some(cached) = self.next_min {
            return cached;
        }
        let mut min: Option<u64> = None;
        let fold = |min: Option<u64>, e: &Entry<T>| match min {
            Some(m) => Some(m.min(e.deadline_ns)),
            None => Some(e.deadline_ns),
        };
        for level in &self.levels {
            for slot in level {
                min = slot.iter().fold(min, fold);
            }
        }
        min = self.overflow.iter().fold(min, fold);
        self.next_min = Some(min);
        min
    }

    /// Advances the wheel to `now_ns`, firing every timer whose deadline
    /// tick has passed. Fired timers are appended to `out` ordered by
    /// `(deadline, id)` — the order a `BTreeMap<(deadline, id), T>` oracle
    /// would drain them in.
    pub fn advance(&mut self, now_ns: u64, out: &mut Vec<Expired<T>>) {
        let target = now_ns / self.tick_ns;
        let mut fired = std::mem::take(&mut self.fired);
        while self.now_tick < target {
            if self.len == 0 {
                self.now_tick = target;
                break;
            }
            self.now_tick += 1;
            let t = self.now_tick;
            // A window boundary at level l opens a new level-(l+1) slot:
            // cascade its entries down before firing this tick's slot.
            if t.trailing_zeros() >= SLOT_BITS {
                self.cascade(1);
                if t.trailing_zeros() >= 2 * SLOT_BITS {
                    self.cascade(2);
                    if t.trailing_zeros() >= 3 * SLOT_BITS {
                        self.cascade(3);
                        if t.trailing_zeros() >= 4 * SLOT_BITS {
                            self.cascade_overflow();
                        }
                    }
                }
            }
            let slot = (t as usize) & (SLOTS - 1);
            for e in self.levels[0][slot].drain(..) {
                self.index.remove(&e.id);
                self.len -= 1;
                fired.push(e);
            }
        }
        if !fired.is_empty() {
            self.next_min = None;
            fired.sort_by_key(|e| (e.deadline_ns, e.id));
            out.extend(fired.drain(..).map(|e| Expired {
                id: e.id,
                deadline_ns: e.deadline_ns,
                item: e.item,
            }));
        }
        self.fired = fired;
    }

    /// Buckets `entry` by the distance of its deadline tick from
    /// `now_tick` and records its place in the cancel index.
    fn place(&mut self, entry: Entry<T>) {
        // Never fire early: bucket by the first tick whose start is ≥ the
        // deadline, which `advance` drains once `now_tick` reaches it.
        let tick = (entry.deadline_ns / self.tick_ns + 1).max(self.now_tick + 1);
        let delta = tick - self.now_tick;
        let mut level = 0usize;
        while level < LEVELS && delta >= (SLOTS as u64).pow(level as u32 + 1) {
            level += 1;
        }
        let place = if level == LEVELS {
            self.overflow.push(entry);
            Place::Overflow
        } else {
            let slot = ((tick >> (SLOT_BITS * level as u32)) as usize) & (SLOTS - 1);
            self.levels[level][slot].push(entry);
            Place::Slot {
                level: level as u8,
                slot: slot as u8,
            }
        };
        let id = match place {
            Place::Slot { level, slot } => {
                self.levels[level as usize][slot as usize]
                    .last()
                    .expect("just pushed")
                    .id
            }
            Place::Overflow => self.overflow.last().expect("just pushed").id,
        };
        self.index.insert(id, place);
    }

    /// Re-buckets the level-`level` slot that `now_tick` just entered.
    fn cascade(&mut self, level: usize) {
        let slot = ((self.now_tick >> (SLOT_BITS * level as u32)) as usize) & (SLOTS - 1);
        let entries = std::mem::take(&mut self.levels[level][slot]);
        for e in entries {
            self.index.remove(&e.id);
            self.place(e);
        }
    }

    /// Re-buckets overflow entries that now fit in the wheel.
    fn cascade_overflow(&mut self) {
        let entries = std::mem::take(&mut self.overflow);
        for e in entries {
            self.index.remove(&e.id);
            self.place(e);
        }
    }
}

impl<T> std::fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("tick_ns", &self.tick_ns)
            .field("now_tick", &self.now_tick)
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: u64 = 1_000; // 1 µs ticks for fast tests

    fn drain(w: &mut TimerWheel<u64>, now_ns: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        w.advance(now_ns, &mut out);
        out.into_iter().map(|e| (e.deadline_ns, e.item)).collect()
    }

    #[test]
    fn fires_in_deadline_order_within_a_tick() {
        let mut w = TimerWheel::new(TICK);
        w.insert(5 * TICK + 3, 3);
        w.insert(5 * TICK + 1, 1);
        w.insert(5 * TICK + 2, 2);
        assert_eq!(drain(&mut w, 5 * TICK), vec![]);
        assert_eq!(
            drain(&mut w, 6 * TICK),
            vec![(5 * TICK + 1, 1), (5 * TICK + 2, 2), (5 * TICK + 3, 3)]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn fires_at_most_one_tick_late_and_never_early() {
        let mut w = TimerWheel::new(TICK);
        for d in [1u64, TICK - 1, TICK, 10 * TICK + 5] {
            w.insert(d, d);
        }
        // Nothing fires before its deadline tick has fully passed.
        assert_eq!(drain(&mut w, TICK - 1), vec![]);
        assert_eq!(
            drain(&mut w, 2 * TICK),
            vec![(1, 1), (TICK - 1, TICK - 1), (TICK, TICK)]
        );
        assert_eq!(drain(&mut w, 3 * TICK), vec![]);
        assert_eq!(
            drain(&mut w, 12 * TICK),
            vec![(10 * TICK + 5, 10 * TICK + 5)]
        );
    }

    #[test]
    fn cancel_prevents_firing_and_returns_item() {
        let mut w = TimerWheel::new(TICK);
        let a = w.insert(3 * TICK, 100);
        let b = w.insert(3 * TICK, 200);
        assert_eq!(w.cancel(a), Some(100));
        assert_eq!(w.cancel(a), None, "double cancel is a no-op");
        assert_eq!(w.len(), 1);
        assert_eq!(drain(&mut w, 10 * TICK), vec![(3 * TICK, 200)]);
        assert_eq!(w.cancel(b), None, "fired timers cannot be cancelled");
    }

    #[test]
    fn next_deadline_tracks_insert_cancel_fire() {
        let mut w = TimerWheel::new(TICK);
        assert_eq!(w.next_deadline_ns(), None);
        let a = w.insert(9 * TICK, 0);
        assert_eq!(w.next_deadline_ns(), Some(9 * TICK));
        let _b = w.insert(4 * TICK, 1);
        assert_eq!(w.next_deadline_ns(), Some(4 * TICK));
        w.cancel(a);
        assert_eq!(w.next_deadline_ns(), Some(4 * TICK));
        drain(&mut w, 100 * TICK);
        assert_eq!(w.next_deadline_ns(), None);
    }

    #[test]
    fn cascades_across_levels() {
        let mut w = TimerWheel::new(TICK);
        // One deadline per level: 10 ticks, ~100 windows, ~2 level-2
        // windows, ~1.5 level-3 windows out.
        let deadlines = [
            10 * TICK,
            100 * 64 * TICK,
            2 * 64 * 64 * 64 * TICK + 7,
            3 * 64 * 64 * 64 * 64 * TICK / 2,
        ];
        for (i, &d) in deadlines.iter().enumerate() {
            w.insert(d, i as u64);
        }
        let mut fired = Vec::new();
        for &d in &deadlines {
            // Advance just past each deadline's tick.
            fired.extend(drain(&mut w, d + TICK));
        }
        assert_eq!(
            fired,
            deadlines
                .iter()
                .enumerate()
                .map(|(i, &d)| (d, i as u64))
                .collect::<Vec<_>>()
        );
        assert!(w.is_empty());
    }

    #[test]
    fn empty_wheel_fast_forwards_far_jumps() {
        let mut w = TimerWheel::new(1);
        assert_eq!(drain(&mut w, u64::MAX / 2), vec![]);
        // Still usable after the jump.
        w.insert(u64::MAX / 2 + 10, 42);
        assert_eq!(
            drain(&mut w, u64::MAX / 2 + 20),
            vec![(u64::MAX / 2 + 10, 42)]
        );
    }

    #[test]
    fn mono_clock_is_monotonic_and_instant_roundtrips() {
        let a = mono_ns();
        let b = mono_ns();
        assert!(b >= a);
        let at = instant_at(b + 5_000_000);
        assert!(at > Instant::now());
        // Past timestamps clamp to ~now instead of panicking.
        let _ = instant_at(0);
    }
}
