//! A small linearizability checker for testing concurrent objects.
//!
//! The paper's constructions implement *linearizable* concurrent objects
//! (Herlihy & Wing, 1990 — the correctness condition the paper adopts in
//! §1/§4.2). This crate provides the machinery the test suite uses to verify
//! that claim on real executions:
//!
//! * [`Recorder`] — collects a complete concurrent history (operation,
//!   result, invocation/response timestamps) from threads exercising an
//!   object;
//! * [`SeqSpec`] — a sequential specification of the object;
//! * [`check`] — a Wing & Gong-style exhaustive search (with memoization of
//!   visited `(remaining-set, state)` pairs) for a linearization of the
//!   history that the specification accepts.
//!
//! The checker is exponential in the worst case and is intended for the
//! small, adversarial histories used in tests (up to [`MAX_OPS`] operations).
//!
//! # Example: a history that fails linearizability
//!
//! ```
//! use mpsync_lincheck::{check, History, Operation};
//! use mpsync_lincheck::specs::CounterSpec;
//!
//! // Two non-overlapping fetch-and-increments both claiming to have seen 0:
//! // impossible for a linearizable counter.
//! let h = History::from_ops(vec![
//!     Operation { thread: 0, op: (), ret: 0, invoked: 0, returned: 1 },
//!     Operation { thread: 1, op: (), ret: 0, invoked: 2, returned: 3 },
//! ]);
//! assert!(check(&CounterSpec, &h).is_err());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub mod specs;

/// Maximum history size [`check`] accepts (the remaining-set is a `u64`
/// bitmask).
pub const MAX_OPS: usize = 64;

/// A sequential specification of a concurrent object.
pub trait SeqSpec {
    /// Abstract state of the object.
    type State: Clone + Eq + Hash;
    /// Operation descriptor (e.g. `Enqueue(5)`).
    type Op: Clone;
    /// Result value of an operation.
    type Ret: PartialEq + Clone + std::fmt::Debug;

    /// Initial abstract state.
    fn init(&self) -> Self::State;

    /// Applies `op` to `state`, returning the new state and the result the
    /// sequential object would produce.
    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret);
}

/// One completed operation in a history.
#[derive(Debug, Clone)]
pub struct Operation<O, R> {
    /// Thread that performed the operation.
    pub thread: usize,
    /// The operation.
    pub op: O,
    /// The result the implementation returned.
    pub ret: R,
    /// Logical timestamp of the invocation.
    pub invoked: u64,
    /// Logical timestamp of the response. Must be `> invoked`.
    pub returned: u64,
}

/// A complete concurrent history (every operation has returned).
#[derive(Debug, Clone)]
pub struct History<O, R> {
    ops: Vec<Operation<O, R>>,
}

impl<O, R> Default for History<O, R> {
    fn default() -> Self {
        Self { ops: Vec::new() }
    }
}

impl<O, R> History<O, R> {
    /// Builds a history from completed operations.
    pub fn from_ops(ops: Vec<Operation<O, R>>) -> Self {
        Self { ops }
    }

    /// The operations of the history.
    pub fn ops(&self) -> &[Operation<O, R>] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the history has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Why a history failed the linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinError {
    /// No linearization of the history matches the sequential spec.
    NotLinearizable,
    /// The history is larger than [`MAX_OPS`].
    TooLarge(usize),
    /// An operation has `returned <= invoked`.
    BadTimestamps {
        /// Index of the offending operation.
        index: usize,
    },
}

impl std::fmt::Display for LinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotLinearizable => write!(f, "history admits no valid linearization"),
            Self::TooLarge(n) => write!(f, "history of {n} ops exceeds the {MAX_OPS}-op limit"),
            Self::BadTimestamps { index } => {
                write!(f, "operation {index} returned at or before its invocation")
            }
        }
    }
}

impl std::error::Error for LinError {}

/// Checks whether `history` is linearizable with respect to `spec`.
///
/// On success returns a witness: the indices of the history's operations in
/// a valid linearization order.
pub fn check<S: SeqSpec>(
    spec: &S,
    history: &History<S::Op, S::Ret>,
) -> Result<Vec<usize>, LinError> {
    let ops = history.ops();
    let n = ops.len();
    if n > MAX_OPS {
        return Err(LinError::TooLarge(n));
    }
    if let Some(i) = ops.iter().position(|o| o.returned <= o.invoked) {
        return Err(LinError::BadTimestamps { index: i });
    }
    if n == 0 {
        return Ok(Vec::new());
    }

    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut visited: HashSet<(u64, S::State)> = HashSet::new();
    let mut witness: Vec<usize> = Vec::with_capacity(n);

    if dfs(spec, ops, full, &spec.init(), &mut visited, &mut witness) {
        Ok(witness)
    } else {
        Err(LinError::NotLinearizable)
    }
}

fn dfs<S: SeqSpec>(
    spec: &S,
    ops: &[Operation<S::Op, S::Ret>],
    remaining: u64,
    state: &S::State,
    visited: &mut HashSet<(u64, S::State)>,
    witness: &mut Vec<usize>,
) -> bool {
    if remaining == 0 {
        return true;
    }
    if !visited.insert((remaining, state.clone())) {
        return false;
    }
    // An op may linearize first iff no *other remaining* op returned before
    // it was invoked; equivalently, its invocation precedes the earliest
    // remaining response.
    let min_return = ops
        .iter()
        .enumerate()
        .filter(|(i, _)| remaining & (1 << i) != 0)
        .map(|(_, o)| o.returned)
        .min()
        .expect("remaining non-empty");
    for i in 0..ops.len() {
        if remaining & (1 << i) == 0 {
            continue;
        }
        let o = &ops[i];
        if o.invoked > min_return {
            continue;
        }
        let (next_state, ret) = spec.apply(state, &o.op);
        if ret != o.ret {
            continue;
        }
        witness.push(i);
        if dfs(
            spec,
            ops,
            remaining & !(1 << i),
            &next_state,
            visited,
            witness,
        ) {
            return true;
        }
        witness.pop();
    }
    false
}

/// Records a concurrent history with logical timestamps drawn from a shared
/// monotone counter.
///
/// The counter gives a valid "happened-before" witness: if operation A's
/// response was recorded before operation B's invocation in real time, A's
/// `returned` stamp is smaller than B's `invoked` stamp.
pub struct Recorder<O, R> {
    clock: Arc<AtomicU64>,
    _marker: std::marker::PhantomData<fn() -> (O, R)>,
}

impl<O: Send + 'static, R: Send + 'static> Recorder<O, R> {
    /// Creates a recorder.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            clock: Arc::new(AtomicU64::new(0)),
            _marker: std::marker::PhantomData,
        }
    }

    /// Creates a per-thread handle. `thread` labels the operations.
    pub fn handle(&self, thread: usize) -> RecorderHandle<O, R> {
        RecorderHandle {
            clock: Arc::clone(&self.clock),
            thread,
            ops: Vec::new(),
        }
    }

    /// Merges per-thread logs into a single history.
    pub fn collect(self, handles: Vec<RecorderHandle<O, R>>) -> History<O, R> {
        let mut ops = Vec::new();
        for h in handles {
            ops.extend(h.ops);
        }
        History::from_ops(ops)
    }
}

/// Per-thread log of timestamped operations.
pub struct RecorderHandle<O, R> {
    clock: Arc<AtomicU64>,
    thread: usize,
    ops: Vec<Operation<O, R>>,
}

impl<O, R> RecorderHandle<O, R> {
    /// Runs `f` as the implementation of `op`, recording invocation and
    /// response timestamps around it.
    pub fn record(&mut self, op: O, f: impl FnOnce() -> R) {
        let invoked = self.clock.fetch_add(1, Ordering::AcqRel);
        let ret = f();
        let returned = self.clock.fetch_add(1, Ordering::AcqRel);
        self.ops.push(Operation {
            thread: self.thread,
            op,
            ret,
            invoked,
            returned,
        });
    }

    /// Number of operations recorded so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::specs::{CounterSpec, QueueOp, QueueSpec, RegisterOp, RegisterSpec};
    use super::*;

    fn op<O, R>(thread: usize, op: O, ret: R, invoked: u64, returned: u64) -> Operation<O, R> {
        Operation {
            thread,
            op,
            ret,
            invoked,
            returned,
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h: History<(), u64> = History::default();
        assert_eq!(check(&CounterSpec, &h).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn sequential_counter_ok() {
        let h = History::from_ops(vec![
            op(0, (), 0, 0, 1),
            op(0, (), 1, 2, 3),
            op(0, (), 2, 4, 5),
        ]);
        assert_eq!(check(&CounterSpec, &h).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn concurrent_counter_needs_reorder() {
        // Thread 1's op is concurrent with thread 0's and must linearize
        // first (it saw 0, thread 0 saw 1).
        let h = History::from_ops(vec![op(0, (), 1, 0, 5), op(1, (), 0, 1, 2)]);
        assert_eq!(check(&CounterSpec, &h).unwrap(), vec![1, 0]);
    }

    #[test]
    fn duplicate_fetch_inc_rejected() {
        // Non-overlapping ops both claiming to have seen 0.
        let h = History::from_ops(vec![op(0, (), 0, 0, 1), op(1, (), 0, 2, 3)]);
        assert_eq!(check(&CounterSpec, &h), Err(LinError::NotLinearizable));
    }

    #[test]
    fn real_time_order_respected() {
        // A register: write 1 completes, then a read of 0 begins — the stale
        // read must be rejected even though some reordering "explains" it.
        let h = History::from_ops(vec![
            op(0, RegisterOp::Write(1), None, 0, 1),
            op(1, RegisterOp::Read, Some(0), 2, 3),
        ]);
        assert_eq!(check(&RegisterSpec, &h), Err(LinError::NotLinearizable));
    }

    #[test]
    fn concurrent_stale_read_accepted() {
        // Same as above but the read overlaps the write: linearizable.
        let h = History::from_ops(vec![
            op(0, RegisterOp::Write(1), None, 0, 3),
            op(1, RegisterOp::Read, Some(0), 1, 2),
        ]);
        assert!(check(&RegisterSpec, &h).is_ok());
    }

    #[test]
    fn queue_fifo_violation_rejected() {
        let h = History::from_ops(vec![
            op(0, QueueOp::Enqueue(1), None, 0, 1),
            op(0, QueueOp::Enqueue(2), None, 2, 3),
            op(1, QueueOp::Dequeue, Some(2), 4, 5),
        ]);
        assert_eq!(check(&QueueSpec, &h), Err(LinError::NotLinearizable));
    }

    #[test]
    fn queue_fifo_ok() {
        let h = History::from_ops(vec![
            op(0, QueueOp::Enqueue(1), None, 0, 1),
            op(0, QueueOp::Enqueue(2), None, 2, 3),
            op(1, QueueOp::Dequeue, Some(1), 4, 5),
            op(1, QueueOp::Dequeue, Some(2), 6, 7),
            op(1, QueueOp::Dequeue, None, 8, 9),
        ]);
        assert!(check(&QueueSpec, &h).is_ok());
    }

    #[test]
    fn bad_timestamps_detected() {
        let h = History::from_ops(vec![op(0, (), 0u64, 5, 5)]);
        assert_eq!(
            check(&CounterSpec, &h),
            Err(LinError::BadTimestamps { index: 0 })
        );
    }

    #[test]
    fn too_large_rejected() {
        let ops: Vec<_> = (0..65).map(|i| op(0, (), i, 2 * i, 2 * i + 1)).collect();
        let h = History::from_ops(ops);
        assert_eq!(check(&CounterSpec, &h), Err(LinError::TooLarge(65)));
    }

    #[test]
    fn recorder_produces_checkable_history() {
        let rec: Recorder<(), u64> = Recorder::new();
        let mut h0 = rec.handle(0);
        let mut counter = 0u64;
        for _ in 0..5 {
            h0.record((), || {
                let old = counter;
                counter += 1;
                old
            });
        }
        assert_eq!(h0.len(), 5);
        assert!(!h0.is_empty());
        let history = rec.collect(vec![h0]);
        assert!(check(&CounterSpec, &history).is_ok());
    }
}
