//! Ready-made sequential specifications for the objects the paper evaluates:
//! counters (§5.3), FIFO queues and LIFO stacks (§5.4), plus a register used
//! in the checker's own tests.

use std::collections::{BTreeMap, VecDeque};

use crate::SeqSpec;

/// Fetch-and-increment counter: every op increments and returns the previous
/// value.
#[derive(Debug, Clone, Copy, Default)]
pub struct CounterSpec;

impl SeqSpec for CounterSpec {
    type State = u64;
    type Op = ();
    type Ret = u64;

    fn init(&self) -> u64 {
        0
    }

    fn apply(&self, s: &u64, _op: &()) -> (u64, u64) {
        (s + 1, *s)
    }
}

/// Operations on a single read/write register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterOp {
    /// Read the current value.
    Read,
    /// Write a new value (returns `None`).
    Write(u64),
}

/// A 64-bit read/write register initialized to 0. Reads return `Some(v)`,
/// writes return `None`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegisterSpec;

impl SeqSpec for RegisterSpec {
    type State = u64;
    type Op = RegisterOp;
    type Ret = Option<u64>;

    fn init(&self) -> u64 {
        0
    }

    fn apply(&self, s: &u64, op: &RegisterOp) -> (u64, Option<u64>) {
        match op {
            RegisterOp::Read => (*s, Some(*s)),
            RegisterOp::Write(v) => (*v, None),
        }
    }
}

/// Operations on a FIFO queue of 64-bit values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOp {
    /// Append a value (returns `None`).
    Enqueue(u64),
    /// Remove the oldest value; returns `Some(v)` or `None` when empty.
    Dequeue,
}

/// FIFO queue specification. Enqueue returns `None`; dequeue returns the
/// dequeued value or `None` on empty.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueSpec;

impl SeqSpec for QueueSpec {
    type State = VecDeque<u64>;
    type Op = QueueOp;
    type Ret = Option<u64>;

    fn init(&self) -> VecDeque<u64> {
        VecDeque::new()
    }

    fn apply(&self, s: &VecDeque<u64>, op: &QueueOp) -> (VecDeque<u64>, Option<u64>) {
        let mut next = s.clone();
        match op {
            QueueOp::Enqueue(v) => {
                next.push_back(*v);
                (next, None)
            }
            QueueOp::Dequeue => {
                let ret = next.pop_front();
                (next, ret)
            }
        }
    }
}

/// Operations on a LIFO stack of 64-bit values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackOp {
    /// Push a value (returns `None`).
    Push(u64),
    /// Pop the newest value; returns `Some(v)` or `None` when empty.
    Pop,
}

/// LIFO stack specification. Push returns `None`; pop returns the popped
/// value or `None` on empty.
#[derive(Debug, Clone, Copy, Default)]
pub struct StackSpec;

impl SeqSpec for StackSpec {
    type State = Vec<u64>;
    type Op = StackOp;
    type Ret = Option<u64>;

    fn init(&self) -> Vec<u64> {
        Vec::new()
    }

    fn apply(&self, s: &Vec<u64>, op: &StackOp) -> (Vec<u64>, Option<u64>) {
        let mut next = s.clone();
        match op {
            StackOp::Push(v) => {
                next.push(*v);
                (next, None)
            }
            StackOp::Pop => {
                let ret = next.pop();
                (next, ret)
            }
        }
    }
}

/// The "absent" sentinel the application suite returns over the wire
/// (mirrors `mpsync_objects::EMPTY`; redefined here so the checker stays
/// dependency-free).
pub const APP_EMPTY: u64 = u64::MAX;

/// One operation against the `mpsync-apps` suite: five application objects
/// (token-bucket rate limiter, leaderboard, priority queue, session store,
/// ledger) sharing one keyed state. Sessions are modeled in immortal mode
/// (TTL 0) so the spec is clock-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppOp {
    /// Take `n` tokens from `key`'s bucket (1 granted / 0 denied).
    RateAcquire {
        /// Bucket key.
        key: u64,
        /// Tokens requested.
        n: u64,
    },
    /// Read `key`'s tokens clamped to capacity.
    RatePeek {
        /// Bucket key.
        key: u64,
    },
    /// Add `n` tokens; returns the old raw count (fetch-add shape).
    RateFill {
        /// Bucket key.
        key: u64,
        /// Tokens added.
        n: u64,
    },
    /// Add `delta` to `member`'s score; returns the new score.
    BoardAdd {
        /// Member key.
        member: u64,
        /// Score delta.
        delta: u64,
    },
    /// Read `member`'s score, or `APP_EMPTY`.
    BoardGet {
        /// Member key.
        member: u64,
    },
    /// The member ranked `rank` (0 = highest score), or `APP_EMPTY`.
    BoardNth {
        /// 0-based rank from the top.
        rank: u64,
    },
    /// Count of members with score `>= score`.
    BoardCountGe {
        /// Score threshold.
        score: u64,
    },
    /// Remove `member`; returns the removed score or `APP_EMPTY`.
    BoardRemove {
        /// Member key.
        member: u64,
    },
    /// Push `(prio, item)` onto `queue`; returns the new length.
    PqPush {
        /// Queue key.
        queue: u64,
        /// Priority (lower is served first).
        prio: u32,
        /// Item id.
        item: u32,
    },
    /// Pop the min-priority task (FIFO within a priority), packed
    /// `prio << 32 | item`, or `APP_EMPTY`.
    PqPop {
        /// Queue key.
        queue: u64,
    },
    /// Read the min-priority task without removing it.
    PqPeek {
        /// Queue key.
        queue: u64,
    },
    /// Read the queue length.
    PqLen {
        /// Queue key.
        queue: u64,
    },
    /// Store `value` under session `key` (immortal); returns the replaced
    /// value or `APP_EMPTY`.
    SessPut {
        /// Session key.
        key: u64,
        /// Stored value.
        value: u32,
    },
    /// Read session `key`, or `APP_EMPTY`.
    SessGet {
        /// Session key.
        key: u64,
    },
    /// Delete session `key`; returns the removed value or `APP_EMPTY`.
    SessDel {
        /// Session key.
        key: u64,
    },
    /// Credit `key` with `amount`; returns the new available balance.
    LgDeposit {
        /// Account key.
        key: u64,
        /// Amount credited.
        amount: u64,
    },
    /// Read `key`'s available balance (0 if absent).
    LgBalance {
        /// Account key.
        key: u64,
    },
    /// Move `amount` from available to held (1 ok / 0 refused).
    LgReserve {
        /// Account key.
        key: u64,
        /// Amount to hold.
        amount: u64,
    },
    /// Burn `amount` of held funds (1 ok / 0 refused).
    LgCommit {
        /// Account key.
        key: u64,
        /// Amount to commit.
        amount: u64,
    },
    /// Return `amount` of held funds to available (1 ok / 0 refused).
    LgRelease {
        /// Account key.
        key: u64,
        /// Amount to release.
        amount: u64,
    },
    /// Read `key`'s held amount (0 if absent).
    LgHeld {
        /// Account key.
        key: u64,
    },
}

/// One modeled priority queue: `(prio, seq)` → item, plus the next
/// FIFO sequence number.
pub type PqQueueModel = (BTreeMap<(u64, u64), u64>, u64);

/// Abstract state of the application suite (see [`AppSpec`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AppModel {
    /// Bucket key → raw (unclamped) token count.
    pub rate: BTreeMap<u64, u64>,
    /// Member → score.
    pub scores: BTreeMap<u64, u64>,
    /// Queue key → (`(prio, seq)` → item, next seq).
    pub queues: BTreeMap<u64, PqQueueModel>,
    /// Session key → value (immortal sessions only).
    pub sessions: BTreeMap<u64, u64>,
    /// Account key → (available, held).
    pub accounts: BTreeMap<u64, (u64, u64)>,
}

/// Sequential specification of the `mpsync-apps` suite, mirroring its
/// dispatcher semantics exactly (buckets start full at `cap`; leaderboard
/// rank order is descending `(score, member)`; pops are priority-then-FIFO;
/// ledger holds are conserved).
#[derive(Debug, Clone, Copy)]
pub struct AppSpec {
    /// Token-bucket capacity (`RuntimeConfig`-side `bucket_capacity`).
    pub cap: u64,
}

impl SeqSpec for AppSpec {
    type State = AppModel;
    type Op = AppOp;
    type Ret = u64;

    fn init(&self) -> AppModel {
        AppModel::default()
    }

    fn apply(&self, s: &AppModel, op: &AppOp) -> (AppModel, u64) {
        let mut next = s.clone();
        let ret = match *op {
            AppOp::RateAcquire { key, n } => {
                let tokens = next.rate.entry(key).or_insert(self.cap);
                *tokens = (*tokens).min(self.cap);
                if *tokens >= n {
                    *tokens -= n;
                    1
                } else {
                    0
                }
            }
            AppOp::RatePeek { key } => next
                .rate
                .get(&key)
                .copied()
                .unwrap_or(self.cap)
                .min(self.cap),
            AppOp::RateFill { key, n } => {
                let tokens = next.rate.entry(key).or_insert(self.cap);
                let old = *tokens;
                *tokens = old.wrapping_add(n);
                old
            }
            AppOp::BoardAdd { member, delta } => {
                let score = next.scores.entry(member).or_insert(0);
                *score = score.wrapping_add(delta);
                *score
            }
            AppOp::BoardGet { member } => next.scores.get(&member).copied().unwrap_or(APP_EMPTY),
            AppOp::BoardNth { rank } => {
                let mut ranked: Vec<(u64, u64)> =
                    next.scores.iter().map(|(&m, &sc)| (sc, m)).collect();
                ranked.sort_unstable_by(|a, b| b.cmp(a));
                ranked
                    .get(rank as usize)
                    .map(|&(_, m)| m)
                    .unwrap_or(APP_EMPTY)
            }
            AppOp::BoardCountGe { score } => {
                next.scores.values().filter(|&&sc| sc >= score).count() as u64
            }
            AppOp::BoardRemove { member } => next.scores.remove(&member).unwrap_or(APP_EMPTY),
            AppOp::PqPush { queue, prio, item } => {
                let (tasks, seq) = next.queues.entry(queue).or_default();
                tasks.insert((prio as u64, *seq), item as u64);
                *seq += 1;
                tasks.len() as u64
            }
            AppOp::PqPop { queue } => match next
                .queues
                .get_mut(&queue)
                .and_then(|(tasks, _)| tasks.pop_first())
            {
                Some(((prio, _), item)) => (prio << 32) | item,
                None => APP_EMPTY,
            },
            AppOp::PqPeek { queue } => next
                .queues
                .get(&queue)
                .and_then(|(tasks, _)| tasks.first_key_value())
                .map(|(&(prio, _), &item)| (prio << 32) | item)
                .unwrap_or(APP_EMPTY),
            AppOp::PqLen { queue } => next
                .queues
                .get(&queue)
                .map_or(0, |(tasks, _)| tasks.len() as u64),
            AppOp::SessPut { key, value } => {
                next.sessions.insert(key, value as u64).unwrap_or(APP_EMPTY)
            }
            AppOp::SessGet { key } => next.sessions.get(&key).copied().unwrap_or(APP_EMPTY),
            AppOp::SessDel { key } => next.sessions.remove(&key).unwrap_or(APP_EMPTY),
            AppOp::LgDeposit { key, amount } => {
                let (avail, _) = next.accounts.entry(key).or_default();
                *avail = avail.saturating_add(amount);
                *avail
            }
            AppOp::LgBalance { key } => next.accounts.get(&key).map_or(0, |&(a, _)| a),
            AppOp::LgReserve { key, amount } => match next.accounts.get_mut(&key) {
                Some((avail, held)) if *avail >= amount => {
                    *avail -= amount;
                    *held += amount;
                    1
                }
                _ => 0,
            },
            AppOp::LgCommit { key, amount } => match next.accounts.get_mut(&key) {
                Some((_, held)) if *held >= amount => {
                    *held -= amount;
                    1
                }
                _ => 0,
            },
            AppOp::LgRelease { key, amount } => match next.accounts.get_mut(&key) {
                Some((avail, held)) if *held >= amount => {
                    *held -= amount;
                    *avail += amount;
                    1
                }
                _ => 0,
            },
            AppOp::LgHeld { key } => next.accounts.get(&key).map_or(0, |&(_, h)| h),
        };
        (next, ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_spec_sequence() {
        let s = CounterSpec;
        let (s1, r1) = s.apply(&s.init(), &());
        let (_, r2) = s.apply(&s1, &());
        assert_eq!((r1, r2), (0, 1));
    }

    #[test]
    fn register_spec_read_after_write() {
        let s = RegisterSpec;
        let (st, _) = s.apply(&s.init(), &RegisterOp::Write(9));
        assert_eq!(s.apply(&st, &RegisterOp::Read).1, Some(9));
    }

    #[test]
    fn queue_spec_fifo() {
        let s = QueueSpec;
        let (st, _) = s.apply(&s.init(), &QueueOp::Enqueue(1));
        let (st, _) = s.apply(&st, &QueueOp::Enqueue(2));
        let (st, r1) = s.apply(&st, &QueueOp::Dequeue);
        let (st, r2) = s.apply(&st, &QueueOp::Dequeue);
        let (_, r3) = s.apply(&st, &QueueOp::Dequeue);
        assert_eq!((r1, r2, r3), (Some(1), Some(2), None));
    }

    #[test]
    fn stack_spec_lifo() {
        let s = StackSpec;
        let (st, _) = s.apply(&s.init(), &StackOp::Push(1));
        let (st, _) = s.apply(&st, &StackOp::Push(2));
        let (st, r1) = s.apply(&st, &StackOp::Pop);
        let (st, r2) = s.apply(&st, &StackOp::Pop);
        let (_, r3) = s.apply(&st, &StackOp::Pop);
        assert_eq!((r1, r2, r3), (Some(2), Some(1), None));
    }

    #[test]
    fn app_spec_bucket_starts_full_and_clamps() {
        let spec = AppSpec { cap: 10 };
        let st = spec.init();
        let (st, granted) = spec.apply(&st, &AppOp::RateAcquire { key: 1, n: 4 });
        assert_eq!(granted, 1);
        let (st, old) = spec.apply(&st, &AppOp::RateFill { key: 1, n: 100 });
        assert_eq!(old, 6);
        let (_, peek) = spec.apply(&st, &AppOp::RatePeek { key: 1 });
        assert_eq!(peek, 10, "peek clamps to cap");
    }

    #[test]
    fn app_spec_pq_priority_then_fifo() {
        let spec = AppSpec { cap: 1 };
        let q = 7;
        let (st, _) = spec.apply(
            &spec.init(),
            &AppOp::PqPush {
                queue: q,
                prio: 5,
                item: 1,
            },
        );
        let (st, _) = spec.apply(
            &st,
            &AppOp::PqPush {
                queue: q,
                prio: 5,
                item: 2,
            },
        );
        let (st, _) = spec.apply(
            &st,
            &AppOp::PqPush {
                queue: q,
                prio: 1,
                item: 3,
            },
        );
        let (st, a) = spec.apply(&st, &AppOp::PqPop { queue: q });
        let (st, b) = spec.apply(&st, &AppOp::PqPop { queue: q });
        let (st, c) = spec.apply(&st, &AppOp::PqPop { queue: q });
        let (_, d) = spec.apply(&st, &AppOp::PqPop { queue: q });
        assert_eq!(a, (1 << 32) | 3);
        assert_eq!(b, (5 << 32) | 1, "FIFO within a priority");
        assert_eq!(c, (5 << 32) | 2);
        assert_eq!(d, APP_EMPTY);
    }

    #[test]
    fn app_spec_ledger_conserves() {
        let spec = AppSpec { cap: 1 };
        let (st, _) = spec.apply(&spec.init(), &AppOp::LgDeposit { key: 1, amount: 50 });
        let (st, ok) = spec.apply(&st, &AppOp::LgReserve { key: 1, amount: 20 });
        assert_eq!(ok, 1);
        let (st, bal) = spec.apply(&st, &AppOp::LgBalance { key: 1 });
        let (st, held) = spec.apply(&st, &AppOp::LgHeld { key: 1 });
        assert_eq!((bal, held), (30, 20));
        let (st, ok) = spec.apply(&st, &AppOp::LgRelease { key: 1, amount: 20 });
        assert_eq!(ok, 1);
        let (_, bal) = spec.apply(&st, &AppOp::LgBalance { key: 1 });
        assert_eq!(bal, 50);
    }

    #[test]
    fn app_spec_board_ranks_descending() {
        let spec = AppSpec { cap: 1 };
        let (st, _) = spec.apply(
            &spec.init(),
            &AppOp::BoardAdd {
                member: 1,
                delta: 10,
            },
        );
        let (st, _) = spec.apply(
            &st,
            &AppOp::BoardAdd {
                member: 2,
                delta: 30,
            },
        );
        let (st, top) = spec.apply(&st, &AppOp::BoardNth { rank: 0 });
        assert_eq!(top, 2);
        let (st, n) = spec.apply(&st, &AppOp::BoardCountGe { score: 10 });
        assert_eq!(n, 2);
        let (st, removed) = spec.apply(&st, &AppOp::BoardRemove { member: 2 });
        assert_eq!(removed, 30);
        let (_, top) = spec.apply(&st, &AppOp::BoardNth { rank: 0 });
        assert_eq!(top, 1);
    }
}
