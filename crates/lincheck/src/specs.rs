//! Ready-made sequential specifications for the objects the paper evaluates:
//! counters (§5.3), FIFO queues and LIFO stacks (§5.4), plus a register used
//! in the checker's own tests.

use std::collections::VecDeque;

use crate::SeqSpec;

/// Fetch-and-increment counter: every op increments and returns the previous
/// value.
#[derive(Debug, Clone, Copy, Default)]
pub struct CounterSpec;

impl SeqSpec for CounterSpec {
    type State = u64;
    type Op = ();
    type Ret = u64;

    fn init(&self) -> u64 {
        0
    }

    fn apply(&self, s: &u64, _op: &()) -> (u64, u64) {
        (s + 1, *s)
    }
}

/// Operations on a single read/write register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterOp {
    /// Read the current value.
    Read,
    /// Write a new value (returns `None`).
    Write(u64),
}

/// A 64-bit read/write register initialized to 0. Reads return `Some(v)`,
/// writes return `None`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegisterSpec;

impl SeqSpec for RegisterSpec {
    type State = u64;
    type Op = RegisterOp;
    type Ret = Option<u64>;

    fn init(&self) -> u64 {
        0
    }

    fn apply(&self, s: &u64, op: &RegisterOp) -> (u64, Option<u64>) {
        match op {
            RegisterOp::Read => (*s, Some(*s)),
            RegisterOp::Write(v) => (*v, None),
        }
    }
}

/// Operations on a FIFO queue of 64-bit values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOp {
    /// Append a value (returns `None`).
    Enqueue(u64),
    /// Remove the oldest value; returns `Some(v)` or `None` when empty.
    Dequeue,
}

/// FIFO queue specification. Enqueue returns `None`; dequeue returns the
/// dequeued value or `None` on empty.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueSpec;

impl SeqSpec for QueueSpec {
    type State = VecDeque<u64>;
    type Op = QueueOp;
    type Ret = Option<u64>;

    fn init(&self) -> VecDeque<u64> {
        VecDeque::new()
    }

    fn apply(&self, s: &VecDeque<u64>, op: &QueueOp) -> (VecDeque<u64>, Option<u64>) {
        let mut next = s.clone();
        match op {
            QueueOp::Enqueue(v) => {
                next.push_back(*v);
                (next, None)
            }
            QueueOp::Dequeue => {
                let ret = next.pop_front();
                (next, ret)
            }
        }
    }
}

/// Operations on a LIFO stack of 64-bit values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackOp {
    /// Push a value (returns `None`).
    Push(u64),
    /// Pop the newest value; returns `Some(v)` or `None` when empty.
    Pop,
}

/// LIFO stack specification. Push returns `None`; pop returns the popped
/// value or `None` on empty.
#[derive(Debug, Clone, Copy, Default)]
pub struct StackSpec;

impl SeqSpec for StackSpec {
    type State = Vec<u64>;
    type Op = StackOp;
    type Ret = Option<u64>;

    fn init(&self) -> Vec<u64> {
        Vec::new()
    }

    fn apply(&self, s: &Vec<u64>, op: &StackOp) -> (Vec<u64>, Option<u64>) {
        let mut next = s.clone();
        match op {
            StackOp::Push(v) => {
                next.push(*v);
                (next, None)
            }
            StackOp::Pop => {
                let ret = next.pop();
                (next, ret)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_spec_sequence() {
        let s = CounterSpec;
        let (s1, r1) = s.apply(&s.init(), &());
        let (_, r2) = s.apply(&s1, &());
        assert_eq!((r1, r2), (0, 1));
    }

    #[test]
    fn register_spec_read_after_write() {
        let s = RegisterSpec;
        let (st, _) = s.apply(&s.init(), &RegisterOp::Write(9));
        assert_eq!(s.apply(&st, &RegisterOp::Read).1, Some(9));
    }

    #[test]
    fn queue_spec_fifo() {
        let s = QueueSpec;
        let (st, _) = s.apply(&s.init(), &QueueOp::Enqueue(1));
        let (st, _) = s.apply(&st, &QueueOp::Enqueue(2));
        let (st, r1) = s.apply(&st, &QueueOp::Dequeue);
        let (st, r2) = s.apply(&st, &QueueOp::Dequeue);
        let (_, r3) = s.apply(&st, &QueueOp::Dequeue);
        assert_eq!((r1, r2, r3), (Some(1), Some(2), None));
    }

    #[test]
    fn stack_spec_lifo() {
        let s = StackSpec;
        let (st, _) = s.apply(&s.init(), &StackOp::Push(1));
        let (st, _) = s.apply(&st, &StackOp::Push(2));
        let (st, r1) = s.apply(&st, &StackOp::Pop);
        let (st, r2) = s.apply(&st, &StackOp::Pop);
        let (_, r3) = s.apply(&st, &StackOp::Pop);
        assert_eq!((r1, r2, r3), (Some(2), Some(1), None));
    }
}
