//! The native telemetry phase behind `repro --metrics` / `--metrics-json` /
//! `--trace` and the `runtime_native` latency tables: short instrumented
//! counter workloads driven through the real (emulated-UDN) executors, one
//! phase per construction, with the process-wide telemetry state reset
//! between phases so each report describes exactly one construction.
//!
//! With the `telemetry` feature off every phase comes back empty
//! ([`TelemetryReport::is_empty`]) and the callers degrade to a notice —
//! the recording paths compile to no-ops, which is the point.

use mpsync_telemetry as telemetry;
use mpsync_telemetry::{trace, SpanEvent, TelemetryReport};

use crate::{fabric_for, hammer_native, native_counter};

/// One executor phase: the construction driven, its captured histograms and
/// counters, and the raw op-lifecycle spans drained from every thread.
pub struct MetricsPhase {
    /// Phase name (the construction driven).
    pub name: &'static str,
    /// Histograms + counters captured at the end of the phase.
    pub report: TelemetryReport,
    /// Spans drained from every thread's ring, sorted by start time.
    pub spans: Vec<SpanEvent>,
}

fn capture(name: &'static str) -> MetricsPhase {
    MetricsPhase {
        name,
        report: TelemetryReport::capture(),
        spans: telemetry::drain_spans(),
    }
}

/// Drives `threads` client threads × `ops` fetch-and-increments through
/// MP-SERVER, HYBCOMB and CC-SYNCH, capturing one [`MetricsPhase`] per
/// construction (queue-wait, serve, client-wait, combiner-hold histograms
/// plus the UDN's send/receive/occupancy view underneath MP-SERVER and
/// HYBCOMB).
pub fn run_native_metrics(threads: usize, ops: u64) -> Vec<MetricsPhase> {
    let threads = threads.max(1);
    let mut phases = Vec::new();

    telemetry::reset();
    {
        let fabric = fabric_for(threads + 1);
        let server = native_counter::mp_server(&fabric);
        hammer_native(threads, ops, |_| {
            server.client(fabric.register_any().expect("fabric sized for clients"))
        });
        server.shutdown();
        phases.push(capture("mp-server"));
    }

    telemetry::reset();
    {
        let fabric = fabric_for(threads);
        let hc = native_counter::hybcomb(threads, 200);
        hammer_native(threads, ops, |_| {
            hc.handle(fabric.register_any().expect("fabric sized for clients"))
        });
        phases.push(capture("hybcomb"));
    }

    telemetry::reset();
    {
        let cs = native_counter::cc_synch(threads, 200);
        hammer_native(threads, ops, |_| cs.handle());
        phases.push(capture("cc-synch"));
    }

    telemetry::reset();
    phases
}

/// Renders the phases as one JSON object:
/// `{"telemetry_enabled": …, "phases": {"mp-server": {…}, …}}` where each
/// phase body is a [`TelemetryReport::to_json`] document.
pub fn metrics_json(phases: &[MetricsPhase]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"telemetry_enabled\": {},\n",
        telemetry::ENABLED
    ));
    s.push_str("  \"phases\": {\n");
    for (i, p) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        // Indent the nested report so the document stays readable.
        let body = p.report.to_json().trim_end().replace('\n', "\n    ");
        s.push_str(&format!("    \"{}\": {body}{comma}\n", p.name));
    }
    s.push_str("  }\n}\n");
    s
}

/// Merges every phase's spans into one Chrome `trace_event` document
/// (load via `chrome://tracing` or <https://ui.perfetto.dev>). Spans carry
/// their construction in the event category, so the phases remain
/// distinguishable on the shared timeline.
pub fn chrome_trace(phases: &[MetricsPhase]) -> String {
    let spans: Vec<SpanEvent> = phases
        .iter()
        .flat_map(|p| p.spans.iter().copied())
        .collect();
    trace::chrome_trace_json(&spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsync_telemetry::{Algo, Lane};

    #[test]
    fn phases_cover_the_three_message_passing_executors() {
        let phases = run_native_metrics(2, 50);
        let names: Vec<&str> = phases.iter().map(|p| p.name).collect();
        assert_eq!(names, ["mp-server", "hybcomb", "cc-synch"]);
        let json = metrics_json(&phases);
        assert!(json.contains("\"phases\""));
        let trace = chrome_trace(&phases);
        assert!(trace.contains("traceEvents"));
        if telemetry::ENABLED {
            // Each phase must expose the op-lifecycle histograms the
            // acceptance criteria name: queue-wait and serve latencies.
            let mp = &phases[0].report;
            assert!(mp.hist(Algo::MpServer, Lane::QueueWait).is_some());
            assert!(mp.hist(Algo::MpServer, Lane::Serve).is_some());
            // HYBCOMB's combiner executes its own op inline, so under low
            // contention Serve spans may be absent — the combiner Hold span
            // is recorded on every round.
            let hyb = &phases[1].report;
            assert!(hyb.hist(Algo::HybComb, Lane::Hold).is_some());
            let cc = &phases[2].report;
            assert!(cc.hist(Algo::CcSynch, Lane::Serve).is_some());
            // And the spans must be real: MP-SERVER and HYBCOMB timelines
            // are the ones --trace promises.
            assert!(phases[0].spans.iter().any(|s| s.algo == Algo::MpServer));
            assert!(phases[1].spans.iter().any(|s| s.algo == Algo::HybComb));
        } else {
            assert!(phases.iter().all(|p| p.report.is_empty()));
            assert!(json.contains("\"telemetry_enabled\": false"));
        }
    }
}
