//! Shared helpers for the `repro` harness and the Criterion benches:
//! sweep definitions, table formatting, parallel sweep execution,
//! self-timing reports, and native-benchmark drivers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod metrics;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mpsync_core::{ApplyOp, CcSynch, HybComb, MpServer, ShmServer};
use mpsync_objects::seq::counter_dispatch;
use mpsync_udn::{Fabric, FabricConfig};
use tilesim::HostStats;

/// The application-thread counts swept on the x-axis of the
/// throughput/latency figures (the paper plots 1–35).
pub fn thread_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 4, 10, 20, 35]
    } else {
        vec![1, 2, 4, 6, 8, 10, 12, 14, 17, 20, 24, 28, 32, 35]
    }
}

/// The `MAX_OPS` values swept in Figure 3c (log-scaled 1..5000).
pub fn max_ops_sweep(quick: bool) -> Vec<u64> {
    if quick {
        vec![1, 10, 100, 1000, 5000]
    } else {
        vec![1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000]
    }
}

/// Prints one CSV row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join(","));
}

/// Runs `f` over every item on a bounded pool of `jobs` scoped worker
/// threads. Items are claimed in order from a shared counter, so the pool
/// stays busy regardless of per-item cost; with one worker (or one item)
/// execution is strictly serial on the calling thread. A panic in `f` is
/// propagated to the caller when the scope joins its workers.
pub fn for_each_parallel<T: Sync>(items: &[T], jobs: usize, f: impl Fn(&T) + Sync) {
    let workers = jobs.max(1).min(items.len());
    if workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                f(&items[i]);
            });
        }
    });
}

/// Wall-clock and engine-counter summary of one `repro --timing` run,
/// serialized to `BENCH_repro.json` at the repository root.
pub struct TimingReport {
    /// The experiment list as invoked, e.g. `--quick all`.
    pub args: String,
    /// Git revision of the tree that produced the numbers (with `-dirty`
    /// when the checkout had local modifications).
    pub git_rev: String,
    /// Hostname of the machine that ran the sweep.
    pub hostname: String,
    /// Whether the sweep ran with `--quick` point lists.
    pub quick: bool,
    /// Simulated-cycle horizon per run.
    pub horizon: u64,
    /// Workload seed.
    pub seed: u64,
    /// Worker threads used for the sweep.
    pub jobs: usize,
    /// Total wall-clock of the sweep, milliseconds.
    pub total_ms: u64,
    /// Wall-clock of the same sweep on the pre-mailbox binary, if supplied
    /// via `--baseline-ms`, so the measured speedup travels with the data.
    pub prechange_total_ms: Option<u64>,
    /// Per-experiment wall-clock in emission order, milliseconds.
    pub figures: Vec<(String, u64)>,
    /// Distinct simulator runs executed (memo-cache misses).
    pub sim_runs: u64,
    /// Engine host counters summed over all distinct runs.
    pub host: HostStats,
    /// Native-executor telemetry summary (a [`metrics::metrics_json`]
    /// document), embedded when the run collected one.
    pub telemetry: Option<String>,
}

impl TimingReport {
    /// Renders the report as JSON. The format is stable and intentionally
    /// line-structured so [`baseline_figure_ms`] can read it back without a
    /// JSON parser.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"repro\",\n");
        s.push_str(&format!("  \"args\": {:?},\n", self.args));
        s.push_str(&format!("  \"git_rev\": {:?},\n", self.git_rev));
        s.push_str(&format!("  \"hostname\": {:?},\n", self.hostname));
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!("  \"horizon\": {},\n", self.horizon));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        s.push_str(&format!("  \"total_ms\": {},\n", self.total_ms));
        if let Some(base) = self.prechange_total_ms {
            s.push_str(&format!("  \"prechange_total_ms\": {base},\n"));
            s.push_str(&format!(
                "  \"speedup_vs_prechange\": {:.2},\n",
                base as f64 / (self.total_ms.max(1)) as f64
            ));
        }
        s.push_str("  \"figures\": {\n");
        for (i, (name, ms)) in self.figures.iter().enumerate() {
            let comma = if i + 1 < self.figures.len() { "," } else { "" };
            s.push_str(&format!("    \"{name}\": {{ \"ms\": {ms} }}{comma}\n"));
        }
        s.push_str("  },\n");
        let h = &self.host;
        s.push_str("  \"host\": {\n");
        s.push_str(&format!("    \"sim_runs\": {},\n", self.sim_runs));
        s.push_str(&format!("    \"handoffs\": {},\n", h.handoffs));
        s.push_str(&format!("    \"engine_parks\": {},\n", h.engine_parks));
        s.push_str(&format!("    \"proc_parks\": {},\n", h.proc_parks));
        s.push_str(&format!(
            "    \"inline_payloads\": {},\n",
            h.inline_payloads
        ));
        s.push_str(&format!("    \"heap_fallbacks\": {}\n", h.heap_fallbacks));
        s.push_str("  }");
        if let Some(t) = &self.telemetry {
            s.push_str(",\n  \"telemetry\": ");
            s.push_str(&t.trim_end().replace('\n', "\n  "));
        }
        s.push_str("\n}\n");
        s
    }
}

/// Extracts one figure's `ms` value from a `BENCH_repro.json` written by
/// [`TimingReport::to_json`]. Returns `None` for figures the baseline does
/// not record.
pub fn baseline_figure_ms(json: &str, name: &str) -> Option<u64> {
    let pat = format!("\"{name}\": {{ \"ms\": ");
    let rest = &json[json.find(&pat)? + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares a fresh timing report against a committed baseline JSON.
/// Returns `Err` naming every figure slower than `factor`× its baseline.
/// A small absolute floor keeps millisecond-scale figures from tripping on
/// scheduler noise; figures absent from the baseline are skipped.
pub fn check_against_baseline(
    fresh: &TimingReport,
    baseline_json: &str,
    factor: f64,
) -> Result<(), String> {
    const NOISE_FLOOR_MS: u64 = 250;
    let mut regressions = Vec::new();
    for (name, ms) in &fresh.figures {
        if let Some(base) = baseline_figure_ms(baseline_json, name) {
            let limit = (base as f64 * factor) as u64 + NOISE_FLOOR_MS;
            if *ms > limit {
                regressions.push(format!(
                    "{name}: {ms} ms vs baseline {base} ms (limit {limit} ms)"
                ));
            }
        }
    }
    if regressions.is_empty() {
        Ok(())
    } else {
        Err(regressions.join("; "))
    }
}

/// Formats a float for table output.
pub fn f(v: f64) -> String {
    format!("{v:.2}")
}

/// Counter dispatch function type used across the native drivers.
pub type CounterFn = fn(&mut u64, u64, u64) -> u64;

/// The counter dispatch used by native benches.
pub const COUNTER: CounterFn = counter_dispatch;

/// Runs `ops` fetch-and-increments per thread on `threads` native threads,
/// each owning a handle produced by `mk`, and returns total ops performed
/// (for Criterion throughput bookkeeping).
pub fn hammer_native<H, F>(threads: usize, ops: u64, mk: F) -> u64
where
    H: ApplyOp + Send + 'static,
    F: Fn(usize) -> H,
{
    let mut joins = Vec::new();
    for t in 0..threads {
        let mut h = mk(t);
        joins.push(std::thread::spawn(move || {
            for _ in 0..ops {
                h.apply(0, 0);
            }
        }));
    }
    for (t, j) in joins.into_iter().enumerate() {
        if let Err(payload) = j.join() {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            panic!("hammer_native worker thread {t}/{threads} panicked: {msg}");
        }
    }
    threads as u64 * ops
}

/// Builds a TILE-Gx-shaped UDN fabric sized for `n` endpoints.
pub fn fabric_for(n: usize) -> Arc<Fabric> {
    Arc::new(Fabric::new(FabricConfig::new(n.div_ceil(4).max(1))))
}

#[cfg(test)]
mod timing_tests {
    use super::*;

    fn report() -> TimingReport {
        TimingReport {
            args: "--quick all".into(),
            git_rev: "abc123def456".into(),
            hostname: "testhost".into(),
            quick: true,
            horizon: 200_000,
            seed: 42,
            jobs: 1,
            total_ms: 40_000,
            prechange_total_ms: Some(87_000),
            figures: vec![("fig3a".into(), 3_000), ("fig5a".into(), 9_000)],
            sim_runs: 157,
            host: HostStats::default(),
            telemetry: None,
        }
    }

    #[test]
    fn json_round_trips_figure_times() {
        let json = report().to_json();
        assert_eq!(baseline_figure_ms(&json, "fig3a"), Some(3_000));
        assert_eq!(baseline_figure_ms(&json, "fig5a"), Some(9_000));
        assert_eq!(baseline_figure_ms(&json, "fig4a"), None);
        assert!(json.contains("\"speedup_vs_prechange\": 2.17"));
    }

    #[test]
    fn telemetry_block_is_embedded_when_present() {
        let mut r = report();
        r.telemetry = Some("{\n  \"telemetry_enabled\": false\n}\n".into());
        let json = r.to_json();
        assert!(json.contains("\"telemetry\": {"), "json: {json}");
        // The line-oriented baseline reader must still work around it.
        assert_eq!(baseline_figure_ms(&json, "fig3a"), Some(3_000));
    }

    #[test]
    fn baseline_check_flags_only_real_regressions() {
        let base = report();
        let json = base.to_json();
        // Identical timings pass.
        assert!(check_against_baseline(&base, &json, 2.0).is_ok());
        // Under 2x (plus the noise floor) passes.
        let mut ok = report();
        ok.figures[0].1 = 6_200;
        assert!(check_against_baseline(&ok, &json, 2.0).is_ok());
        // Over 2x of the committed figure fails, naming the figure.
        let mut slow = report();
        slow.figures[1].1 = 19_000;
        let err = check_against_baseline(&slow, &json, 2.0).unwrap_err();
        assert!(err.contains("fig5a"), "unexpected message: {err}");
        // Figures missing from the baseline are skipped, not failed.
        let mut new_fig = report();
        new_fig.figures.push(("fig9z".into(), 1));
        assert!(check_against_baseline(&new_fig, &json, 2.0).is_ok());
    }
}

/// Convenience constructors for the four native executors over a counter,
/// used by benches and examples.
pub mod native_counter {
    use super::*;

    /// MP-SERVER counter: returns the server handle (shut down on drop).
    pub fn mp_server(fabric: &Arc<Fabric>) -> MpServer<u64> {
        MpServer::spawn(fabric.register_any().unwrap(), 0u64, COUNTER)
    }

    /// SHM-SERVER counter for up to `clients` clients.
    pub fn shm_server(clients: usize) -> ShmServer<u64> {
        ShmServer::spawn(clients, 0u64, COUNTER)
    }

    /// HYBCOMB counter for up to `threads` threads.
    pub fn hybcomb(threads: usize, max_ops: u64) -> HybComb<u64, CounterFn> {
        HybComb::new(threads, max_ops, 0u64, COUNTER)
    }

    /// CC-SYNCH counter for up to `threads` threads.
    pub fn cc_synch(threads: usize, max_ops: u64) -> CcSynch<u64, CounterFn> {
        CcSynch::new(threads, max_ops, 0u64, COUNTER)
    }
}
