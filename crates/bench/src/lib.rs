//! Shared helpers for the `repro` harness and the Criterion benches:
//! sweep definitions, table formatting, and native-benchmark drivers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::Arc;

use mpsync_core::{ApplyOp, CcSynch, HybComb, MpServer, ShmServer};
use mpsync_objects::seq::counter_dispatch;
use mpsync_udn::{Fabric, FabricConfig};

/// The application-thread counts swept on the x-axis of the
/// throughput/latency figures (the paper plots 1–35).
pub fn thread_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 4, 10, 20, 35]
    } else {
        vec![1, 2, 4, 6, 8, 10, 12, 14, 17, 20, 24, 28, 32, 35]
    }
}

/// The `MAX_OPS` values swept in Figure 3c (log-scaled 1..5000).
pub fn max_ops_sweep(quick: bool) -> Vec<u64> {
    if quick {
        vec![1, 10, 100, 1000, 5000]
    } else {
        vec![1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000]
    }
}

/// Prints one CSV row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join(","));
}

/// Formats a float for table output.
pub fn f(v: f64) -> String {
    format!("{v:.2}")
}

/// Counter dispatch function type used across the native drivers.
pub type CounterFn = fn(&mut u64, u64, u64) -> u64;

/// The counter dispatch used by native benches.
pub const COUNTER: CounterFn = counter_dispatch;

/// Runs `ops` fetch-and-increments per thread on `threads` native threads,
/// each owning a handle produced by `mk`, and returns total ops performed
/// (for Criterion throughput bookkeeping).
pub fn hammer_native<H, F>(threads: usize, ops: u64, mk: F) -> u64
where
    H: ApplyOp + Send + 'static,
    F: Fn(usize) -> H,
{
    let mut joins = Vec::new();
    for t in 0..threads {
        let mut h = mk(t);
        joins.push(std::thread::spawn(move || {
            for _ in 0..ops {
                h.apply(0, 0);
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    threads as u64 * ops
}

/// Builds a TILE-Gx-shaped UDN fabric sized for `n` endpoints.
pub fn fabric_for(n: usize) -> Arc<Fabric> {
    Arc::new(Fabric::new(FabricConfig::new(n.div_ceil(4).max(1))))
}

/// Convenience constructors for the four native executors over a counter,
/// used by benches and examples.
pub mod native_counter {
    use super::*;

    /// MP-SERVER counter: returns the server handle (shut down on drop).
    pub fn mp_server(fabric: &Arc<Fabric>) -> MpServer<u64> {
        MpServer::spawn(fabric.register_any().unwrap(), 0u64, COUNTER)
    }

    /// SHM-SERVER counter for up to `clients` clients.
    pub fn shm_server(clients: usize) -> ShmServer<u64> {
        ShmServer::spawn(clients, 0u64, COUNTER)
    }

    /// HYBCOMB counter for up to `threads` threads.
    pub fn hybcomb(threads: usize, max_ops: u64) -> HybComb<u64, CounterFn> {
        HybComb::new(threads, max_ops, 0u64, COUNTER)
    }

    /// CC-SYNCH counter for up to `threads` threads.
    pub fn cc_synch(threads: usize, max_ops: u64) -> CcSynch<u64, CounterFn> {
        CcSynch::new(threads, max_ops, 0u64, COUNTER)
    }
}
