//! `repro` — regenerates every table and figure of the paper's evaluation
//! (§5) on the `tilesim` machine model, printing CSV series shaped like the
//! paper's plots.
//!
//! ```text
//! repro [--quick] [--horizon CYCLES] [--seed N] [--jobs N] [--timing]
//!       [--baseline-ms MS] [--check-baseline PATH]
//!       [--metrics] [--metrics-json PATH] [--trace PATH]
//!       <experiment>... | all
//! repro --list
//! ```
//!
//! Experiments: `fig3a fig3b fig3c fig4a fig4b fig4c fig5a fig5b
//! tab-cas tab-fair tab-x86 abl-swap abl-nodrain ext-locks ext-tail
//! ext-imbalance`.
//!
//! Numbers are deterministic for a given seed/horizon. Absolute values are
//! calibrated to the paper's magnitudes; the claims under reproduction are
//! the *shapes* (who wins, by what factor, where curves cross) — see
//! EXPERIMENTS.md.
//!
//! # Execution model
//!
//! Each experiment is split into its *task list* — the independent
//! simulator runs behind its sweep points — and its *render* step, which
//! formats rows from the finished results. Experiments are processed in
//! canonical order; each one's tasks fan out over a bounded pool of
//! `--jobs` worker threads (default: host parallelism) feeding a global
//! memo cache, then the render step prints from the cache on the main
//! thread. Output is therefore byte-identical at every `--jobs` value,
//! including `--jobs 1`. Runs shared between experiments (the counter
//! sweeps behind fig3a/3b/4b and the tables) are simulated once.
//!
//! `--timing` additionally reports wall-clock per experiment plus the
//! engine's host-side handoff counters on stderr, and writes the summary
//! to `BENCH_repro.json` at the repository root (stdout stays untouched).
//! `--check-baseline PATH` compares this run against a committed
//! `BENCH_repro.json` and fails if any experiment regressed more than 2×.
//!
//! `--metrics`, `--metrics-json PATH` and `--trace PATH` run the *native
//! telemetry phase* (short instrumented workloads through the real
//! emulated-UDN executors; see `mpsync_bench::metrics`) after the
//! experiments: `--metrics` prints per-construction latency tables on
//! stderr, `--metrics-json` writes them as JSON, `--trace` writes a Chrome
//! `trace_event` timeline. All three need the `telemetry` cargo feature for
//! real data (without it they report empty and say so). Stdout stays
//! reserved for experiment CSV either way, so the committed oracle output
//! is unaffected.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use mpsync_bench::{
    check_against_baseline, f, for_each_parallel, max_ops_sweep, metrics, row, thread_sweep,
    TimingReport,
};
use mpsync_telemetry as telemetry;
use tilesim::algos::{Approach, HybOptions, LockKind};
use tilesim::workload::{self, servicing_core};
use tilesim::{HostStats, MachineConfig, Metric, SimResult};

struct Opts {
    quick: bool,
    horizon: u64,
    seed: u64,
    jobs: usize,
    timing: bool,
    baseline_ms: Option<u64>,
    check_baseline: Option<String>,
    metrics: bool,
    metrics_json: Option<String>,
    trace: Option<String>,
}

fn main() {
    let mut opts = Opts {
        quick: false,
        horizon: workload::DEFAULT_HORIZON,
        seed: 42,
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        timing: false,
        baseline_ms: None,
        check_baseline: None,
        metrics: false,
        metrics_json: None,
        trace: None,
    };
    let invocation: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments: Vec<String> = Vec::new();
    let mut args = invocation.iter().cloned();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--horizon" => {
                opts.horizon = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--horizon needs a cycle count");
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--jobs" => {
                opts.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs a thread count");
            }
            "--timing" => opts.timing = true,
            "--baseline-ms" => {
                opts.baseline_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--baseline-ms needs milliseconds"),
                );
            }
            "--check-baseline" => {
                opts.check_baseline =
                    Some(args.next().expect("--check-baseline needs a file path"));
            }
            "--metrics" => opts.metrics = true,
            "--metrics-json" => {
                opts.metrics_json = Some(args.next().expect("--metrics-json needs a file path"));
            }
            "--trace" => {
                opts.trace = Some(args.next().expect("--trace needs a file path"));
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            "--list" => {
                print_list();
                return;
            }
            other => experiments.push(other.to_string()),
        }
    }
    let wants_metrics = opts.metrics || opts.metrics_json.is_some() || opts.trace.is_some();
    if experiments.is_empty() && !wants_metrics {
        print_usage();
        std::process::exit(2);
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = ALL.iter().map(|s| s.to_string()).collect();
    }
    for e in &experiments {
        if !ALL.contains(&e.as_str()) {
            eprintln!("unknown experiment {e:?}");
            if let Some(close) = closest_experiment(e) {
                eprintln!("did you mean {close:?}?");
            }
            eprintln!("run `repro --list` for every experiment and what it reproduces");
            std::process::exit(2);
        }
    }
    // Read the committed baseline up front: --timing rewrites
    // BENCH_repro.json, and the check usually points at that same file.
    let baseline_json = opts.check_baseline.as_ref().map(|p| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {p}: {e}");
            std::process::exit(2);
        })
    });

    let cache = Cache::default();
    let started = Instant::now();
    let mut figures: Vec<(String, u64)> = Vec::new();
    for e in &experiments {
        let t0 = Instant::now();
        let mut tasks = tasks_for(e, &opts);
        let mut seen = HashSet::new();
        tasks.retain(|t| seen.insert(t.clone()));
        for_each_parallel(&tasks, opts.jobs, |t| {
            cache.get(&opts, t);
        });
        render(e, &opts, &cache);
        println!();
        figures.push((e.clone(), t0.elapsed().as_millis() as u64));
    }

    // Native telemetry phase: run when asked for explicitly, or fold into a
    // --timing report whenever the build actually records something.
    let telemetry_json = if wants_metrics || (opts.timing && telemetry::ENABLED) {
        if !telemetry::ENABLED {
            eprintln!(
                "# metrics: telemetry feature is off; rebuild with \
                 `--features telemetry` for real data"
            );
        }
        let phases = metrics::run_native_metrics(4, 2_000);
        if opts.metrics {
            for p in &phases {
                if p.report.is_empty() {
                    eprintln!("# metrics[{}]: empty (telemetry disabled)", p.name);
                } else {
                    eprintln!("# metrics[{}]: {} spans", p.name, p.spans.len());
                    eprint!("{}", p.report);
                }
            }
        }
        let json = metrics::metrics_json(&phases);
        if let Some(path) = &opts.metrics_json {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("# metrics: wrote {path}");
        }
        if let Some(path) = &opts.trace {
            if let Err(e) = std::fs::write(path, metrics::chrome_trace(&phases)) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("# metrics: wrote Chrome trace {path}");
        }
        Some(json)
    } else {
        None
    };

    if opts.timing || baseline_json.is_some() {
        let (sim_runs, host) = cache.stats();
        let report = TimingReport {
            args: invocation.join(" "),
            git_rev: mpsync_telemetry::meta::git_revision(),
            hostname: mpsync_telemetry::meta::hostname(),
            quick: opts.quick,
            horizon: opts.horizon,
            seed: opts.seed,
            jobs: opts.jobs,
            total_ms: started.elapsed().as_millis() as u64,
            prechange_total_ms: opts.baseline_ms,
            figures,
            sim_runs,
            host,
            telemetry: telemetry_json,
        };
        for (name, ms) in &report.figures {
            eprintln!("# timing: {name} {ms} ms");
        }
        eprintln!(
            "# timing: total {} ms, {} distinct sim runs, jobs={}",
            report.total_ms, report.sim_runs, report.jobs
        );
        eprintln!(
            "# timing: host handoffs={} engine_parks={} proc_parks={} inline_payloads={} heap_fallbacks={}",
            report.host.handoffs,
            report.host.engine_parks,
            report.host.proc_parks,
            report.host.inline_payloads,
            report.host.heap_fallbacks
        );
        if opts.timing {
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repro.json");
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("# timing: wrote {path}");
        }
        if let Some(json) = &baseline_json {
            match check_against_baseline(&report, json, 2.0) {
                Ok(()) => eprintln!("# timing: within 2x of committed baseline"),
                Err(msg) => {
                    eprintln!("# timing: REGRESSION vs baseline: {msg}");
                    std::process::exit(1);
                }
            }
        }
    }
}

const ALL: &[&str] = &[
    "fig3a",
    "fig3b",
    "fig3c",
    "fig4a",
    "fig4b",
    "fig4c",
    "fig5a",
    "fig5b",
    "tab-cas",
    "tab-fair",
    "tab-x86",
    "abl-swap",
    "abl-nodrain",
    "ext-locks",
    "ext-tail",
    "ext-imbalance",
];

/// One-line description per experiment id, same order as [`ALL`]
/// (summarized from the experiment table in DESIGN.md §4).
const DESCRIPTIONS: &[(&str, &str)] = &[
    (
        "fig3a",
        "counter throughput vs app threads: MP-SERVER, HYBCOMB, SHM-SERVER, CC-SYNCH",
    ),
    (
        "fig3b",
        "average request latency (cycles) vs threads, same four constructions",
    ),
    (
        "fig3c",
        "max throughput vs the MAX_OPS combining bound, HYBCOMB and CC-SYNCH",
    ),
    (
        "fig4a",
        "stalled vs total cycles per op on the servicing thread (fixed combiner)",
    ),
    (
        "fig4b",
        "actual combining rate vs threads, HYBCOMB and CC-SYNCH",
    ),
    (
        "fig4c",
        "cycles per critical section vs CS length, with the ideal line",
    ),
    (
        "fig5a",
        "queue throughput vs clients: one-/two-lock MS queues and LCRQ",
    ),
    (
        "fig5b",
        "stack throughput vs clients: coarse-lock stacks and Treiber",
    ),
    (
        "tab-cas",
        "in-text claim: CAS executions per apply_op under HYBCOMB",
    ),
    (
        "tab-fair",
        "in-text claim: per-thread fairness ratios of HYBCOMB and MP-SERVER",
    ),
    (
        "tab-x86",
        "stall fraction as RMR cost grows (the paper's x86 discussion, 5.5)",
    ),
    (
        "abl-swap",
        "ablation: CAS vs SWAP combiner registration in HYBCOMB",
    ),
    (
        "abl-nodrain",
        "ablation: HYBCOMB without the eager message-drain loop",
    ),
    (
        "ext-locks",
        "extension: counter under TAS/ticket/MCS locks vs MP-SERVER",
    ),
    (
        "ext-tail",
        "extension: latency percentiles (the paper's 'sporadic hiccups')",
    ),
    (
        "ext-imbalance",
        "extension: asymmetric enqueue/dequeue mixes on the one-lock queue",
    ),
];

fn print_list() {
    println!(
        "experiments ({} total; `repro all` runs every one):",
        ALL.len()
    );
    for (id, desc) in DESCRIPTIONS {
        println!("  {id:<14} {desc}");
    }
}

/// Nearest experiment id by edit distance, if anything is plausibly close
/// (distance ≤ 3) — catches the common `fig3A` / `fig-3a` / `tab_cas` typos.
fn closest_experiment(input: &str) -> Option<&'static str> {
    let lower = input.to_ascii_lowercase();
    ALL.iter()
        .map(|&id| (edit_distance(&lower, id), id))
        .min()
        .filter(|&(d, _)| d <= 3)
        .map(|(_, id)| id)
}

fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

fn print_usage() {
    eprintln!(
        "usage: repro [--quick] [--horizon CYCLES] [--seed N] [--jobs N] [--timing] \
         [--baseline-ms MS] [--check-baseline PATH] [--metrics] [--metrics-json PATH] \
         [--trace PATH] <experiment>...|all"
    );
    eprintln!(
        "experiments: {} (describe with `repro --list`)",
        ALL.join(" ")
    );
}

fn cfg() -> MachineConfig {
    MachineConfig::tile_gx8036()
}

/// One independent simulator run: the unit of parallel dispatch and of
/// memoization. Horizon and seed are uniform per invocation (from [`Opts`])
/// so they are not part of the key.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Task {
    Counter {
        a: Approach,
        threads: usize,
        max_ops: u64,
    },
    CounterFixed {
        x86: bool,
        a: Approach,
        threads: usize,
    },
    CounterHyb {
        threads: usize,
        max_ops: u64,
        use_swap: bool,
        eager_drain: bool,
    },
    CounterLock {
        kind: LockKind,
        threads: usize,
    },
    Array {
        a: Approach,
        threads: usize,
        iters: u64,
        max_ops: u64,
    },
    QueueOnelock {
        a: Approach,
        threads: usize,
        max_ops: u64,
    },
    QueueLcrq {
        threads: usize,
    },
    QueueMp2 {
        threads: usize,
    },
    QueueMixed {
        a: Approach,
        threads: usize,
        enq: usize,
        max_ops: u64,
    },
    Stack {
        a: Approach,
        threads: usize,
        max_ops: u64,
    },
    StackTreiber {
        threads: usize,
    },
}

impl Task {
    fn run(&self, o: &Opts) -> SimResult {
        let (h, s) = (o.horizon, o.seed);
        match *self {
            Task::Counter {
                a,
                threads,
                max_ops,
            } => workload::run_counter(cfg(), a, threads, max_ops, h, s),
            Task::CounterFixed { x86, a, threads } => {
                let c = if x86 {
                    MachineConfig::x86_like()
                } else {
                    cfg()
                };
                workload::run_counter_fixed(c, a, threads, h, s)
            }
            Task::CounterHyb {
                threads,
                max_ops,
                use_swap,
                eager_drain,
            } => workload::run_counter_hybcomb_opts(
                cfg(),
                threads,
                max_ops,
                h,
                s,
                HybOptions {
                    use_swap,
                    eager_drain,
                },
            ),
            Task::CounterLock { kind, threads } => {
                workload::run_counter_lock(cfg(), kind, threads, h, s)
            }
            Task::Array {
                a,
                threads,
                iters,
                max_ops,
            } => workload::run_array(cfg(), a, threads, iters, max_ops, h, s),
            Task::QueueOnelock {
                a,
                threads,
                max_ops,
            } => workload::run_queue_onelock(cfg(), a, threads, max_ops, h, s),
            Task::QueueLcrq { threads } => workload::run_queue_lcrq(cfg(), threads, h, s),
            Task::QueueMp2 { threads } => workload::run_queue_mp2(cfg(), threads, h, s),
            Task::QueueMixed {
                a,
                threads,
                enq,
                max_ops,
            } => workload::run_queue_mixed(cfg(), a, threads, enq, max_ops, h, s),
            Task::Stack {
                a,
                threads,
                max_ops,
            } => workload::run_stack(cfg(), a, threads, max_ops, h, s),
            Task::StackTreiber { threads } => workload::run_stack_treiber(cfg(), threads, h, s),
        }
    }
}

/// Global memo over [`Task`]s: the simulator is deterministic, so each
/// distinct task is simulated once and shared — across the experiments that
/// reuse the same counter sweeps (fig3a/3b/4b and the tables) and across
/// pool workers. A worker asking for an in-flight task blocks on its cell
/// instead of re-running it.
#[derive(Default)]
struct Cache {
    map: Mutex<HashMap<Task, Arc<OnceLock<SimResult>>>>,
}

impl Cache {
    fn get(&self, o: &Opts, t: &Task) -> SimResult {
        let cell = {
            let mut m = self.map.lock().unwrap();
            m.entry(t.clone()).or_default().clone()
        };
        cell.get_or_init(|| t.run(o)).clone()
    }

    fn counter(&self, o: &Opts, a: Approach, threads: usize, max_ops: u64) -> SimResult {
        self.get(
            o,
            &Task::Counter {
                a,
                threads,
                max_ops,
            },
        )
    }

    /// (distinct runs executed, host counters summed over them).
    fn stats(&self) -> (u64, HostStats) {
        let m = self.map.lock().unwrap();
        let mut host = HostStats::default();
        let mut runs = 0;
        for cell in m.values() {
            if let Some(r) = cell.get() {
                runs += 1;
                host.merge(&r.host);
            }
        }
        (runs, host)
    }
}

/// The independent simulator runs behind one experiment, in any order.
fn tasks_for(name: &str, o: &Opts) -> Vec<Task> {
    let mut t = Vec::new();
    match name {
        "fig3a" | "fig3b" => {
            for &n in &thread_sweep(o.quick) {
                for a in Approach::ALL {
                    t.push(Task::Counter {
                        a,
                        threads: n,
                        max_ops: 200,
                    });
                }
            }
        }
        "fig3c" => {
            let n = 35.min(workload::max_threads(&cfg(), Approach::HybComb));
            for &m in &max_ops_sweep(o.quick) {
                t.push(Task::Counter {
                    a: Approach::HybComb,
                    threads: n,
                    max_ops: m,
                });
                t.push(Task::Counter {
                    a: Approach::CcSynch,
                    threads: n,
                    max_ops: m,
                });
            }
        }
        "fig4a" => {
            let n = 35.min(cfg().cores() - 1);
            for a in Approach::ALL {
                t.push(Task::CounterFixed {
                    x86: false,
                    a,
                    threads: n,
                });
            }
        }
        "fig4b" => {
            for &n in &thread_sweep(o.quick) {
                t.push(Task::Counter {
                    a: Approach::HybComb,
                    threads: n,
                    max_ops: 200,
                });
                t.push(Task::Counter {
                    a: Approach::CcSynch,
                    threads: n,
                    max_ops: 200,
                });
            }
        }
        "fig4c" => {
            let n = 14.min(cfg().cores() - 1);
            for &iters in &fig4c_iters(o) {
                for a in Approach::ALL {
                    t.push(Task::Array {
                        a,
                        threads: n,
                        iters,
                        max_ops: 200,
                    });
                }
            }
        }
        "fig5a" => {
            for &n in &thread_sweep(o.quick) {
                let t2 = n.min(cfg().cores() - 2);
                for a in Approach::ALL {
                    t.push(Task::QueueOnelock {
                        a,
                        threads: n,
                        max_ops: 200,
                    });
                }
                t.push(Task::QueueLcrq { threads: n });
                t.push(Task::QueueMp2 { threads: t2 });
            }
        }
        "fig5b" => {
            for &n in &thread_sweep(o.quick) {
                for a in Approach::ALL {
                    t.push(Task::Stack {
                        a,
                        threads: n,
                        max_ops: 200,
                    });
                }
                t.push(Task::StackTreiber { threads: n });
            }
        }
        "tab-cas" => {
            for &n in &thread_sweep(o.quick) {
                t.push(Task::Counter {
                    a: Approach::HybComb,
                    threads: n,
                    max_ops: 200,
                });
            }
        }
        "tab-fair" => {
            for &n in &thread_sweep(o.quick) {
                if n < 2 {
                    continue;
                }
                t.push(Task::Counter {
                    a: Approach::HybComb,
                    threads: n,
                    max_ops: 200,
                });
                t.push(Task::Counter {
                    a: Approach::MpServer,
                    threads: n,
                    max_ops: 200,
                });
            }
        }
        "tab-x86" => {
            for a in [Approach::ShmServer, Approach::CcSynch, Approach::MpServer] {
                t.push(Task::CounterFixed {
                    x86: false,
                    a,
                    threads: 10,
                });
                t.push(Task::CounterFixed {
                    x86: true,
                    a,
                    threads: 10,
                });
            }
        }
        "abl-swap" => {
            for &n in &thread_sweep(o.quick) {
                for use_swap in [false, true] {
                    t.push(Task::CounterHyb {
                        threads: n,
                        max_ops: 200,
                        use_swap,
                        eager_drain: true,
                    });
                }
            }
        }
        "abl-nodrain" => {
            for &n in &thread_sweep(o.quick) {
                for eager_drain in [true, false] {
                    t.push(Task::CounterHyb {
                        threads: n,
                        max_ops: 200,
                        use_swap: false,
                        eager_drain,
                    });
                }
            }
        }
        "ext-locks" => {
            for &n in &thread_sweep(o.quick) {
                for kind in LockKind::ALL {
                    t.push(Task::CounterLock { kind, threads: n });
                }
                t.push(Task::Counter {
                    a: Approach::MpServer,
                    threads: n,
                    max_ops: 200,
                });
            }
        }
        "ext-tail" => {
            for a in Approach::ALL {
                t.push(Task::Counter {
                    a,
                    threads: 20,
                    max_ops: 200,
                });
            }
        }
        "ext-imbalance" => {
            for enq in 1..=3usize {
                for a in Approach::ALL {
                    t.push(Task::QueueMixed {
                        a,
                        threads: 20,
                        enq,
                        max_ops: 200,
                    });
                }
            }
        }
        other => unreachable!("experiment {other:?} validated in main"),
    }
    t
}

fn fig4c_iters(o: &Opts) -> Vec<u64> {
    if o.quick {
        vec![0, 2, 6, 10, 15]
    } else {
        (0..=15).collect()
    }
}

fn render(name: &str, o: &Opts, c: &Cache) {
    match name {
        "fig3a" => fig3a(o, c),
        "fig3b" => fig3b(o, c),
        "fig3c" => fig3c(o, c),
        "fig4a" => fig4a(o, c),
        "fig4b" => fig4b(o, c),
        "fig4c" => fig4c(o, c),
        "fig5a" => fig5a(o, c),
        "fig5b" => fig5b(o, c),
        "tab-cas" => tab_cas(o, c),
        "tab-fair" => tab_fair(o, c),
        "tab-x86" => tab_x86(o, c),
        "abl-swap" => abl_swap(o, c),
        "abl-nodrain" => abl_nodrain(o, c),
        "ext-locks" => ext_locks(o, c),
        "ext-tail" => ext_tail(o, c),
        "ext-imbalance" => ext_imbalance(o, c),
        other => unreachable!("experiment {other:?} validated in main"),
    }
}

/// Figure 3a: counter throughput (Mops/s) vs. application threads.
fn fig3a(o: &Opts, c: &Cache) {
    println!("# fig3a: counter throughput vs threads (paper: mp-server up to ~115 Mops/s, 4.3x over shm-server; HybComb ~2.5x over CC-Synch at high concurrency)");
    row(&[
        "threads".into(),
        "mp-server".into(),
        "HybComb".into(),
        "shm-server".into(),
        "CC-Synch".into(),
    ]);
    for &t in &thread_sweep(o.quick) {
        let mut cells = vec![t.to_string()];
        for a in Approach::ALL {
            let r = c.counter(o, a, t, 200);
            cells.push(f(r.mops()));
        }
        row(&cells);
    }
}

/// Figure 3b: average request latency (cycles) vs. application threads.
fn fig3b(o: &Opts, c: &Cache) {
    println!("# fig3b: counter request latency (cycles) vs threads (paper: mp-server lowest; combining latency dips when combining kicks in, then grows)");
    row(&[
        "threads".into(),
        "mp-server".into(),
        "HybComb".into(),
        "shm-server".into(),
        "CC-Synch".into(),
    ]);
    for &t in &thread_sweep(o.quick) {
        let mut cells = vec![t.to_string()];
        for a in Approach::ALL {
            let r = c.counter(o, a, t, 200);
            cells.push(f(r.avg_latency()));
        }
        row(&cells);
    }
}

/// Figure 3c: throughput at maximum load vs. MAX_OPS (log x in the paper).
fn fig3c(o: &Opts, c: &Cache) {
    println!("# fig3c: max-load throughput vs MAX_OPS (paper: HybComb keeps growing to ~88 Mops/s at 5000; CC-Synch saturates early)");
    row(&["max_ops".into(), "HybComb".into(), "CC-Synch".into()]);
    let t = 35.min(workload::max_threads(&cfg(), Approach::HybComb));
    for &m in &max_ops_sweep(o.quick) {
        let hyb = c.counter(o, Approach::HybComb, t, m);
        let cc = c.counter(o, Approach::CcSynch, t, m);
        row(&[m.to_string(), f(hyb.mops()), f(cc.mops())]);
    }
}

/// Figure 4a: stalled vs. total cycles per op on the servicing thread under
/// maximum load, fixed combiner (MAX_OPS = ∞).
fn fig4a(o: &Opts, c: &Cache) {
    println!("# fig4a: servicing-thread cycles/op under max load, fixed combiner (paper: mp-server/HybComb ~no stalls; >50% stalls for shm-server/CC-Synch)");
    row(&[
        "approach".into(),
        "stalled".into(),
        "total".into(),
        "stall_frac".into(),
    ]);
    let t = 35.min(cfg().cores() - 1);
    for a in Approach::ALL {
        let r = c.get(
            o,
            &Task::CounterFixed {
                x86: false,
                a,
                threads: t,
            },
        );
        let core = servicing_core(&r);
        let stalled = r.stalls_per_served_op(core);
        let total = r.cycles_per_served_op(core);
        row(&[
            a.label().into(),
            f(stalled),
            f(total),
            f(stalled / total.max(1e-9)),
        ]);
    }
}

/// Figure 4b: actual combining rate vs. threads.
fn fig4b(o: &Opts, c: &Cache) {
    println!("# fig4b: actual combining rate vs threads, MAX_OPS=200 (paper: ~threads-1 at low concurrency, sharp rise, CC-Synch reaches 200, HybComb slightly below)");
    row(&[
        "threads".into(),
        "HybComb".into(),
        "CC-Synch".into(),
        "HybComb_orphan_frac".into(),
    ]);
    for &t in &thread_sweep(o.quick) {
        let hyb = c.counter(o, Approach::HybComb, t, 200);
        let cc = c.counter(o, Approach::CcSynch, t, 200);
        let orphan_frac = if hyb.metric_sum(Metric::Rounds) == 0 {
            0.0
        } else {
            hyb.metric_sum(Metric::Orphans) as f64 / hyb.metric_sum(Metric::Rounds) as f64
        };
        row(&[
            t.to_string(),
            f(hyb.combining_rate()),
            f(cc.combining_rate()),
            f(orphan_frac),
        ]);
    }
}

/// Figure 4c: cycles per CS execution vs. CS length (array iterations).
fn fig4c(o: &Opts, c: &Cache) {
    println!("# fig4c: cycles per CS vs CS length (paper: constant overhead for mp-server/HybComb; shm-server/CC-Synch overhead shrinks as RMRs overlap; ~10% gap at 15 iters)");
    row(&[
        "iters".into(),
        "mp-server".into(),
        "HybComb".into(),
        "shm-server".into(),
        "CC-Synch".into(),
        "ideal".into(),
    ]);
    let t = 14.min(cfg().cores() - 1);
    for &iters in &fig4c_iters(o) {
        let mut cells = vec![iters.to_string()];
        for a in Approach::ALL {
            let r = c.get(
                o,
                &Task::Array {
                    a,
                    threads: t,
                    iters,
                    max_ops: 200,
                },
            );
            let ops = r.metric_sum(Metric::Ops).max(1);
            cells.push(f(r.cycles as f64 / ops as f64));
        }
        cells.push(f(workload::array_ideal_cycles(&cfg(), iters) as f64));
        row(&cells);
    }
}

/// Figure 5a: queue throughput vs. clients.
fn fig5a(o: &Opts, c: &Cache) {
    println!("# fig5a: queue throughput vs clients (paper: one-lock queues win; mp-server-1 up to 2x and HybComb-1 1.5x over third best; LCRQ and mp-server-2 level off early)");
    row(&[
        "clients".into(),
        "mp-server-1".into(),
        "HybComb-1".into(),
        "shm-server-1".into(),
        "CC-Synch-1".into(),
        "LCRQ".into(),
        "mp-server-2".into(),
    ]);
    for &t in &thread_sweep(o.quick) {
        let t2 = t.min(cfg().cores() - 2);
        let mut cells = vec![t.to_string()];
        for a in Approach::ALL {
            let r = c.get(
                o,
                &Task::QueueOnelock {
                    a,
                    threads: t,
                    max_ops: 200,
                },
            );
            cells.push(f(r.mops()));
        }
        cells.push(f(c.get(o, &Task::QueueLcrq { threads: t }).mops()));
        cells.push(f(c.get(o, &Task::QueueMp2 { threads: t2 }).mops()));
        row(&cells);
    }
}

/// Figure 5b: stack throughput vs. clients.
fn fig5b(o: &Opts, c: &Cache) {
    println!("# fig5b: stack throughput vs clients (paper: mp-server and HybComb coarse stacks win, ~matching the one-lock queue; Treiber collapses under CAS contention)");
    row(&[
        "clients".into(),
        "mp-server".into(),
        "HybComb".into(),
        "shm-server".into(),
        "CC-Synch".into(),
        "Treiber".into(),
    ]);
    for &t in &thread_sweep(o.quick) {
        let mut cells = vec![t.to_string()];
        for a in Approach::ALL {
            let r = c.get(
                o,
                &Task::Stack {
                    a,
                    threads: t,
                    max_ops: 200,
                },
            );
            cells.push(f(r.mops()));
        }
        cells.push(f(c.get(o, &Task::StackTreiber { threads: t }).mops()));
        row(&cells);
    }
}

/// In-text §5.3: CAS executions per apply_op for HYBCOMB.
fn tab_cas(o: &Opts, c: &Cache) {
    println!("# tab-cas: HybComb CAS per operation (paper: ~0.1 at high concurrency, <=0.7 in any multithreaded run)");
    row(&["threads".into(), "cas_per_op".into()]);
    for &t in &thread_sweep(o.quick) {
        let r = c.counter(o, Approach::HybComb, t, 200);
        row(&[t.to_string(), format!("{:.3}", r.cas_per_op())]);
    }
}

/// In-text §5.3: fairness ratio (max/min per-thread ops).
fn tab_fair(o: &Opts, c: &Cache) {
    println!("# tab-fair: fairness ratio max/min ops per thread (paper: HybComb <=1.2 (avg 1.16); mp-server ~1.1)");
    row(&["threads".into(), "HybComb".into(), "mp-server".into()]);
    for &t in &thread_sweep(o.quick) {
        if t < 2 {
            continue;
        }
        let hyb = c.counter(o, Approach::HybComb, t, 200);
        let mp = c.counter(o, Approach::MpServer, t, 200);
        row(&[
            t.to_string(),
            f(hyb.fairness_ratio()),
            f(mp.fairness_ratio()),
        ]);
    }
}

/// §5.5: stall share of the servicing thread as RMRs get more expensive
/// (x86-like costs).
fn tab_x86(o: &Opts, c: &Cache) {
    println!("# tab-x86: servicing-thread stall fraction, TILE-Gx-like vs x86-like RMR costs (paper §5.5: proportionally more stalls on x86 => larger improvement potential)");
    row(&[
        "approach".into(),
        "tile_stall_frac".into(),
        "x86_stall_frac".into(),
    ]);
    let t = 10;
    for a in [Approach::ShmServer, Approach::CcSynch, Approach::MpServer] {
        let frac = |x86: bool| {
            let r = c.get(o, &Task::CounterFixed { x86, a, threads: t });
            let core = servicing_core(&r);
            let s = &r.per_core[core];
            s.stall as f64 / (s.busy + s.stall) as f64
        };
        row(&[a.label().into(), f(frac(false)), f(frac(true))]);
    }
}

/// Ablation: CAS vs SWAP combiner registration (§4.2's design discussion).
fn abl_swap(o: &Opts, c: &Cache) {
    println!("# abl-swap: HybComb with CAS (paper's choice) vs SWAP registration (paper: SWAP lets several threads become combiners with only their own request)");
    row(&[
        "threads".into(),
        "cas_mops".into(),
        "swap_mops".into(),
        "cas_rate".into(),
        "swap_rate".into(),
        "cas_orphans".into(),
        "swap_orphans".into(),
    ]);
    for &t in &thread_sweep(o.quick) {
        let cas = c.get(
            o,
            &Task::CounterHyb {
                threads: t,
                max_ops: 200,
                use_swap: false,
                eager_drain: true,
            },
        );
        let swap = c.get(
            o,
            &Task::CounterHyb {
                threads: t,
                max_ops: 200,
                use_swap: true,
                eager_drain: true,
            },
        );
        let orphans = |r: &SimResult| {
            if r.metric_sum(Metric::Rounds) == 0 {
                0.0
            } else {
                r.metric_sum(Metric::Orphans) as f64 / r.metric_sum(Metric::Rounds) as f64
            }
        };
        row(&[
            t.to_string(),
            f(cas.mops()),
            f(swap.mops()),
            f(cas.combining_rate()),
            f(swap.combining_rate()),
            f(orphans(&cas)),
            f(orphans(&swap)),
        ]);
    }
}

/// Extension: counter throughput under classical spin locks (§3's context),
/// against MP-SERVER — why delegation wins even over a queue lock.
fn ext_locks(o: &Opts, c: &Cache) {
    println!("# ext-locks: counter throughput under classical locks vs mp-server (paper §3: locks pay O(1) RMRs per acquisition *plus* data migration)");
    row(&[
        "threads".into(),
        "tas".into(),
        "ticket".into(),
        "mcs".into(),
        "mp-server".into(),
    ]);
    for &t in &thread_sweep(o.quick) {
        let mut cells = vec![t.to_string()];
        for kind in LockKind::ALL {
            let r = c.get(o, &Task::CounterLock { kind, threads: t });
            cells.push(f(r.mops()));
        }
        let mp = c.counter(o, Approach::MpServer, t, 200);
        cells.push(f(mp.mops()));
        row(&cells);
    }
}

/// Extension: tail latency — §5.3's "sporadic latency hiccups for some
/// requests (when the requesting thread becomes a combiner)".
fn ext_tail(o: &Opts, c: &Cache) {
    println!("# ext-tail: request latency percentiles (cycles; bucketed) at 20 threads (paper §5.3: HybComb trades throughput for sporadic combiner-duty hiccups; mp-server has no such mode)");
    row(&[
        "approach".into(),
        "avg".into(),
        "p50".into(),
        "p90".into(),
        "p99".into(),
    ]);
    let t = 20;
    for a in Approach::ALL {
        let r = c.counter(o, a, t, 200);
        row(&[
            a.label().into(),
            f(r.avg_latency()),
            r.latency_percentile(0.50).to_string(),
            r.latency_percentile(0.90).to_string(),
            r.latency_percentile(0.99).to_string(),
        ]);
    }
}

/// Extension: asymmetric queue mixes (1–3 enqueues per 4 operations).
fn ext_imbalance(o: &Opts, c: &Cache) {
    println!("# ext-imbalance: one-lock queue throughput under asymmetric mixes at 20 threads (1/4 = dequeue-heavy, mostly-empty; 3/4 = enqueue-heavy, drifts full; balanced load is fig5a)");
    row(&[
        "enq_per_4".into(),
        "mp-server".into(),
        "HybComb".into(),
        "shm-server".into(),
        "CC-Synch".into(),
    ]);
    let t = 20;
    for enq in 1..=3usize {
        let mut cells = vec![format!("{enq}/4")];
        for a in Approach::ALL {
            let r = c.get(
                o,
                &Task::QueueMixed {
                    a,
                    threads: t,
                    enq,
                    max_ops: 200,
                },
            );
            cells.push(f(r.mops()));
        }
        row(&cells);
    }
}

/// Ablation: the eager drain loop (Algorithm 1 lines 25–28).
fn abl_nodrain(o: &Opts, c: &Cache) {
    println!("# abl-nodrain: HybComb with vs without the eager drain loop (paper: the loop is not needed for correctness but increases combining potential)");
    row(&[
        "threads".into(),
        "drain_mops".into(),
        "nodrain_mops".into(),
        "drain_rate".into(),
        "nodrain_rate".into(),
    ]);
    for &t in &thread_sweep(o.quick) {
        let drain = c.get(
            o,
            &Task::CounterHyb {
                threads: t,
                max_ops: 200,
                use_swap: false,
                eager_drain: true,
            },
        );
        let nodrain = c.get(
            o,
            &Task::CounterHyb {
                threads: t,
                max_ops: 200,
                use_swap: false,
                eager_drain: false,
            },
        );
        row(&[
            t.to_string(),
            f(drain.mops()),
            f(nodrain.mops()),
            f(drain.combining_rate()),
            f(nodrain.combining_rate()),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_is_described() {
        let described: Vec<&str> = DESCRIPTIONS.iter().map(|(id, _)| *id).collect();
        assert_eq!(described, ALL, "DESCRIPTIONS must mirror ALL, in order");
    }

    #[test]
    fn typos_resolve_to_a_suggestion() {
        assert_eq!(closest_experiment("fig3A"), Some("fig3a"));
        assert_eq!(closest_experiment("tab_cas"), Some("tab-cas"));
        assert_eq!(closest_experiment("ext-imbalnce"), Some("ext-imbalance"));
        assert_eq!(closest_experiment("completely-wrong"), None);
    }
}
