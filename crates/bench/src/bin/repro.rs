//! `repro` — regenerates every table and figure of the paper's evaluation
//! (§5) on the `tilesim` machine model, printing CSV series shaped like the
//! paper's plots.
//!
//! ```text
//! repro [--quick] [--horizon CYCLES] [--seed N] <experiment>... | all
//! ```
//!
//! Experiments: `fig3a fig3b fig3c fig4a fig4b fig4c fig5a fig5b
//! tab-cas tab-fair tab-x86 abl-swap abl-nodrain ext-locks ext-tail
//! ext-imbalance`.
//!
//! Numbers are deterministic for a given seed/horizon. Absolute values are
//! calibrated to the paper's magnitudes; the claims under reproduction are
//! the *shapes* (who wins, by what factor, where curves cross) — see
//! EXPERIMENTS.md.

use mpsync_bench::{f, max_ops_sweep, row, thread_sweep};
use tilesim::algos::{Approach, HybOptions, LockKind};
use tilesim::workload::{self, servicing_core};
use tilesim::{MachineConfig, Metric, SimResult};

struct Opts {
    quick: bool,
    horizon: u64,
    seed: u64,
}

fn main() {
    let mut opts = Opts {
        quick: false,
        horizon: workload::DEFAULT_HORIZON,
        seed: 42,
    };
    let mut experiments: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--horizon" => {
                opts.horizon = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--horizon needs a cycle count");
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = ALL.iter().map(|s| s.to_string()).collect();
    }
    for e in &experiments {
        run_experiment(e, &opts);
        println!();
    }
}

const ALL: &[&str] = &[
    "fig3a", "fig3b", "fig3c", "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "tab-cas",
    "tab-fair", "tab-x86", "abl-swap", "abl-nodrain", "ext-locks", "ext-tail",
    "ext-imbalance",
];

fn print_usage() {
    eprintln!("usage: repro [--quick] [--horizon CYCLES] [--seed N] <experiment>...|all");
    eprintln!("experiments: {}", ALL.join(" "));
}

fn run_experiment(name: &str, o: &Opts) {
    match name {
        "fig3a" => fig3a(o),
        "fig3b" => fig3b(o),
        "fig3c" => fig3c(o),
        "fig4a" => fig4a(o),
        "fig4b" => fig4b(o),
        "fig4c" => fig4c(o),
        "fig5a" => fig5a(o),
        "fig5b" => fig5b(o),
        "tab-cas" => tab_cas(o),
        "tab-fair" => tab_fair(o),
        "tab-x86" => tab_x86(o),
        "abl-swap" => abl_swap(o),
        "abl-nodrain" => abl_nodrain(o),
        "ext-locks" => ext_locks(o),
        "ext-tail" => ext_tail(o),
        "ext-imbalance" => ext_imbalance(o),
        other => {
            eprintln!("unknown experiment {other:?}");
            print_usage();
            std::process::exit(2);
        }
    }
}

fn cfg() -> MachineConfig {
    MachineConfig::tile_gx8036()
}

/// Cache key: (approach label, threads, max_ops, horizon, seed).
type CounterKey = (&'static str, usize, u64, u64, u64);

thread_local! {
    /// Several experiments (fig3a/3b/4b, tab-cas, tab-fair) derive their
    /// columns from identical counter runs; the simulator is deterministic,
    /// so each distinct point is simulated once and reused.
    static COUNTER_CACHE: std::cell::RefCell<std::collections::HashMap<CounterKey, SimResult>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
}

fn counter_cached(o: &Opts, a: Approach, threads: usize, max_ops: u64) -> SimResult {
    let key = (a.label(), threads, max_ops, o.horizon, o.seed);
    COUNTER_CACHE.with(|c| {
        c.borrow_mut()
            .entry(key)
            .or_insert_with(|| {
                workload::run_counter(cfg(), a, threads, max_ops, o.horizon, o.seed)
            })
            .clone()
    })
}

/// Figure 3a: counter throughput (Mops/s) vs. application threads.
fn fig3a(o: &Opts) {
    println!("# fig3a: counter throughput vs threads (paper: mp-server up to ~115 Mops/s, 4.3x over shm-server; HybComb ~2.5x over CC-Synch at high concurrency)");
    row(&["threads".into(), "mp-server".into(), "HybComb".into(), "shm-server".into(), "CC-Synch".into()]);
    for &t in &thread_sweep(o.quick) {
        let mut cells = vec![t.to_string()];
        for a in Approach::ALL {
            let r = counter_cached(o, a, t, 200);
            cells.push(f(r.mops()));
        }
        row(&cells);
    }
}

/// Figure 3b: average request latency (cycles) vs. application threads.
fn fig3b(o: &Opts) {
    println!("# fig3b: counter request latency (cycles) vs threads (paper: mp-server lowest; combining latency dips when combining kicks in, then grows)");
    row(&["threads".into(), "mp-server".into(), "HybComb".into(), "shm-server".into(), "CC-Synch".into()]);
    for &t in &thread_sweep(o.quick) {
        let mut cells = vec![t.to_string()];
        for a in Approach::ALL {
            let r = counter_cached(o, a, t, 200);
            cells.push(f(r.avg_latency()));
        }
        row(&cells);
    }
}

/// Figure 3c: throughput at maximum load vs. MAX_OPS (log x in the paper).
fn fig3c(o: &Opts) {
    println!("# fig3c: max-load throughput vs MAX_OPS (paper: HybComb keeps growing to ~88 Mops/s at 5000; CC-Synch saturates early)");
    row(&["max_ops".into(), "HybComb".into(), "CC-Synch".into()]);
    let t = 35.min(workload::max_threads(&cfg(), Approach::HybComb));
    for &m in &max_ops_sweep(o.quick) {
        let hyb = counter_cached(o, Approach::HybComb, t, m);
        let cc = counter_cached(o, Approach::CcSynch, t, m);
        row(&[m.to_string(), f(hyb.mops()), f(cc.mops())]);
    }
}

/// Figure 4a: stalled vs. total cycles per op on the servicing thread under
/// maximum load, fixed combiner (MAX_OPS = ∞).
fn fig4a(o: &Opts) {
    println!("# fig4a: servicing-thread cycles/op under max load, fixed combiner (paper: mp-server/HybComb ~no stalls; >50% stalls for shm-server/CC-Synch)");
    row(&["approach".into(), "stalled".into(), "total".into(), "stall_frac".into()]);
    let t = 35.min(cfg().cores() - 1);
    for a in Approach::ALL {
        let r = workload::run_counter_fixed(cfg(), a, t, o.horizon, o.seed);
        let core = servicing_core(&r);
        let stalled = r.stalls_per_served_op(core);
        let total = r.cycles_per_served_op(core);
        row(&[
            a.label().into(),
            f(stalled),
            f(total),
            f(stalled / total.max(1e-9)),
        ]);
    }
}

/// Figure 4b: actual combining rate vs. threads.
fn fig4b(o: &Opts) {
    println!("# fig4b: actual combining rate vs threads, MAX_OPS=200 (paper: ~threads-1 at low concurrency, sharp rise, CC-Synch reaches 200, HybComb slightly below)");
    row(&["threads".into(), "HybComb".into(), "CC-Synch".into(), "HybComb_orphan_frac".into()]);
    for &t in &thread_sweep(o.quick) {
        let hyb = counter_cached(o, Approach::HybComb, t, 200);
        let cc = counter_cached(o, Approach::CcSynch, t, 200);
        let orphan_frac = if hyb.metric_sum(Metric::Rounds) == 0 {
            0.0
        } else {
            hyb.metric_sum(Metric::Orphans) as f64 / hyb.metric_sum(Metric::Rounds) as f64
        };
        row(&[
            t.to_string(),
            f(hyb.combining_rate()),
            f(cc.combining_rate()),
            f(orphan_frac),
        ]);
    }
}

/// Figure 4c: cycles per CS execution vs. CS length (array iterations).
fn fig4c(o: &Opts) {
    println!("# fig4c: cycles per CS vs CS length (paper: constant overhead for mp-server/HybComb; shm-server/CC-Synch overhead shrinks as RMRs overlap; ~10% gap at 15 iters)");
    row(&["iters".into(), "mp-server".into(), "HybComb".into(), "shm-server".into(), "CC-Synch".into(), "ideal".into()]);
    let t = 14.min(cfg().cores() - 1);
    let iter_list: Vec<u64> = if o.quick {
        vec![0, 2, 6, 10, 15]
    } else {
        (0..=15).collect()
    };
    for &iters in &iter_list {
        let mut cells = vec![iters.to_string()];
        for a in Approach::ALL {
            let r = workload::run_array(cfg(), a, t, iters, 200, o.horizon, o.seed);
            let ops = r.metric_sum(Metric::Ops).max(1);
            cells.push(f(r.cycles as f64 / ops as f64));
        }
        cells.push(f(workload::array_ideal_cycles(&cfg(), iters) as f64));
        row(&cells);
    }
}

/// Figure 5a: queue throughput vs. clients.
fn fig5a(o: &Opts) {
    println!("# fig5a: queue throughput vs clients (paper: one-lock queues win; mp-server-1 up to 2x and HybComb-1 1.5x over third best; LCRQ and mp-server-2 level off early)");
    row(&[
        "clients".into(),
        "mp-server-1".into(),
        "HybComb-1".into(),
        "shm-server-1".into(),
        "CC-Synch-1".into(),
        "LCRQ".into(),
        "mp-server-2".into(),
    ]);
    for &t in &thread_sweep(o.quick) {
        let t2 = t.min(cfg().cores() - 2);
        let mut cells = vec![t.to_string()];
        for a in Approach::ALL {
            let r = workload::run_queue_onelock(cfg(), a, t, 200, o.horizon, o.seed);
            cells.push(f(r.mops()));
        }
        cells.push(f(workload::run_queue_lcrq(cfg(), t, o.horizon, o.seed).mops()));
        cells.push(f(workload::run_queue_mp2(cfg(), t2, o.horizon, o.seed).mops()));
        row(&cells);
    }
}

/// Figure 5b: stack throughput vs. clients.
fn fig5b(o: &Opts) {
    println!("# fig5b: stack throughput vs clients (paper: mp-server and HybComb coarse stacks win, ~matching the one-lock queue; Treiber collapses under CAS contention)");
    row(&[
        "clients".into(),
        "mp-server".into(),
        "HybComb".into(),
        "shm-server".into(),
        "CC-Synch".into(),
        "Treiber".into(),
    ]);
    for &t in &thread_sweep(o.quick) {
        let mut cells = vec![t.to_string()];
        for a in Approach::ALL {
            let r = workload::run_stack(cfg(), a, t, 200, o.horizon, o.seed);
            cells.push(f(r.mops()));
        }
        cells.push(f(workload::run_stack_treiber(cfg(), t, o.horizon, o.seed).mops()));
        row(&cells);
    }
}

/// In-text §5.3: CAS executions per apply_op for HYBCOMB.
fn tab_cas(o: &Opts) {
    println!("# tab-cas: HybComb CAS per operation (paper: ~0.1 at high concurrency, <=0.7 in any multithreaded run)");
    row(&["threads".into(), "cas_per_op".into()]);
    for &t in &thread_sweep(o.quick) {
        let r = counter_cached(o, Approach::HybComb, t, 200);
        row(&[t.to_string(), format!("{:.3}", r.cas_per_op())]);
    }
}

/// In-text §5.3: fairness ratio (max/min per-thread ops).
fn tab_fair(o: &Opts) {
    println!("# tab-fair: fairness ratio max/min ops per thread (paper: HybComb <=1.2 (avg 1.16); mp-server ~1.1)");
    row(&["threads".into(), "HybComb".into(), "mp-server".into()]);
    for &t in &thread_sweep(o.quick) {
        if t < 2 {
            continue;
        }
        let hyb = counter_cached(o, Approach::HybComb, t, 200);
        let mp = counter_cached(o, Approach::MpServer, t, 200);
        row(&[t.to_string(), f(hyb.fairness_ratio()), f(mp.fairness_ratio())]);
    }
}

/// §5.5: stall share of the servicing thread as RMRs get more expensive
/// (x86-like costs).
fn tab_x86(o: &Opts) {
    println!("# tab-x86: servicing-thread stall fraction, TILE-Gx-like vs x86-like RMR costs (paper §5.5: proportionally more stalls on x86 => larger improvement potential)");
    row(&["approach".into(), "tile_stall_frac".into(), "x86_stall_frac".into()]);
    let t = 10;
    for a in [Approach::ShmServer, Approach::CcSynch, Approach::MpServer] {
        let frac = |cfg: MachineConfig| {
            let r = workload::run_counter_fixed(cfg, a, t, o.horizon, o.seed);
            let c = servicing_core(&r);
            let s = &r.per_core[c];
            s.stall as f64 / (s.busy + s.stall) as f64
        };
        row(&[
            a.label().into(),
            f(frac(MachineConfig::tile_gx8036())),
            f(frac(MachineConfig::x86_like())),
        ]);
    }
}

/// Ablation: CAS vs SWAP combiner registration (§4.2's design discussion).
fn abl_swap(o: &Opts) {
    println!("# abl-swap: HybComb with CAS (paper's choice) vs SWAP registration (paper: SWAP lets several threads become combiners with only their own request)");
    row(&["threads".into(), "cas_mops".into(), "swap_mops".into(), "cas_rate".into(), "swap_rate".into(), "cas_orphans".into(), "swap_orphans".into()]);
    for &t in &thread_sweep(o.quick) {
        let cas = workload::run_counter_hybcomb_opts(cfg(), t, 200, o.horizon, o.seed, HybOptions::default());
        let swap = workload::run_counter_hybcomb_opts(
            cfg(),
            t,
            200,
            o.horizon,
            o.seed,
            HybOptions { use_swap: true, ..HybOptions::default() },
        );
        let orphans = |r: &SimResult| {
            if r.metric_sum(Metric::Rounds) == 0 {
                0.0
            } else {
                r.metric_sum(Metric::Orphans) as f64 / r.metric_sum(Metric::Rounds) as f64
            }
        };
        row(&[
            t.to_string(),
            f(cas.mops()),
            f(swap.mops()),
            f(cas.combining_rate()),
            f(swap.combining_rate()),
            f(orphans(&cas)),
            f(orphans(&swap)),
        ]);
    }
}

/// Extension: counter throughput under classical spin locks (§3's context),
/// against MP-SERVER — why delegation wins even over a queue lock.
fn ext_locks(o: &Opts) {
    println!("# ext-locks: counter throughput under classical locks vs mp-server (paper §3: locks pay O(1) RMRs per acquisition *plus* data migration)");
    row(&["threads".into(), "tas".into(), "ticket".into(), "mcs".into(), "mp-server".into()]);
    for &t in &thread_sweep(o.quick) {
        let mut cells = vec![t.to_string()];
        for kind in LockKind::ALL {
            let r = workload::run_counter_lock(cfg(), kind, t, o.horizon, o.seed);
            cells.push(f(r.mops()));
        }
        let mp = counter_cached(o, Approach::MpServer, t, 200);
        cells.push(f(mp.mops()));
        row(&cells);
    }
}

/// Extension: tail latency — §5.3's "sporadic latency hiccups for some
/// requests (when the requesting thread becomes a combiner)".
fn ext_tail(o: &Opts) {
    println!("# ext-tail: request latency percentiles (cycles; bucketed) at 20 threads (paper §5.3: HybComb trades throughput for sporadic combiner-duty hiccups; mp-server has no such mode)");
    row(&["approach".into(), "avg".into(), "p50".into(), "p90".into(), "p99".into()]);
    let t = 20;
    for a in Approach::ALL {
        let r = counter_cached(o, a, t, 200);
        row(&[
            a.label().into(),
            f(r.avg_latency()),
            r.latency_percentile(0.50).to_string(),
            r.latency_percentile(0.90).to_string(),
            r.latency_percentile(0.99).to_string(),
        ]);
    }
}

/// Extension: asymmetric queue mixes (1–3 enqueues per 4 operations).
fn ext_imbalance(o: &Opts) {
    println!("# ext-imbalance: one-lock queue throughput under asymmetric mixes at 20 threads (1/4 = dequeue-heavy, mostly-empty; 3/4 = enqueue-heavy, drifts full; balanced load is fig5a)");
    row(&["enq_per_4".into(), "mp-server".into(), "HybComb".into(), "shm-server".into(), "CC-Synch".into()]);
    let t = 20;
    for enq in 1..=3usize {
        let mut cells = vec![format!("{enq}/4")];
        for a in Approach::ALL {
            let r = workload::run_queue_mixed(cfg(), a, t, enq, 200, o.horizon, o.seed);
            cells.push(f(r.mops()));
        }
        row(&cells);
    }
}

/// Ablation: the eager drain loop (Algorithm 1 lines 25–28).
fn abl_nodrain(o: &Opts) {
    println!("# abl-nodrain: HybComb with vs without the eager drain loop (paper: the loop is not needed for correctness but increases combining potential)");
    row(&["threads".into(), "drain_mops".into(), "nodrain_mops".into(), "drain_rate".into(), "nodrain_rate".into()]);
    for &t in &thread_sweep(o.quick) {
        let drain = workload::run_counter_hybcomb_opts(cfg(), t, 200, o.horizon, o.seed, HybOptions::default());
        let nodrain = workload::run_counter_hybcomb_opts(
            cfg(),
            t,
            200,
            o.horizon,
            o.seed,
            HybOptions { eager_drain: false, ..HybOptions::default() },
        );
        row(&[
            t.to_string(),
            f(drain.mops()),
            f(nodrain.mops()),
            f(drain.combining_rate()),
            f(nodrain.combining_rate()),
        ]);
    }
}
