//! `probe` — a diagnostic companion to `repro`: runs one HYBCOMB counter
//! point on the simulator and prints the servicing-side cycle breakdown and
//! protocol counters (combining rate, CAS churn, orphan rounds). Useful when
//! recalibrating `MachineConfig` — the figure-level sweeps hide *why* a
//! configuration behaves as it does.
//!
//! ```text
//! probe [threads] [max_ops] [horizon]
//! ```

use tilesim::algos::Approach;
use tilesim::workload::{run_counter, servicing_core};
use tilesim::{MachineConfig, Metric};

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(35);
    let max_ops: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(200);
    let horizon: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(300_000);

    let cfg = MachineConfig::tile_gx8036();
    let r = run_counter(cfg, Approach::HybComb, threads, max_ops, horizon, 42);
    println!("HybComb {threads} threads, MAX_OPS={max_ops}, horizon={horizon} cycles");
    println!(
        "throughput {:.1} Mops/s | combining rate {:.1} | CAS/op {:.2} | rounds {} | orphan rounds {}",
        r.mops(),
        r.combining_rate(),
        r.cas_per_op(),
        r.metric_sum(Metric::Rounds),
        r.metric_sum(Metric::Orphans)
    );
    let sc = servicing_core(&r);
    println!("\nbusiest servicing core and any core serving >5% of requests:");
    let total_served = r.metric_sum(Metric::Served).max(1);
    for (i, c) in r.per_core.iter().enumerate() {
        let served = r.metric(i, Metric::Served);
        if i == sc || served * 20 > total_served {
            println!(
                "  core {i:>2}: busy={:>7} stall={:>7} idle={:>7} served={served:>6} rmrs={:>5} atomics={:>5}",
                c.busy, c.stall, c.idle, c.rmrs, c.atomics
            );
        }
    }
    println!("\ntotal served {} over {} cycles", total_served, r.cycles);
}
