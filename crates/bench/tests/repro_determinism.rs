//! The parallel sweep must be invisible in the output: `repro` at any
//! `--jobs` value has to emit the same bytes as the serial `--jobs 1` run.

use std::process::Command;

fn repro_stdout(extra: &[&str]) -> Vec<u8> {
    // A short horizon keeps the test fast; determinism does not depend on
    // the horizon. fig3a + tab-cas share counter runs through the memo
    // cache, exercising cross-experiment reuse under the pool.
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(["--quick", "--horizon", "50000", "fig3a", "tab-cas"]);
    cmd.args(extra);
    let out = cmd.output().expect("repro runs");
    assert!(
        out.status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    let serial = repro_stdout(&["--jobs", "1"]);
    assert!(!serial.is_empty(), "serial run produced no output");
    for jobs in ["2", "4", "8"] {
        let parallel = repro_stdout(&["--jobs", jobs]);
        assert_eq!(
            parallel, serial,
            "--jobs {jobs} output differs from --jobs 1"
        );
    }
}
