//! Criterion entry points for the simulator-based figure reproductions: one
//! short deterministic run per construction per figure family, so that
//! `cargo bench` exercises the whole tilesim pipeline. The full sweeps (the
//! paper's x-axes) are produced by the `repro` binary.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use tilesim::algos::Approach;
use tilesim::{workload, MachineConfig, Metric};

const HORIZON: u64 = 40_000;
const THREADS: usize = 8;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_figures");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    for a in Approach::ALL {
        g.bench_function(format!("fig3a_counter/{}", a.label()), |b| {
            b.iter(|| {
                let r = workload::run_counter(
                    MachineConfig::tile_gx8036(),
                    a,
                    THREADS,
                    200,
                    HORIZON,
                    1,
                );
                assert!(r.metric_sum(Metric::Ops) > 0);
                r.mops()
            })
        });
    }

    g.bench_function("fig5a_queue/mp-server-1", |b| {
        b.iter(|| {
            workload::run_queue_onelock(
                MachineConfig::tile_gx8036(),
                Approach::MpServer,
                THREADS,
                200,
                HORIZON,
                1,
            )
            .mops()
        })
    });

    g.bench_function("fig5b_stack/Treiber", |b| {
        b.iter(|| {
            workload::run_stack_treiber(MachineConfig::tile_gx8036(), THREADS, HORIZON, 1).mops()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
