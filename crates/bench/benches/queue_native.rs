//! Native companion to Figure 5a: enqueue+dequeue pair cost for the queue
//! implementations on the host machine.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mpsync_core::{LockCs, TicketLock};
use mpsync_objects::queue::{
    deq_dispatch, enq_dispatch, CsQueue, DeqSide, EnqSide, Lcrq, TwoLockQueue, TwoLockQueueHandle,
};
use mpsync_objects::seq::{queue_dispatch, SeqQueue};
use mpsync_objects::ConcurrentQueue;

type QueueFn = fn(&mut SeqQueue, u64, u64) -> u64;
type EnqFn = fn(&mut EnqSide, u64, u64) -> u64;
type DeqFn = fn(&mut DeqSide, u64, u64) -> u64;

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_enq_deq_pair");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    // One-lock (ticket) sequential queue: the paper's winning shape when
    // fronted by MP-SERVER/HYBCOMB.
    {
        let cs = LockCs::<SeqQueue, TicketLock, QueueFn>::new(
            SeqQueue::new(),
            queue_dispatch as QueueFn,
        );
        let mut q = CsQueue::new(cs.handle());
        g.bench_function("onelock_ticket", |b| {
            b.iter(|| {
                q.enqueue(7);
                q.dequeue()
            })
        });
    }

    // Two-lock MS queue (two independent ticket locks).
    {
        let (enq, deq) = TwoLockQueue::states();
        let e = LockCs::<EnqSide, TicketLock, EnqFn>::new(enq, enq_dispatch as EnqFn);
        let d = LockCs::<DeqSide, TicketLock, DeqFn>::new(deq, deq_dispatch as DeqFn);
        let mut q = TwoLockQueueHandle::new(e.handle(), d.handle());
        g.bench_function("twolock_ticket", |b| {
            b.iter(|| {
                q.enqueue(7);
                q.dequeue()
            })
        });
    }

    // LCRQ (nonblocking).
    {
        let q = Arc::new(Lcrq::new());
        let mut h = q.handle();
        g.bench_function("lcrq", |b| {
            b.iter(|| {
                h.enqueue(7);
                h.dequeue()
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
