//! Native microbenchmark of the sharded delegation runtime
//! (`mpsync-runtime`): keyed fetch-and-increment throughput swept over
//! shard count × executor backend, plus a report of per-shard throughput
//! and the achieved batch-size distribution (the runtime's observed
//! combining degree).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use mpsync_bench::f;
use mpsync_runtime::{Backend, CounterSession, RuntimeConfig, ShardedCounter};
use mpsync_telemetry as telemetry;
use mpsync_telemetry::TelemetryReport;

/// Concurrent client sessions (kept at the host's physical core budget).
const SESSIONS: usize = 2;
/// Distinct keys touched, spread across shards by the runtime's striping.
const KEYS: u64 = 64;
/// Operations per session per measured iteration.
const OPS_PER_ITER: u64 = 256;

fn config(backend: Backend, shards: usize) -> RuntimeConfig {
    RuntimeConfig::new(shards)
        .with_backend(backend)
        .with_max_sessions(SESSIONS)
        .with_queue_depth(16)
}

/// Runs `ops` keyed increments on every session concurrently. Sessions are
/// created once and reused across iterations (the combining backends'
/// session slots are a lifetime budget).
fn hammer(sessions: &mut [CounterSession], ops: u64) {
    std::thread::scope(|scope| {
        for (t, s) in sessions.iter_mut().enumerate() {
            scope.spawn(move || {
                for i in 0..ops {
                    // Per-session stride so sessions collide on some keys
                    // but not in lockstep.
                    s.fetch_inc((t as u64 * 31 + i) % KEYS)
                        .expect("runtime open");
                }
            });
        }
    });
}

fn bench_runtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_keyed_inc");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for backend in Backend::ALL {
        for shards in [1usize, 2, 4] {
            let svc = ShardedCounter::new(config(backend, shards));
            let mut sessions: Vec<CounterSession> = (0..SESSIONS)
                .map(|_| svc.session().expect("session budget"))
                .collect();
            g.bench_function(format!("{}/shards={shards}", backend.label()), |b| {
                b.iter(|| hammer(&mut sessions, OPS_PER_ITER))
            });
            drop(sessions);
            svc.shutdown();
        }
    }
    g.finish();
}

/// Not a criterion measurement: one fixed-size run per backend, printing
/// per-shard throughput, the batch-size distribution the runtime achieved
/// (`RuntimeStats` is the interface under test here) and — when the
/// `telemetry` feature is on — the per-phase latency table: submit,
/// queue-wait and serve histograms with p50/p95/p99, reset between
/// backends so each table describes one backend only.
fn report_shard_distribution(_c: &mut Criterion) {
    const SHARDS: usize = 4;
    const OPS: u64 = 20_000;
    println!("\n# runtime shard report: {SESSIONS} sessions x {OPS} ops, {SHARDS} shards");
    for backend in Backend::ALL {
        telemetry::reset();
        let svc = ShardedCounter::new(config(backend, SHARDS));
        let mut sessions: Vec<CounterSession> = (0..SESSIONS)
            .map(|_| svc.session().expect("session budget"))
            .collect();
        let t0 = Instant::now();
        hammer(&mut sessions, OPS);
        let secs = t0.elapsed().as_secs_f64();
        drop(sessions);
        let (_totals, stats) = svc.shutdown();
        let per_shard: Vec<String> = stats
            .shards
            .iter()
            .map(|s| f(s.ops as f64 / secs / 1e6))
            .collect();
        println!(
            "# {:<10} total {} Mops/s, per-shard Mops/s [{}], avg batch {}",
            backend.label(),
            f(stats.total_ops() as f64 / secs / 1e6),
            per_shard.join(" "),
            f(stats.avg_batch()),
        );
        print!("{stats}");
        println!(
            "# {} runtime stats json: {}",
            backend.label(),
            stats.to_json()
        );
        let latencies = TelemetryReport::capture();
        if !latencies.is_empty() {
            println!("# {} latencies (ns):", backend.label());
            print!("{latencies}");
        }
    }
    telemetry::reset();
}

criterion_group!(benches, bench_runtime, report_shard_distribution);
criterion_main!(benches);
