//! Native companion to Figure 5b: push+pop pair cost for the stack
//! implementations on the host machine — single-threaded latency plus a
//! contended multithreaded section where the elimination-backoff stack's
//! pairing actually gets exercised.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mpsync_core::{LockCs, TicketLock};
use mpsync_objects::seq::{stack_dispatch, SeqStack};
use mpsync_objects::stack::{CsStack, EliminationStack, TreiberStack};
use mpsync_objects::ConcurrentStack;

type StackFn = fn(&mut SeqStack, u64, u64) -> u64;

fn bench_stacks(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_push_pop_pair");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    // Coarse-lock sequential stack.
    {
        let cs = LockCs::<SeqStack, TicketLock, StackFn>::new(
            SeqStack::new(),
            stack_dispatch as StackFn,
        );
        let mut s = CsStack::new(cs.handle());
        g.bench_function("coarse_ticket", |b| {
            b.iter(|| {
                s.push(7);
                s.pop()
            })
        });
    }

    // Treiber nonblocking stack.
    {
        let s = Arc::new(TreiberStack::new());
        let mut h = s.handle();
        g.bench_function("treiber", |b| {
            b.iter(|| {
                h.push(7);
                h.pop()
            })
        });
    }

    // Elimination-backoff stack (extension; §5.4 notes the coarse stacks
    // can back an elimination front end).
    {
        let s = Arc::new(EliminationStack::new(4));
        let mut h = s.handle();
        g.bench_function("elimination", |b| {
            b.iter(|| {
                h.push(7);
                h.pop()
            })
        });
    }

    g.finish();
}

/// Threads in the contended section (matched to the CI host's cores).
const CONTEND_THREADS: usize = 2;
/// Push+pop pairs per thread per measured iteration.
const CONTEND_PAIRS: u64 = 256;

/// Runs `CONTEND_PAIRS` push+pop pairs on every handle concurrently.
/// Concurrent pushers and poppers are exactly the traffic the elimination
/// layer pairs off without touching the underlying stack.
fn hammer_pairs<H: ConcurrentStack + Send>(handles: &mut [H]) {
    std::thread::scope(|scope| {
        for h in handles.iter_mut() {
            scope.spawn(move || {
                for i in 0..CONTEND_PAIRS {
                    h.push(i + 1);
                    h.pop();
                }
            });
        }
    });
}

fn bench_stacks_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_push_pop_pair_contended");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    // Coarse-lock sequential stack: every pair serializes on the lock.
    {
        let cs = Arc::new(LockCs::<SeqStack, TicketLock, StackFn>::new(
            SeqStack::new(),
            stack_dispatch as StackFn,
        ));
        let mut handles: Vec<_> = (0..CONTEND_THREADS)
            .map(|_| CsStack::new(cs.handle()))
            .collect();
        g.bench_function(format!("coarse_ticket/t={CONTEND_THREADS}"), |b| {
            b.iter(|| hammer_pairs(&mut handles))
        });
    }

    // Treiber nonblocking stack: pairs contend on the top-of-stack CAS.
    {
        let s = Arc::new(TreiberStack::new());
        let mut handles: Vec<_> = (0..CONTEND_THREADS).map(|_| s.handle()).collect();
        g.bench_function(format!("treiber/t={CONTEND_THREADS}"), |b| {
            b.iter(|| hammer_pairs(&mut handles))
        });
    }

    // Elimination-backoff stack: colliding push/pop pairs cancel in the
    // exchanger array instead of serializing on the top-of-stack.
    {
        let s = Arc::new(EliminationStack::new(4));
        let mut handles: Vec<_> = (0..CONTEND_THREADS).map(|_| s.handle()).collect();
        g.bench_function(format!("elimination/t={CONTEND_THREADS}"), |b| {
            b.iter(|| hammer_pairs(&mut handles))
        });
    }

    g.finish();
}

criterion_group!(benches, bench_stacks, bench_stacks_contended);
criterion_main!(benches);
