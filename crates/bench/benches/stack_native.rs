//! Native companion to Figure 5b: push+pop pair cost for the stack
//! implementations on the host machine.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mpsync_core::{LockCs, TicketLock};
use mpsync_objects::seq::{stack_dispatch, SeqStack};
use mpsync_objects::stack::{CsStack, EliminationStack, TreiberStack};
use mpsync_objects::ConcurrentStack;

type StackFn = fn(&mut SeqStack, u64, u64) -> u64;

fn bench_stacks(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_push_pop_pair");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    // Coarse-lock sequential stack.
    {
        let cs = LockCs::<SeqStack, TicketLock, StackFn>::new(
            SeqStack::new(),
            stack_dispatch as StackFn,
        );
        let mut s = CsStack::new(cs.handle());
        g.bench_function("coarse_ticket", |b| {
            b.iter(|| {
                s.push(7);
                s.pop()
            })
        });
    }

    // Treiber nonblocking stack.
    {
        let s = Arc::new(TreiberStack::new());
        let mut h = s.handle();
        g.bench_function("treiber", |b| {
            b.iter(|| {
                h.push(7);
                h.pop()
            })
        });
    }

    // Elimination-backoff stack (extension; §5.4 notes the coarse stacks
    // can back an elimination front end).
    {
        let s = Arc::new(EliminationStack::new(4));
        let mut h = s.handle();
        g.bench_function("elimination", |b| {
            b.iter(|| {
                h.push(7);
                h.pop()
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_stacks);
criterion_main!(benches);
