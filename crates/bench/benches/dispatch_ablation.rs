//! The §5.2 inlining ablation (`abl-fptr`), measured natively: dispatching
//! critical sections through a unique opcode (a match the compiler inlines)
//! versus through a table of function pointers (the paper's original
//! `apply_op(func_ptr, args)` interface, an indirect call).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mpsync_core::{ApplyOp, LockCs, OpTable, TicketLock};

type OpcodeFn = fn(&mut u64, u64, u64) -> u64;

fn opcode_dispatch(state: &mut u64, op: u64, arg: u64) -> u64 {
    match op {
        0 => {
            let old = *state;
            *state += 1;
            old
        }
        1 => {
            *state = state.wrapping_add(arg);
            *state
        }
        _ => *state,
    }
}

fn table_inc(state: &mut u64, _arg: u64) -> u64 {
    let old = *state;
    *state += 1;
    old
}

fn table_add(state: &mut u64, arg: u64) -> u64 {
    *state = state.wrapping_add(arg);
    *state
}

fn table_get(state: &mut u64, _arg: u64) -> u64 {
    *state
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch_ablation");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    {
        let cs = LockCs::<u64, TicketLock, OpcodeFn>::new(0, opcode_dispatch as OpcodeFn);
        let mut h = cs.handle();
        g.bench_function("opcode_inline", |b| b.iter(|| h.apply(0, 0)));
    }
    {
        let cs = LockCs::<u64, TicketLock, OpTable<u64>>::new(
            0,
            OpTable::new(vec![table_inc, table_add, table_get]),
        );
        let mut h = cs.handle();
        g.bench_function("fnptr_table", |b| b.iter(|| h.apply(0, 0)));
    }

    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
