//! Microbenchmarks of the emulated UDN itself: send cost, round-trip
//! latency through an echo thread, and queue probing.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mpsync_bench::fabric_for;

fn bench_udn(c: &mut Criterion) {
    let mut g = c.benchmark_group("udn");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    // Asynchronous send into a deep queue (no consumer involvement).
    {
        let fabric = fabric_for(8);
        let a = fabric.register_any().unwrap();
        let mut b = fabric.register_any().unwrap();
        let dest = b.id();
        g.bench_function("send_3_words", |bch| {
            bch.iter(|| {
                a.send(dest, &[1, 2, 3]).unwrap();
                // Drain to keep the queue from filling.
                let mut buf = [0u64; 3];
                b.receive(&mut buf);
                buf[2]
            })
        });
    }

    // Round trip through an echo thread (the MP-SERVER hot path).
    {
        let fabric = fabric_for(8);
        let mut echo_ep = fabric.register_any().unwrap();
        let echo_id = echo_ep.id();
        let echo = std::thread::spawn(move || loop {
            let [sender, op, arg] = echo_ep.receive3();
            if op == u64::MAX {
                break;
            }
            echo_ep
                .send(mpsync_udn::EndpointId::from_word(sender), &[arg])
                .unwrap();
        });
        let mut client = fabric.register_any().unwrap();
        let me = client.id().to_word();
        g.bench_function("roundtrip_3_plus_1", |bch| {
            bch.iter(|| {
                client.send(echo_id, &[me, 0, 9]).unwrap();
                client.receive1()
            })
        });
        client.send(echo_id, &[me, u64::MAX, 0]).unwrap();
        echo.join().unwrap();
    }

    // is_queue_empty probe.
    {
        let fabric = fabric_for(4);
        let ep = fabric.register_any().unwrap();
        g.bench_function("is_queue_empty", |bch| bch.iter(|| ep.is_queue_empty()));
    }

    g.finish();
}

criterion_group!(benches, bench_udn);
criterion_main!(benches);
