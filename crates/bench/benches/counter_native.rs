//! Native companion to Figure 3b: uncontended `apply_op` latency of each
//! construction on the host machine (emulated UDN — see the fidelity note
//! in DESIGN.md; the paper-shape numbers come from `repro fig3a/fig3b`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mpsync_bench::{fabric_for, native_counter, COUNTER};
use mpsync_core::{ApplyOp, LockCs, McsLock, TasLock, TicketLock};
use mpsync_objects::counter::{AtomicCounter, CsCounter};
use mpsync_objects::Counter;

fn bench_counters(c: &mut Criterion) {
    let mut g = c.benchmark_group("counter_uncontended");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    // Baseline: a single atomic fetch-and-add.
    {
        let mut counter = AtomicCounter::new();
        g.bench_function("atomic_faa", |b| b.iter(|| counter.fetch_inc()));
    }

    // MP-SERVER: full message round trip through the emulated UDN.
    {
        let fabric = fabric_for(8);
        let server = native_counter::mp_server(&fabric);
        let mut h = CsCounter::new(server.client(fabric.register_any().unwrap()));
        g.bench_function("mp_server", |b| b.iter(|| h.fetch_inc()));
        drop(h);
        server.shutdown();
    }

    // SHM-SERVER: cache-line channel round trip.
    {
        let server = native_counter::shm_server(2);
        let mut h = CsCounter::new(server.client());
        g.bench_function("shm_server", |b| b.iter(|| h.fetch_inc()));
        drop(h);
        server.shutdown();
    }

    // HYBCOMB: a lone thread becomes combiner every time (three atomics per
    // op, as the paper notes when explaining single-thread latency).
    {
        let fabric = fabric_for(8);
        let hc = native_counter::hybcomb(2, 200);
        let mut h = CsCounter::new(hc.handle(fabric.register_any().unwrap()));
        g.bench_function("hybcomb", |b| b.iter(|| h.fetch_inc()));
    }

    // CC-SYNCH: one SWAP per op when alone.
    {
        let cs = native_counter::cc_synch(2, 200);
        let mut h = CsCounter::new(cs.handle());
        g.bench_function("cc_synch", |b| b.iter(|| h.fetch_inc()));
    }

    // Classic locks (§3 baselines).
    {
        let cs = LockCs::<u64, TasLock, _>::new(0, COUNTER);
        let mut h = cs.handle();
        g.bench_function("tas_lock", |b| b.iter(|| h.apply(0, 0)));
    }
    {
        let cs = LockCs::<u64, TicketLock, _>::new(0, COUNTER);
        let mut h = cs.handle();
        g.bench_function("ticket_lock", |b| b.iter(|| h.apply(0, 0)));
    }
    {
        let cs = LockCs::<u64, McsLock, _>::new(0, COUNTER);
        let mut h = cs.handle();
        g.bench_function("mcs_lock", |b| b.iter(|| h.apply(0, 0)));
    }

    g.finish();
}

criterion_group!(benches, bench_counters);
criterion_main!(benches);
