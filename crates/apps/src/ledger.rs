//! Bank-ledger accounts with two-phase multi-key transfers.
//!
//! Single-word ops only ever touch one account, so each is linearizable on
//! its shard. A multi-key transfer is a client-driven two-phase apply
//! (see [`Ledger::transfer_multi`](crate::suite::Ledger::transfer_multi)):
//! phase one `LG_RESERVE`s every debit in ascending `(shard, key)` order —
//! moving funds from `available` to `held`, never negative by construction
//! — then either `LG_COMMIT`s the holds and `LG_DEPOSIT`s the credits, or
//! `LG_RELEASE`s everything reserved so far on the first failure. Money is
//! conserved at every intermediate step: `available + held` totals only
//! change by completed deposits.

use std::collections::BTreeMap;

use mpsync_objects::EMPTY;

use crate::ops;

#[derive(Debug, Default, Clone, Copy)]
struct Account {
    available: u64,
    held: u64,
}

/// One shard's accounts.
#[derive(Debug, Default)]
pub(crate) struct LedgerState {
    accounts: BTreeMap<u64, Account>,
}

impl LedgerState {
    /// `(Σ available, Σ held)` across the shard.
    pub(crate) fn totals(&self) -> (u64, u64) {
        self.accounts
            .values()
            .fold((0, 0), |(a, h), acct| (a + acct.available, h + acct.held))
    }
}

/// Sequential dispatcher for the `LG_*` band.
pub(crate) fn dispatch(state: &mut LedgerState, key: u64, op: u64, arg: u64) -> u64 {
    match op {
        ops::LG_DEPOSIT => {
            let acct = state.accounts.entry(key).or_default();
            acct.available = acct.available.saturating_add(arg);
            acct.available
        }
        ops::LG_BALANCE => state.accounts.get(&key).map_or(0, |a| a.available),
        ops::LG_RESERVE => match state.accounts.get_mut(&key) {
            Some(a) if a.available >= arg => {
                a.available -= arg;
                a.held += arg;
                1
            }
            _ => 0,
        },
        ops::LG_COMMIT => match state.accounts.get_mut(&key) {
            Some(a) if a.held >= arg => {
                a.held -= arg;
                1
            }
            _ => 0,
        },
        ops::LG_RELEASE => match state.accounts.get_mut(&key) {
            Some(a) if a.held >= arg => {
                a.held -= arg;
                a.available += arg;
                1
            }
            _ => 0,
        },
        ops::LG_HELD => state.accounts.get(&key).map_or(0, |a| a.held),
        ops::LG_SCAN => state
            .accounts
            .range(arg..)
            .next()
            .map(|(&k, _)| k)
            .unwrap_or(EMPTY),
        _ => panic!("ledger: unknown opcode {op}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lg(state: &mut LedgerState, op: u64, key: u64, arg: u64) -> u64 {
        dispatch(state, key, op, arg)
    }

    #[test]
    fn reserve_commit_moves_money_once() {
        let mut s = LedgerState::default();
        assert_eq!(lg(&mut s, ops::LG_DEPOSIT, 1, 100), 100);
        assert_eq!(lg(&mut s, ops::LG_RESERVE, 1, 30), 1);
        assert_eq!(lg(&mut s, ops::LG_BALANCE, 1, 0), 70);
        assert_eq!(lg(&mut s, ops::LG_HELD, 1, 0), 30);
        assert_eq!(s.totals(), (70, 30), "reserve conserves");
        assert_eq!(lg(&mut s, ops::LG_COMMIT, 1, 30), 1);
        assert_eq!(lg(&mut s, ops::LG_HELD, 1, 0), 0);
        assert_eq!(lg(&mut s, ops::LG_COMMIT, 1, 30), 0, "nothing held twice");
        assert_eq!(s.totals(), (70, 0));
    }

    #[test]
    fn reserve_fails_without_funds_and_release_restores() {
        let mut s = LedgerState::default();
        lg(&mut s, ops::LG_DEPOSIT, 1, 50);
        assert_eq!(lg(&mut s, ops::LG_RESERVE, 1, 60), 0, "insufficient");
        assert_eq!(lg(&mut s, ops::LG_RESERVE, 9, 1), 0, "absent account");
        assert_eq!(lg(&mut s, ops::LG_RESERVE, 1, 50), 1);
        assert_eq!(lg(&mut s, ops::LG_BALANCE, 1, 0), 0);
        assert_eq!(lg(&mut s, ops::LG_RELEASE, 1, 50), 1);
        assert_eq!(lg(&mut s, ops::LG_BALANCE, 1, 0), 50);
        assert_eq!(lg(&mut s, ops::LG_RELEASE, 1, 1), 0, "nothing held");
        assert_eq!(s.totals(), (50, 0));
    }

    #[test]
    fn scan_walks_accounts() {
        let mut s = LedgerState::default();
        lg(&mut s, ops::LG_DEPOSIT, 4, 1);
        lg(&mut s, ops::LG_DEPOSIT, 8, 1);
        assert_eq!(lg(&mut s, ops::LG_SCAN, 0, 0), 4);
        assert_eq!(lg(&mut s, ops::LG_SCAN, 0, 5), 8);
        assert_eq!(lg(&mut s, ops::LG_SCAN, 0, 9), EMPTY);
    }
}
