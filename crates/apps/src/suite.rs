//! [`AppSuite`]: the five applications packaged over one [`Runtime`], with
//! typed per-application session facets.
//!
//! The suite owns the opcode-mask policy: pure reads (`RL_PEEK`, `LB_GET`,
//! `PQ_PEEK`, `PQ_LEN`, `LG_BALANCE`, `LG_HELD`) ride the read fast path,
//! and `RL_FILL` (fetch-add-shaped) is merge-eligible, so the runtime's
//! PR-9 optimizations apply to exactly the ops whose contracts allow them.
//! `SS_GET` is deliberately *not* fast-pathed — it may retire an expired
//! entry, which is a mutation.

use mpsync_objects::EMPTY;
use mpsync_runtime::{
    probe_key, Backend, OpMask, Runtime, RuntimeConfig, RuntimeError, RuntimeStats, Session,
    ShardDriver, StateExport,
};
use mpsync_telemetry as telemetry;
use mpsync_telemetry::Counter;

use crate::pq::{pack_task, unpack_task};
use crate::session::pack_put;
use crate::{app_dispatch, ops, AppConfig, AppFn, AppState};

/// Ops that are pure reads of their key's current state.
fn read_ops() -> OpMask {
    OpMask::of(&[
        ops::RL_PEEK as u8,
        ops::LB_GET as u8,
        ops::PQ_PEEK as u8,
        ops::PQ_LEN as u8,
        ops::LG_BALANCE as u8,
        ops::LG_HELD as u8,
    ])
}

/// Ops with the fetch-add shape (wrapping add, returns the old value).
fn merge_ops() -> OpMask {
    OpMask::of(&[ops::RL_FILL as u8])
}

/// The served-application suite: rate limiter, leaderboard, priority
/// queue, TTL session store, and ledger over one sharded runtime.
pub struct AppSuite {
    runtime: Runtime<AppState, AppFn>,
}

impl AppSuite {
    /// Builds the suite on `config`'s backend/shards, with default
    /// application tuning.
    pub fn new(config: RuntimeConfig) -> Self {
        Self::with_app_config(config, AppConfig::default())
    }

    /// Builds the suite with explicit application tuning.
    ///
    /// The runtime's read-fast and merge masks are set by the suite (they
    /// encode per-opcode contracts); any masks on `config` are replaced.
    pub fn with_app_config(config: RuntimeConfig, app: AppConfig) -> Self {
        let config = config
            .with_read_fast(read_ops())
            .with_merge_ops(merge_ops());
        let runtime = Runtime::new_expiring(
            config,
            move |shard| AppState::new(shard, app),
            app_dispatch as AppFn,
        );
        Self { runtime }
    }

    /// Opens a typed session.
    pub fn session(&self) -> Result<AppSession, RuntimeError> {
        Ok(AppSession {
            shards: self.runtime.config().shards,
            raw: self.runtime.session()?,
        })
    }

    /// Opens an untyped (opcode-level) session — the wire layer uses this.
    pub fn raw_session(&self) -> Result<Session, RuntimeError> {
        self.runtime.session()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RuntimeStats {
        self.runtime.stats()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.runtime.config().shards
    }

    /// The shard that owns `key`.
    pub fn shard_of(&self, key: u64) -> usize {
        self.runtime.shard_of(key)
    }

    /// Claims `shard`'s driver for an external event loop (see
    /// [`RuntimeConfig::with_external_drive`]).
    pub fn take_driver(&self, shard: usize) -> Option<ShardDriver> {
        self.runtime.take_driver(shard)
    }

    /// Forces an Adaptive shard onto `backend` (no-op on fixed backends).
    pub fn force_backend(&self, shard: usize, backend: Backend) -> bool {
        self.runtime.force_backend(shard, backend)
    }

    /// How many backend switches `shard` has completed.
    pub fn swap_epoch(&self, shard: usize) -> u64 {
        self.runtime.swap_epoch(shard)
    }

    /// Closes admissions.
    pub fn close(&self) {
        self.runtime.close()
    }

    /// Shuts down and reduces the final shard states to audit totals.
    pub fn shutdown(self) -> (AppTotals, RuntimeStats) {
        let report = self.runtime.shutdown();
        let now = mpsync_runtime::mono_ns();
        let mut totals = AppTotals::default();
        for state in &report.states {
            let (avail, held) = state.accounts.totals();
            totals.ledger_available += avail;
            totals.ledger_held += held;
            totals.sessions_live += state.sessions.live(now);
            totals.sessions_resident += state.sessions.resident();
            totals.pq_tasks += state.queues.tasks();
            totals.board_members += state.board.len();
            totals.rate_buckets += state.rate.len();
        }
        (totals, report.stats)
    }
}

/// Cross-shard audit totals from [`AppSuite::shutdown`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AppTotals {
    /// Σ available over every ledger account.
    pub ledger_available: u64,
    /// Σ held over every ledger account (0 if no transfer is in flight).
    pub ledger_held: u64,
    /// Sessions whose TTL has not passed at shutdown.
    pub sessions_live: usize,
    /// Session entries physically resident at shutdown (live plus expired
    /// entries no sweep has retired yet).
    pub sessions_resident: usize,
    /// Tasks still queued across every priority queue.
    pub pq_tasks: usize,
    /// Leaderboard members.
    pub board_members: usize,
    /// Rate-limiter buckets ever touched.
    pub rate_buckets: usize,
}

/// One exported record from any of the suite's durable objects (priority
/// queues hold in-flight work, not durable state, and are not exported).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppEntry {
    /// A rate-limiter bucket (raw, unclamped token count).
    Bucket {
        /// Bucket key.
        key: u64,
        /// Raw token count.
        tokens: u64,
    },
    /// A leaderboard member.
    Score {
        /// Member key.
        member: u64,
        /// Current score.
        score: u64,
    },
    /// A live session.
    Session {
        /// Session key.
        key: u64,
        /// Stored value.
        value: u64,
        /// Remaining TTL in ms at export time (0 = immortal); re-armed as
        /// a fresh TTL on import.
        ttl_ms: u64,
    },
    /// A ledger account.
    Account {
        /// Account key.
        key: u64,
        /// Available funds.
        available: u64,
        /// Held funds (re-created as a hold on import).
        held: u64,
    },
}

/// Walks one shard's keyspace for one app band: `scan_op` yields the next
/// key at-or-after the cursor, `read` turns a key into an entry (returning
/// `None` to skip keys that vanished between scan and read).
fn drain_band(
    s: &mut Session,
    probe: u64,
    scan_op: u64,
    out: &mut Vec<AppEntry>,
    mut read: impl FnMut(&mut Session, u64) -> Result<Option<AppEntry>, RuntimeError>,
) -> Result<(), RuntimeError> {
    let mut cursor = 0u64;
    loop {
        let key = s.submit(probe, scan_op, cursor)?;
        if key == EMPTY {
            return Ok(());
        }
        if let Some(entry) = read(s, key)? {
            out.push(entry);
        }
        cursor = key + 1;
    }
}

impl StateExport for AppSuite {
    type Entry = AppEntry;

    /// Snapshots every durable entry (buckets, scores, live sessions,
    /// accounts) while the suite keeps serving. Per-key linearizable, not
    /// a global cut — the same contract as the KV store's export.
    fn export_entries(&self) -> Result<Vec<AppEntry>, RuntimeError> {
        let mut s = self.runtime.session()?;
        let shards = self.runtime.config().shards;
        let mut out = Vec::new();
        for shard in 0..shards {
            let probe = probe_key(shard, shards);
            drain_band(&mut s, probe, ops::RL_SCAN, &mut out, |s, key| {
                Ok(match s.submit(key, ops::RL_TOKENS, 0)? {
                    EMPTY => None,
                    tokens => Some(AppEntry::Bucket { key, tokens }),
                })
            })?;
            drain_band(&mut s, probe, ops::LB_SCAN, &mut out, |s, member| {
                Ok(match s.submit(member, ops::LB_GET, 0)? {
                    EMPTY => None,
                    score => Some(AppEntry::Score { member, score }),
                })
            })?;
            drain_band(&mut s, probe, ops::SS_SCAN, &mut out, |s, key| {
                let value = s.submit(key, ops::SS_GET, 0)?;
                if value == EMPTY {
                    return Ok(None);
                }
                Ok(match s.submit(key, ops::SS_TTL, 0)? {
                    EMPTY => None, // expired between the two reads
                    ttl_ms => Some(AppEntry::Session { key, value, ttl_ms }),
                })
            })?;
            drain_band(&mut s, probe, ops::LG_SCAN, &mut out, |s, key| {
                let available = s.submit(key, ops::LG_BALANCE, 0)?;
                let held = s.submit(key, ops::LG_HELD, 0)?;
                Ok(Some(AppEntry::Account {
                    key,
                    available,
                    held,
                }))
            })?;
        }
        Ok(out)
    }

    /// Loads entries through ordinary writes. Buckets, scores, and
    /// sessions are set to the exported value (last write wins); accounts
    /// are *credited* — deposit `available + held`, then re-reserve
    /// `held` — so importing into a fresh suite reproduces the exported
    /// account exactly.
    fn import_entries(&self, entries: &[AppEntry]) -> Result<(), RuntimeError> {
        let mut s = self.runtime.session()?;
        for entry in entries {
            match *entry {
                AppEntry::Bucket { key, tokens } => {
                    s.submit(key, ops::RL_SET, tokens)?;
                }
                AppEntry::Score { member, score } => {
                    s.submit(member, ops::LB_REMOVE, 0)?;
                    s.submit(member, ops::LB_ADD, score)?;
                }
                AppEntry::Session { key, value, ttl_ms } => {
                    s.submit(
                        key,
                        ops::SS_PUT,
                        pack_put(value as u32, ttl_ms.min(u32::MAX as u64) as u32),
                    )?;
                }
                AppEntry::Account {
                    key,
                    available,
                    held,
                } => {
                    s.submit(key, ops::LG_DEPOSIT, available + held)?;
                    if held > 0 {
                        s.submit(key, ops::LG_RESERVE, held)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// A typed client session over the suite. Obtain facets per application;
/// each borrows the session, so operations from one client are totally
/// ordered across all five objects.
pub struct AppSession {
    raw: Session,
    shards: usize,
}

impl AppSession {
    /// Rate-limiter operations.
    pub fn rate(&mut self) -> RateLimiter<'_> {
        RateLimiter(self)
    }

    /// Leaderboard operations.
    pub fn board(&mut self) -> Leaderboard<'_> {
        Leaderboard(self)
    }

    /// Priority-queue operations.
    pub fn queue(&mut self) -> PriorityQueue<'_> {
        PriorityQueue(self)
    }

    /// Session-store operations.
    pub fn store(&mut self) -> SessionStore<'_> {
        SessionStore(self)
    }

    /// Ledger operations.
    pub fn ledger(&mut self) -> Ledger<'_> {
        Ledger(self)
    }

    /// The underlying opcode-level session.
    pub fn raw(&mut self) -> &mut Session {
        &mut self.raw
    }

    fn opt(ret: u64) -> Option<u64> {
        (ret != EMPTY).then_some(ret)
    }
}

/// Token-bucket facet.
pub struct RateLimiter<'a>(&'a mut AppSession);

impl RateLimiter<'_> {
    /// Tries to take `n` tokens from `key`'s bucket.
    pub fn acquire(&mut self, key: u64, n: u64) -> Result<bool, RuntimeError> {
        Ok(self.0.raw.submit(key, ops::RL_ACQUIRE, n)? == 1)
    }

    /// Current tokens in `key`'s bucket, clamped to capacity.
    pub fn peek(&mut self, key: u64) -> Result<u64, RuntimeError> {
        self.0.raw.submit(key, ops::RL_PEEK, 0)
    }

    /// Adds `n` tokens to `key`'s bucket; returns the old raw count.
    pub fn fill(&mut self, key: u64, n: u64) -> Result<u64, RuntimeError> {
        self.0.raw.submit(key, ops::RL_FILL, n)
    }
}

/// Leaderboard facet.
pub struct Leaderboard<'a>(&'a mut AppSession);

impl Leaderboard<'_> {
    /// Adds `delta` to `member`'s score; returns the new score.
    pub fn add(&mut self, member: u64, delta: u64) -> Result<u64, RuntimeError> {
        self.0.raw.submit(member, ops::LB_ADD, delta)
    }

    /// `member`'s score, if ranked.
    pub fn score(&mut self, member: u64) -> Result<Option<u64>, RuntimeError> {
        Ok(AppSession::opt(self.0.raw.submit(
            member,
            ops::LB_GET,
            0,
        )?))
    }

    /// Removes `member`; returns their final score.
    pub fn remove(&mut self, member: u64) -> Result<Option<u64>, RuntimeError> {
        Ok(AppSession::opt(self.0.raw.submit(
            member,
            ops::LB_REMOVE,
            0,
        )?))
    }

    /// Global top-`k` as `(member, score)`, highest first: takes each
    /// shard's local top-`k` over the wire, then merges client-side.
    /// Concurrent writers may reorder entries mid-walk (same per-key
    /// contract as every sharded read).
    pub fn top_k(&mut self, k: usize) -> Result<Vec<(u64, u64)>, RuntimeError> {
        let mut merged = Vec::new();
        for shard in 0..self.0.shards {
            let probe = probe_key(shard, self.0.shards);
            for rank in 0..k as u64 {
                let member = self.0.raw.submit(probe, ops::LB_NTH, rank)?;
                if member == EMPTY {
                    break;
                }
                if let Some(score) = AppSession::opt(self.0.raw.submit(member, ops::LB_GET, 0)?) {
                    merged.push((member, score));
                }
            }
        }
        merged
            .sort_by_key(|&(member, score)| (std::cmp::Reverse(score), std::cmp::Reverse(member)));
        merged.dedup();
        merged.truncate(k);
        Ok(merged)
    }

    /// How many members score at least `score`, summed over all shards.
    pub fn count_ge(&mut self, score: u64) -> Result<u64, RuntimeError> {
        let mut total = 0;
        for shard in 0..self.0.shards {
            let probe = probe_key(shard, self.0.shards);
            total += self.0.raw.submit(probe, ops::LB_COUNT_GE, score)?;
        }
        Ok(total)
    }
}

/// Priority-queue facet. Tasks are `(priority, item)` pairs; lower
/// priority value is served first, FIFO within a priority.
pub struct PriorityQueue<'a>(&'a mut AppSession);

impl PriorityQueue<'_> {
    /// Enqueues a task; returns the queue's new length.
    pub fn push(&mut self, queue: u64, priority: u32, item: u32) -> Result<u64, RuntimeError> {
        self.0
            .raw
            .submit(queue, ops::PQ_PUSH, pack_task(priority, item))
    }

    /// Pops the minimum-priority task.
    pub fn pop(&mut self, queue: u64) -> Result<Option<(u32, u32)>, RuntimeError> {
        Ok(AppSession::opt(self.0.raw.submit(queue, ops::PQ_POP, 0)?).map(unpack_task))
    }

    /// Pops up to `n` tasks back-to-back. The pops are issued as one burst
    /// against a single shard, the shape the combining backends fold into
    /// one critical-section pass.
    pub fn pop_n(&mut self, queue: u64, n: usize) -> Result<Vec<(u32, u32)>, RuntimeError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.pop(queue)? {
                Some(task) => out.push(task),
                None => break,
            }
        }
        Ok(out)
    }

    /// The minimum-priority task without removing it.
    pub fn peek(&mut self, queue: u64) -> Result<Option<(u32, u32)>, RuntimeError> {
        Ok(AppSession::opt(self.0.raw.submit(queue, ops::PQ_PEEK, 0)?).map(unpack_task))
    }

    /// Tasks currently queued.
    pub fn len(&mut self, queue: u64) -> Result<u64, RuntimeError> {
        self.0.raw.submit(queue, ops::PQ_LEN, 0)
    }
}

/// Session-store facet.
pub struct SessionStore<'a>(&'a mut AppSession);

impl SessionStore<'_> {
    /// Stores `value` under `key` with `ttl_ms` (0 = never expires);
    /// returns the replaced value.
    pub fn put(&mut self, key: u64, value: u32, ttl_ms: u32) -> Result<Option<u64>, RuntimeError> {
        Ok(AppSession::opt(self.0.raw.submit(
            key,
            ops::SS_PUT,
            pack_put(value, ttl_ms),
        )?))
    }

    /// Reads `key` if present and unexpired.
    pub fn get(&mut self, key: u64) -> Result<Option<u64>, RuntimeError> {
        Ok(AppSession::opt(self.0.raw.submit(key, ops::SS_GET, 0)?))
    }

    /// Deletes `key`; returns the removed value.
    pub fn del(&mut self, key: u64) -> Result<Option<u64>, RuntimeError> {
        Ok(AppSession::opt(self.0.raw.submit(key, ops::SS_DEL, 0)?))
    }

    /// Remaining TTL in ms (`Some(0)` = immortal), if the session is live.
    pub fn ttl_ms(&mut self, key: u64) -> Result<Option<u64>, RuntimeError> {
        Ok(AppSession::opt(self.0.raw.submit(key, ops::SS_TTL, 0)?))
    }

    /// Re-arms `key` with a fresh TTL; returns whether it was live.
    pub fn touch(&mut self, key: u64, ttl_ms: u32) -> Result<bool, RuntimeError> {
        Ok(self.0.raw.submit(key, ops::SS_TOUCH, ttl_ms as u64)? == 1)
    }
}

/// Ledger facet.
pub struct Ledger<'a>(&'a mut AppSession);

impl Ledger<'_> {
    /// Credits `key` with `amount`; returns the new available balance.
    pub fn deposit(&mut self, key: u64, amount: u64) -> Result<u64, RuntimeError> {
        self.0.raw.submit(key, ops::LG_DEPOSIT, amount)
    }

    /// `key`'s available balance.
    pub fn balance(&mut self, key: u64) -> Result<u64, RuntimeError> {
        self.0.raw.submit(key, ops::LG_BALANCE, 0)
    }

    /// `key`'s held amount.
    pub fn held(&mut self, key: u64) -> Result<u64, RuntimeError> {
        self.0.raw.submit(key, ops::LG_HELD, 0)
    }

    /// Moves `amount` from `from` to `to` atomically-in-effect: see
    /// [`transfer_multi`](Self::transfer_multi).
    pub fn transfer(&mut self, from: u64, to: u64, amount: u64) -> Result<bool, RuntimeError> {
        self.transfer_multi(&[(from, amount)], &[(to, amount)])
    }

    /// Two-phase multi-key transfer: reserves every debit in ascending
    /// `(shard, key)` order, then commits the holds and deposits the
    /// credits — or releases everything reserved on the first refusal and
    /// reports `false`. Money is conserved at every step: a concurrent
    /// reader may see a debit reserved before its credit lands, but never
    /// a created or destroyed unit.
    ///
    /// If the runtime closes mid-protocol the error is returned as-is and
    /// a reservation may be left held; shutdown totals still conserve
    /// (`available + held` is invariant).
    pub fn transfer_multi(
        &mut self,
        debits: &[(u64, u64)],
        credits: &[(u64, u64)],
    ) -> Result<bool, RuntimeError> {
        let mut order: Vec<usize> = (0..debits.len()).collect();
        let shards = self.0.shards;
        order.sort_by_key(|&i| {
            (
                mpsync_runtime::shard_for(debits[i].0, shards),
                debits[i].0,
                i,
            )
        });
        let mut reserved: Vec<(u64, u64)> = Vec::with_capacity(debits.len());
        for &i in &order {
            let (key, amount) = debits[i];
            if self.0.raw.submit(key, ops::LG_RESERVE, amount)? == 1 {
                reserved.push((key, amount));
            } else {
                for &(key, amount) in reserved.iter().rev() {
                    let ok = self.0.raw.submit(key, ops::LG_RELEASE, amount)?;
                    debug_assert_eq!(ok, 1, "a hold we placed must release");
                }
                telemetry::count(Counter::AppTxnAborts, 1);
                return Ok(false);
            }
        }
        for &(key, amount) in &reserved {
            let ok = self.0.raw.submit(key, ops::LG_COMMIT, amount)?;
            debug_assert_eq!(ok, 1, "a hold we placed must commit");
        }
        for &(key, amount) in credits {
            self.0.raw.submit(key, ops::LG_DEPOSIT, amount)?;
        }
        telemetry::count(Counter::AppTxnCommits, 1);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn suite(backend: Backend) -> AppSuite {
        AppSuite::new(RuntimeConfig::new(2).with_backend(backend))
    }

    #[test]
    fn facets_roundtrip_on_every_fixed_backend() {
        for &backend in &Backend::ALL {
            let svc = suite(backend);
            let mut s = svc.session().unwrap();
            assert!(s.rate().acquire(1, 10).unwrap());
            assert_eq!(s.rate().peek(1).unwrap(), 54);
            s.board().add(5, 30).unwrap();
            s.board().add(6, 10).unwrap();
            assert_eq!(s.board().score(5).unwrap(), Some(30));
            s.queue().push(9, 2, 200).unwrap();
            s.queue().push(9, 1, 100).unwrap();
            assert_eq!(s.queue().pop(9).unwrap(), Some((1, 100)));
            assert_eq!(s.store().put(3, 77, 0).unwrap(), None);
            assert_eq!(s.store().get(3).unwrap(), Some(77));
            s.ledger().deposit(8, 100).unwrap();
            assert!(s.ledger().transfer(8, 4, 40).unwrap());
            assert_eq!(s.ledger().balance(4).unwrap(), 40);
            assert!(!s.ledger().transfer(8, 4, 1000).unwrap(), "insufficient");
            drop(s);
            let (totals, _) = svc.shutdown();
            assert_eq!(totals.ledger_available, 100, "{backend:?}: conserved");
            assert_eq!(totals.ledger_held, 0, "{backend:?}: no stuck holds");
            assert_eq!(totals.sessions_live, 1, "{backend:?}");
            assert_eq!(totals.pq_tasks, 1, "{backend:?}");
            assert_eq!(totals.board_members, 2, "{backend:?}");
        }
    }

    #[test]
    fn ttl_session_expires_on_idle_mp_server() {
        let svc = suite(Backend::MpServer);
        let mut s = svc.session().unwrap();
        s.store().put(1, 42, 30).unwrap();
        s.store().put(2, 43, 0).unwrap();
        assert_eq!(s.store().get(1).unwrap(), Some(42));
        drop(s);
        // No traffic at all while the TTL elapses: the idle shard loop's
        // timer-bounded wait must run the sweep on its own — no read ever
        // touches key 1 again, so lazy expiry cannot be what retires it.
        std::thread::sleep(Duration::from_millis(200));
        let (totals, _) = svc.shutdown();
        assert_eq!(totals.sessions_live, 1);
        assert_eq!(
            totals.sessions_resident, 1,
            "idle sweep retired the TTL entry"
        );
    }

    #[test]
    fn ttl_session_never_served_on_inline_backend() {
        // Lock has no serving thread: expiry must come from the lazy
        // deadline check on the read itself.
        let svc = suite(Backend::Lock);
        let mut s = svc.session().unwrap();
        s.store().put(1, 42, 20).unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(s.store().get(1).unwrap(), None, "lazy expiry on read");
        assert_eq!(s.store().ttl_ms(2).unwrap(), None, "absent");
    }

    #[test]
    fn timer_refill_tops_buckets_up() {
        let app = AppConfig {
            bucket_capacity: 10,
            refill_interval_ms: 20,
            refill_amount: 10,
            timer_tick_us: 1_000,
        };
        let svc =
            AppSuite::with_app_config(RuntimeConfig::new(1).with_backend(Backend::MpServer), app);
        let mut s = svc.session().unwrap();
        assert!(s.rate().acquire(1, 10).unwrap());
        assert!(!s.rate().acquire(1, 1).unwrap(), "drained");
        std::thread::sleep(Duration::from_millis(120));
        assert!(s.rate().acquire(1, 10).unwrap(), "refilled while idle");
    }

    #[test]
    fn top_k_merges_across_shards() {
        let svc = suite(Backend::HybComb);
        let mut s = svc.session().unwrap();
        for member in 0..20u64 {
            s.board().add(member, member * 10).unwrap();
        }
        let top = s.board().top_k(3).unwrap();
        assert_eq!(top, vec![(19, 190), (18, 180), (17, 170)]);
        assert_eq!(s.board().count_ge(170).unwrap(), 3);
        assert_eq!(s.board().count_ge(0).unwrap(), 20);
    }

    #[test]
    fn multi_key_transfer_sorts_debits_and_aborts_clean() {
        let svc = suite(Backend::CcSynch);
        let mut s = svc.session().unwrap();
        for key in [1u64, 2, 3] {
            s.ledger().deposit(key, 100).unwrap();
        }
        let mut l = s.ledger();
        assert!(l.transfer_multi(&[(3, 50), (1, 50)], &[(7, 100)]).unwrap());
        assert_eq!(l.balance(7).unwrap(), 100);
        // Second debit refuses: the first must be released.
        assert!(!l.transfer_multi(&[(2, 50), (3, 60)], &[(7, 110)]).unwrap());
        assert_eq!(l.balance(2).unwrap(), 100);
        assert_eq!(l.held(2).unwrap(), 0, "abort released the hold");
        drop(s);
        let (totals, _) = svc.shutdown();
        assert_eq!(totals.ledger_available, 300);
        assert_eq!(totals.ledger_held, 0);
    }

    #[test]
    fn export_import_roundtrips_every_durable_object() {
        let src = suite(Backend::Lock);
        let mut s = src.session().unwrap();
        s.rate().acquire(1, 4).unwrap();
        s.board().add(5, 30).unwrap();
        s.board().add(6, 10).unwrap();
        s.store().put(3, 77, 0).unwrap();
        s.store().put(4, 88, 60_000).unwrap();
        s.ledger().deposit(8, 100).unwrap();
        s.raw().submit(8, ops::LG_RESERVE, 25).unwrap();
        s.queue().push(9, 1, 1).unwrap(); // not exported
        drop(s);

        let entries = src.export_entries().unwrap();
        let dst = suite(Backend::MpServer);
        dst.import_entries(&entries).unwrap();

        let mut d = dst.session().unwrap();
        assert_eq!(d.rate().peek(1).unwrap(), 60);
        assert_eq!(d.board().score(5).unwrap(), Some(30));
        assert_eq!(d.board().top_k(1).unwrap(), vec![(5, 30)]);
        assert_eq!(d.store().get(3).unwrap(), Some(77));
        assert_eq!(d.store().get(4).unwrap(), Some(88));
        let ttl = d.store().ttl_ms(4).unwrap().unwrap();
        assert!(ttl > 0 && ttl <= 60_000, "TTL re-armed, got {ttl}");
        assert_eq!(d.ledger().balance(8).unwrap(), 75);
        assert_eq!(d.ledger().held(8).unwrap(), 25, "hold re-created");
        assert_eq!(d.queue().len(9).unwrap(), 0, "queues are not durable");
        drop(d);
        let (totals, _) = dst.shutdown();
        assert_eq!(totals.ledger_available + totals.ledger_held, 100);
    }

    #[test]
    fn adaptive_suite_survives_forced_switches() {
        let svc = AppSuite::new(
            RuntimeConfig::new(1)
                .with_backend(Backend::Adaptive)
                .with_adaptive_auto(false),
        );
        let mut s = svc.session().unwrap();
        for (round, &backend) in [Backend::Lock, Backend::MpServer, Backend::HybComb]
            .iter()
            .enumerate()
        {
            svc.force_backend(0, backend);
            s.store().put(1, round as u32, 0).unwrap();
            assert_eq!(s.store().get(1).unwrap(), Some(round as u64));
            s.ledger().deposit(2, 10).unwrap();
        }
        assert_eq!(s.ledger().balance(2).unwrap(), 30);
        drop(s);
        let (totals, _) = svc.shutdown();
        assert_eq!(totals.ledger_available, 30);
    }
}
