//! A served-application suite over the mpsync runtime.
//!
//! Five typed application objects share one [`Runtime`](mpsync_runtime::Runtime), one opcode space,
//! and one per-shard [`TimerWheel`] — each object exercising a different
//! combining shape of the PPoPP'14 executors:
//!
//! * [`ratelimit`] — sharded token buckets: a read-mostly admission check
//!   (`RL_PEEK` rides the read fast path) plus a mergeable refill
//!   (`RL_FILL` is fetch-add-shaped, so the MP-SERVER batch sweep folds
//!   concurrent refills into one application);
//! * [`leaderboard`] — an ordered score index per shard; top-K and
//!   rank-count reads walk every shard over the wire and merge client-side;
//! * [`pq`] — a matchmaking priority queue: pop-min under combining, with
//!   batched multi-pop amortizing one delegation round over many tasks;
//! * [`session`] — a TTL session store driven by the per-shard timer wheel:
//!   expiry runs inside the shard's critical section (every backend sweeps
//!   before a mutating op; MP-SERVER shards also sweep while idle), and
//!   reads double-check deadlines so an expired session is never served;
//! * [`ledger`] — multi-key transactions: a two-phase reserve/commit apply
//!   in deterministic `(shard, key)` order, conserving the total balance.
//!
//! [`suite::AppSuite`] packages all five behind typed session facets.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use mpsync_runtime::{Expire, Expired, TimerWheel};
use mpsync_telemetry as telemetry;
use mpsync_telemetry::{Counter, FlightKind};

pub mod leaderboard;
pub mod ledger;
pub mod pq;
pub mod ratelimit;
pub mod session;
pub mod suite;

pub use pq::{pack_task, unpack_task};
pub use session::{pack_put, unpack_put};
pub use suite::{
    AppEntry, AppSession, AppSuite, AppTotals, Leaderboard, Ledger, PriorityQueue, RateLimiter,
    SessionStore,
};

/// The suite's opcode map. One flat 8-bit space, banded per application so
/// a single [`Runtime`](mpsync_runtime::Runtime) (and a single wire `max_op` gate) serves all five
/// objects. Gaps between bands are reserved.
pub mod ops {
    /// Take `arg` tokens from `key`'s bucket (1 granted, 0 denied).
    pub const RL_ACQUIRE: u64 = 0;
    /// Read `key`'s current token count, clamped to capacity (pure read).
    pub const RL_PEEK: u64 = 1;
    /// Add `arg` tokens to `key`'s bucket; returns the *old* raw count
    /// (fetch-add-shaped: eligible for op merging).
    pub const RL_FILL: u64 = 2;
    /// Cursor scan: smallest bucket key `>= arg` on the probed shard.
    pub const RL_SCAN: u64 = 3;
    /// Read `key`'s raw (unclamped) token count, or `EMPTY` if untouched.
    pub const RL_TOKENS: u64 = 4;
    /// Set `key`'s raw token count to `arg`; returns the old raw count.
    pub const RL_SET: u64 = 5;

    /// Add `arg` (wrapping) to member `key`'s score; returns the new score.
    pub const LB_ADD: u64 = 8;
    /// Read member `key`'s score, or `EMPTY` (pure read).
    pub const LB_GET: u64 = 9;
    /// Rank read: the member with the `arg`-th highest score on the probed
    /// shard (0-based), or `EMPTY`.
    pub const LB_NTH: u64 = 10;
    /// Count of members on the probed shard with score `>= arg`.
    pub const LB_COUNT_GE: u64 = 11;
    /// Remove member `key`; returns the removed score or `EMPTY`.
    pub const LB_REMOVE: u64 = 12;
    /// Cursor scan: smallest member key `>= arg` on the probed shard.
    pub const LB_SCAN: u64 = 13;

    /// Push a packed `(priority, item)` task onto queue `key`; returns the
    /// queue's new length.
    pub const PQ_PUSH: u64 = 16;
    /// Pop queue `key`'s minimum-priority task (FIFO within a priority);
    /// returns the packed task or `EMPTY`.
    pub const PQ_POP: u64 = 17;
    /// Read the minimum-priority task without removing it (pure read).
    pub const PQ_PEEK: u64 = 18;
    /// Read queue `key`'s length (pure read).
    pub const PQ_LEN: u64 = 19;

    /// Store a packed `(value, ttl_ms)` under session `key`; returns the
    /// replaced value or `EMPTY`. TTL 0 means the session never expires.
    pub const SS_PUT: u64 = 24;
    /// Read session `key`'s value, or `EMPTY` if absent *or expired*.
    /// Deliberately not on the read fast path: the deadline check may
    /// retire an expired entry.
    pub const SS_GET: u64 = 25;
    /// Delete session `key`; returns the removed value or `EMPTY`.
    pub const SS_DEL: u64 = 26;
    /// Remaining TTL of session `key` in ms (0 = immortal), or `EMPTY`.
    pub const SS_TTL: u64 = 27;
    /// Re-arm session `key` with TTL `arg` ms (1 live, 0 absent/expired).
    pub const SS_TOUCH: u64 = 28;
    /// Cursor scan: smallest *live* session key `>= arg` on the probed
    /// shard (expired entries are retired, not returned).
    pub const SS_SCAN: u64 = 29;

    /// Credit account `key` with `arg`; returns the new available balance.
    pub const LG_DEPOSIT: u64 = 32;
    /// Read account `key`'s available balance (pure read; 0 if absent).
    pub const LG_BALANCE: u64 = 33;
    /// Phase one: move `arg` from available to held (1 ok, 0 insufficient).
    pub const LG_RESERVE: u64 = 34;
    /// Phase two: burn `arg` of held funds (1 ok, 0 nothing held).
    pub const LG_COMMIT: u64 = 35;
    /// Abort: return `arg` of held funds to available (1 ok, 0 not held).
    pub const LG_RELEASE: u64 = 36;
    /// Read account `key`'s held amount (pure read; 0 if absent).
    pub const LG_HELD: u64 = 37;
    /// Cursor scan: smallest account key `>= arg` on the probed shard.
    pub const LG_SCAN: u64 = 38;

    /// One past the highest opcode: the wire-level `max_op` gate.
    pub const OP_LIMIT: u64 = 39;
}

/// Tuning for the suite's per-shard state.
#[derive(Debug, Clone, Copy)]
pub struct AppConfig {
    /// Token-bucket capacity; buckets start full and `RL_PEEK`/`RL_ACQUIRE`
    /// clamp to it.
    pub bucket_capacity: u64,
    /// Period of the timer-driven background refill, in milliseconds.
    /// 0 disables the refill timer (deterministic mode for lincheck).
    pub refill_interval_ms: u64,
    /// Tokens added to every touched bucket per refill firing.
    pub refill_amount: u64,
    /// Timer-wheel tick, in microseconds.
    pub timer_tick_us: u64,
}

impl Default for AppConfig {
    fn default() -> Self {
        Self {
            bucket_capacity: 64,
            refill_interval_ms: 0,
            refill_amount: 8,
            timer_tick_us: 1_000,
        }
    }
}

/// What a per-shard timer firing means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Timer {
    /// Session `key`'s TTL elapsed.
    Session(u64),
    /// The periodic rate-limiter refill came due.
    Refill,
}

/// One shard's worth of every application's state, plus the shared timer
/// wheel. The suite's [`Runtime`](mpsync_runtime::Runtime) holds one `AppState` per shard.
pub struct AppState {
    shard: usize,
    cfg: AppConfig,
    wheel: TimerWheel<Timer>,
    fired: Vec<Expired<Timer>>,
    rate: ratelimit::RateState,
    board: leaderboard::BoardState,
    queues: pq::PqState,
    sessions: session::SessionState,
    accounts: ledger::LedgerState,
}

impl AppState {
    /// Fresh state for `shard`, with the refill timer armed if configured.
    pub fn new(shard: usize, cfg: AppConfig) -> Self {
        let mut wheel = TimerWheel::new(cfg.timer_tick_us.max(1) * 1_000);
        if cfg.refill_interval_ms > 0 {
            let deadline = mpsync_runtime::mono_ns() + cfg.refill_interval_ms * 1_000_000;
            wheel.insert(deadline, Timer::Refill);
        }
        Self {
            shard,
            cfg,
            wheel,
            fired: Vec::new(),
            rate: ratelimit::RateState::default(),
            board: leaderboard::BoardState::default(),
            queues: pq::PqState::default(),
            sessions: session::SessionState::default(),
            accounts: ledger::LedgerState::default(),
        }
    }
}

impl Expire for AppState {
    fn next_deadline_ns(&mut self) -> Option<u64> {
        self.wheel.next_deadline_ns()
    }

    fn expire(&mut self, now_ns: u64) {
        self.fired.clear();
        let mut fired = std::mem::take(&mut self.fired);
        self.wheel.advance(now_ns, &mut fired);
        let mut swept = 0u64;
        let mut max_late = 0u64;
        for e in &fired {
            match e.item {
                Timer::Session(key) => {
                    if self.sessions.expire_one(key, e.id) {
                        swept += 1;
                        max_late = max_late.max(now_ns.saturating_sub(e.deadline_ns));
                    }
                }
                Timer::Refill => {
                    self.rate
                        .refill_all(self.cfg.refill_amount, self.cfg.bucket_capacity);
                    let next = now_ns + self.cfg.refill_interval_ms.max(1) * 1_000_000;
                    self.wheel.insert(next, Timer::Refill);
                }
            }
        }
        self.fired = fired;
        if swept > 0 {
            telemetry::count(Counter::AppSessionExpired, swept);
            telemetry::flight(FlightKind::Expire, self.shard as u64, swept, max_late);
        }
    }
}

/// The suite's keyed dispatcher: routes each opcode band to its
/// application's sequential state. Runs inside the shard's critical
/// section on every backend.
///
/// # Panics
///
/// Panics on an opcode outside the map — the wire layer rejects those
/// before they reach a shard ([`ops::OP_LIMIT`]).
pub fn app_dispatch(state: &mut AppState, key: u64, op: u64, arg: u64) -> u64 {
    if op < ops::LB_ADD {
        ratelimit::dispatch(&mut state.rate, state.cfg.bucket_capacity, key, op, arg)
    } else if op < ops::PQ_PUSH {
        leaderboard::dispatch(&mut state.board, key, op, arg)
    } else if op < ops::SS_PUT {
        pq::dispatch(&mut state.queues, key, op, arg)
    } else if op < ops::LG_DEPOSIT {
        session::dispatch(&mut state.sessions, &mut state.wheel, key, op, arg)
    } else if op < ops::OP_LIMIT {
        ledger::dispatch(&mut state.accounts, key, op, arg)
    } else {
        panic!("mpsync-apps: unknown opcode {op}");
    }
}

/// Function-pointer form of [`app_dispatch`], the suite's `F` parameter.
pub type AppFn = fn(&mut AppState, u64, u64, u64) -> u64;
