//! Sharded leaderboard: member scores plus an ordered `(score, member)`
//! index per shard.
//!
//! Writes (`LB_ADD`, `LB_REMOVE`) keep the index coherent inside the
//! shard's critical section. Rank reads (`LB_NTH`, `LB_COUNT_GE`) are
//! shard-local; the suite's [`Leaderboard`](crate::suite::Leaderboard)
//! facet walks every shard with [`probe_key`](mpsync_runtime::probe_key)
//! and merges client-side — a global top-K is a *sharded* query here, the
//! same shape the cluster layer uses for scatter-gather reads.

use std::collections::{BTreeMap, BTreeSet};

use mpsync_objects::EMPTY;

use crate::ops;

/// One shard's board: member → score, plus the ordered index.
#[derive(Debug, Default)]
pub(crate) struct BoardState {
    scores: BTreeMap<u64, u64>,
    /// `(score, member)` pairs; iterating backwards yields the shard's
    /// descending rank order (ties broken by higher member key first).
    index: BTreeSet<(u64, u64)>,
}

impl BoardState {
    pub(crate) fn len(&self) -> usize {
        self.scores.len()
    }
}

/// Sequential dispatcher for the `LB_*` band.
pub(crate) fn dispatch(state: &mut BoardState, key: u64, op: u64, arg: u64) -> u64 {
    match op {
        ops::LB_ADD => {
            let score = state.scores.entry(key).or_insert(0);
            if *score != 0 || state.index.contains(&(0, key)) {
                state.index.remove(&(*score, key));
            }
            *score = score.wrapping_add(arg);
            debug_assert_ne!(*score, EMPTY, "EMPTY sentinel is not a storable score");
            state.index.insert((*score, key));
            *score
        }
        ops::LB_GET => state.scores.get(&key).copied().unwrap_or(EMPTY),
        ops::LB_NTH => state
            .index
            .iter()
            .rev()
            .nth(arg as usize)
            .map(|&(_, member)| member)
            .unwrap_or(EMPTY),
        ops::LB_COUNT_GE => state.index.range((arg, 0)..).count() as u64,
        ops::LB_REMOVE => match state.scores.remove(&key) {
            Some(score) => {
                state.index.remove(&(score, key));
                score
            }
            None => EMPTY,
        },
        ops::LB_SCAN => state
            .scores
            .range(arg..)
            .next()
            .map(|(&k, _)| k)
            .unwrap_or(EMPTY),
        _ => panic!("leaderboard: unknown opcode {op}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lb(state: &mut BoardState, op: u64, key: u64, arg: u64) -> u64 {
        dispatch(state, key, op, arg)
    }

    #[test]
    fn add_accumulates_and_reorders_index() {
        let mut s = BoardState::default();
        assert_eq!(lb(&mut s, ops::LB_ADD, 1, 10), 10);
        assert_eq!(lb(&mut s, ops::LB_ADD, 2, 30), 30);
        assert_eq!(lb(&mut s, ops::LB_ADD, 3, 20), 20);
        assert_eq!(lb(&mut s, ops::LB_NTH, 0, 0), 2);
        assert_eq!(lb(&mut s, ops::LB_NTH, 0, 1), 3);
        assert_eq!(lb(&mut s, ops::LB_ADD, 1, 25), 35, "1 jumps to the top");
        assert_eq!(lb(&mut s, ops::LB_NTH, 0, 0), 1);
        assert_eq!(lb(&mut s, ops::LB_NTH, 0, 3), EMPTY);
        assert_eq!(s.index.len(), s.scores.len(), "index stays coherent");
    }

    #[test]
    fn get_remove_and_count_ge() {
        let mut s = BoardState::default();
        lb(&mut s, ops::LB_ADD, 1, 10);
        lb(&mut s, ops::LB_ADD, 2, 30);
        assert_eq!(lb(&mut s, ops::LB_GET, 1, 0), 10);
        assert_eq!(lb(&mut s, ops::LB_GET, 9, 0), EMPTY);
        assert_eq!(lb(&mut s, ops::LB_COUNT_GE, 0, 10), 2);
        assert_eq!(lb(&mut s, ops::LB_COUNT_GE, 0, 11), 1);
        assert_eq!(lb(&mut s, ops::LB_REMOVE, 2, 0), 30);
        assert_eq!(lb(&mut s, ops::LB_REMOVE, 2, 0), EMPTY);
        assert_eq!(lb(&mut s, ops::LB_COUNT_GE, 0, 0), 1);
        assert_eq!(s.index.len(), 1);
    }

    #[test]
    fn zero_score_members_are_ranked() {
        let mut s = BoardState::default();
        assert_eq!(lb(&mut s, ops::LB_ADD, 5, 0), 0);
        assert_eq!(lb(&mut s, ops::LB_NTH, 0, 0), 5);
        assert_eq!(lb(&mut s, ops::LB_ADD, 5, 0), 0, "re-add keeps one entry");
        assert_eq!(s.index.len(), 1);
        assert_eq!(lb(&mut s, ops::LB_SCAN, 0, 0), 5);
        assert_eq!(lb(&mut s, ops::LB_SCAN, 0, 6), EMPTY);
    }
}
