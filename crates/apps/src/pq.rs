//! Matchmaking priority queues: pop-min with FIFO order within a priority.
//!
//! Each routed key names an independent queue on its shard; tasks are
//! packed `(priority, item)` words ([`pack_task`]). `PQ_POP` is the
//! combining-friendly shape: a burst of pops against a hot queue rides one
//! delegation batch, and the suite facet's `pop_n` issues them
//! back-to-back so HYBCOMB/MP-SERVER fold the burst into one critical-
//! section pass.

use std::collections::{BTreeMap, HashMap};

use mpsync_objects::EMPTY;
use mpsync_telemetry as telemetry;
use mpsync_telemetry::Counter;

use crate::ops;

/// Packs a task for the wire: priority in the high 32 bits (lower value =
/// served first), item id in the low 32.
pub fn pack_task(priority: u32, item: u32) -> u64 {
    ((priority as u64) << 32) | item as u64
}

/// Inverse of [`pack_task`].
pub fn unpack_task(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// One queue: `(priority, seq)` → item. `seq` makes same-priority tasks
/// FIFO and the pop order total.
#[derive(Debug, Default)]
struct Queue {
    tasks: BTreeMap<(u64, u64), u64>,
    seq: u64,
}

/// One shard's queues.
#[derive(Debug, Default)]
pub(crate) struct PqState {
    queues: HashMap<u64, Queue>,
}

impl PqState {
    pub(crate) fn tasks(&self) -> usize {
        self.queues.values().map(|q| q.tasks.len()).sum()
    }
}

/// Sequential dispatcher for the `PQ_*` band.
pub(crate) fn dispatch(state: &mut PqState, key: u64, op: u64, arg: u64) -> u64 {
    match op {
        ops::PQ_PUSH => {
            debug_assert_ne!(arg, EMPTY, "EMPTY sentinel is not a storable task");
            let (prio, item) = unpack_task(arg);
            let q = state.queues.entry(key).or_default();
            let seq = q.seq;
            q.seq += 1;
            q.tasks.insert((prio as u64, seq), item as u64);
            q.tasks.len() as u64
        }
        ops::PQ_POP => match state.queues.get_mut(&key).and_then(|q| q.tasks.pop_first()) {
            Some(((prio, _), item)) => {
                telemetry::count(Counter::AppPqPops, 1);
                pack_task(prio as u32, item as u32)
            }
            None => EMPTY,
        },
        ops::PQ_PEEK => state
            .queues
            .get(&key)
            .and_then(|q| q.tasks.first_key_value())
            .map(|(&(prio, _), &item)| pack_task(prio as u32, item as u32))
            .unwrap_or(EMPTY),
        ops::PQ_LEN => state.queues.get(&key).map_or(0, |q| q.tasks.len() as u64),
        _ => panic!("pq: unknown opcode {op}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pq(state: &mut PqState, op: u64, key: u64, arg: u64) -> u64 {
        dispatch(state, key, op, arg)
    }

    #[test]
    fn pops_in_priority_then_fifo_order() {
        let mut s = PqState::default();
        pq(&mut s, ops::PQ_PUSH, 1, pack_task(5, 100));
        pq(&mut s, ops::PQ_PUSH, 1, pack_task(1, 200));
        pq(&mut s, ops::PQ_PUSH, 1, pack_task(5, 101));
        pq(&mut s, ops::PQ_PUSH, 1, pack_task(3, 300));
        assert_eq!(pq(&mut s, ops::PQ_PEEK, 1, 0), pack_task(1, 200));
        assert_eq!(pq(&mut s, ops::PQ_POP, 1, 0), pack_task(1, 200));
        assert_eq!(pq(&mut s, ops::PQ_POP, 1, 0), pack_task(3, 300));
        assert_eq!(pq(&mut s, ops::PQ_POP, 1, 0), pack_task(5, 100), "FIFO");
        assert_eq!(pq(&mut s, ops::PQ_POP, 1, 0), pack_task(5, 101));
        assert_eq!(pq(&mut s, ops::PQ_POP, 1, 0), EMPTY);
    }

    #[test]
    fn queues_are_independent_and_len_tracks() {
        let mut s = PqState::default();
        assert_eq!(pq(&mut s, ops::PQ_PUSH, 1, pack_task(1, 1)), 1);
        assert_eq!(pq(&mut s, ops::PQ_PUSH, 1, pack_task(2, 2)), 2);
        assert_eq!(pq(&mut s, ops::PQ_PUSH, 9, pack_task(1, 9)), 1);
        assert_eq!(pq(&mut s, ops::PQ_LEN, 1, 0), 2);
        assert_eq!(pq(&mut s, ops::PQ_LEN, 9, 0), 1);
        assert_eq!(pq(&mut s, ops::PQ_LEN, 4, 0), 0, "absent queue is empty");
        assert_eq!(pq(&mut s, ops::PQ_POP, 9, 0), pack_task(1, 9));
        assert_eq!(pq(&mut s, ops::PQ_PEEK, 9, 0), EMPTY);
        assert_eq!(s.tasks(), 2);
    }

    #[test]
    fn pack_roundtrips() {
        let (p, i) = unpack_task(pack_task(u32::MAX, 7));
        assert_eq!((p, i), (u32::MAX, 7));
        assert_eq!(unpack_task(pack_task(0, 0)), (0, 0));
    }
}
