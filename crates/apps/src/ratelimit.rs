//! Sharded token-bucket rate limiter.
//!
//! Buckets start *full* (at capacity) when first touched, so a fresh key is
//! admitted immediately. The stored count is raw (unclamped): `RL_FILL` is
//! a plain wrapping fetch-add — the shape the runtime's op merging folds —
//! and `RL_ACQUIRE`/`RL_PEEK` clamp to capacity at use, so overfilled
//! buckets still admit at most `capacity` tokens in a burst.

use std::collections::BTreeMap;

use mpsync_objects::EMPTY;
use mpsync_telemetry as telemetry;
use mpsync_telemetry::Counter;

use crate::ops;

/// One shard's buckets: key → raw token count.
#[derive(Debug, Default)]
pub(crate) struct RateState {
    buckets: BTreeMap<u64, u64>,
}

impl RateState {
    /// Timer-driven refill: tops every touched bucket up by `amount`,
    /// clamped to `cap` (unlike `RL_FILL`, the background refill never
    /// overfills).
    pub(crate) fn refill_all(&mut self, amount: u64, cap: u64) {
        for tokens in self.buckets.values_mut() {
            *tokens = (*tokens).saturating_add(amount).min(cap);
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.buckets.len()
    }
}

/// Sequential dispatcher for the `RL_*` band.
pub(crate) fn dispatch(state: &mut RateState, cap: u64, key: u64, op: u64, arg: u64) -> u64 {
    match op {
        ops::RL_ACQUIRE => {
            telemetry::count(Counter::AppRateChecks, 1);
            let tokens = state.buckets.entry(key).or_insert(cap);
            *tokens = (*tokens).min(cap);
            if *tokens >= arg {
                *tokens -= arg;
                1
            } else {
                telemetry::count(Counter::AppRateDenied, 1);
                0
            }
        }
        ops::RL_PEEK => state.buckets.get(&key).copied().unwrap_or(cap).min(cap),
        ops::RL_FILL => {
            let tokens = state.buckets.entry(key).or_insert(cap);
            let old = *tokens;
            *tokens = old.wrapping_add(arg);
            old
        }
        ops::RL_SCAN => state
            .buckets
            .range(arg..)
            .next()
            .map(|(&k, _)| k)
            .unwrap_or(EMPTY),
        ops::RL_TOKENS => state.buckets.get(&key).copied().unwrap_or(EMPTY),
        ops::RL_SET => state.buckets.insert(key, arg).unwrap_or(EMPTY),
        _ => panic!("ratelimit: unknown opcode {op}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: u64 = 10;

    fn rl(state: &mut RateState, op: u64, key: u64, arg: u64) -> u64 {
        dispatch(state, CAP, key, op, arg)
    }

    #[test]
    fn fresh_bucket_starts_full_and_drains() {
        let mut s = RateState::default();
        assert_eq!(rl(&mut s, ops::RL_PEEK, 7, 0), CAP);
        assert_eq!(rl(&mut s, ops::RL_ACQUIRE, 7, 4), 1);
        assert_eq!(rl(&mut s, ops::RL_PEEK, 7, 0), 6);
        assert_eq!(rl(&mut s, ops::RL_ACQUIRE, 7, 7), 0, "over-draw denied");
        assert_eq!(rl(&mut s, ops::RL_PEEK, 7, 0), 6, "denial takes nothing");
    }

    #[test]
    fn fill_is_fetch_add_and_acquire_clamps() {
        let mut s = RateState::default();
        assert_eq!(rl(&mut s, ops::RL_ACQUIRE, 3, CAP), 1); // drain to 0
        assert_eq!(rl(&mut s, ops::RL_FILL, 3, 100), 0, "returns old count");
        assert_eq!(rl(&mut s, ops::RL_TOKENS, 3, 0), 100, "raw is unclamped");
        assert_eq!(rl(&mut s, ops::RL_PEEK, 3, 0), CAP, "peek clamps");
        assert_eq!(rl(&mut s, ops::RL_ACQUIRE, 3, CAP), 1);
        assert_eq!(
            rl(&mut s, ops::RL_PEEK, 3, 0),
            0,
            "clamp applies before the draw: one burst of cap, not 100"
        );
    }

    #[test]
    fn refill_all_tops_up_to_cap_only() {
        let mut s = RateState::default();
        rl(&mut s, ops::RL_ACQUIRE, 1, 9); // 1 left
        rl(&mut s, ops::RL_ACQUIRE, 2, 2); // 8 left
        s.refill_all(5, CAP);
        assert_eq!(rl(&mut s, ops::RL_PEEK, 1, 0), 6);
        assert_eq!(rl(&mut s, ops::RL_PEEK, 2, 0), CAP);
        assert_eq!(s.len(), 2, "refill touches only existing buckets");
    }

    #[test]
    fn scan_set_roundtrip() {
        let mut s = RateState::default();
        rl(&mut s, ops::RL_ACQUIRE, 5, 1);
        rl(&mut s, ops::RL_ACQUIRE, 9, 2);
        assert_eq!(rl(&mut s, ops::RL_SCAN, 0, 0), 5);
        assert_eq!(rl(&mut s, ops::RL_SCAN, 0, 6), 9);
        assert_eq!(rl(&mut s, ops::RL_SCAN, 0, 10), EMPTY);
        assert_eq!(rl(&mut s, ops::RL_SET, 11, 3), EMPTY);
        assert_eq!(rl(&mut s, ops::RL_TOKENS, 11, 0), 3);
    }
}
