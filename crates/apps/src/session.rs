//! TTL session store: the application the timer wheel exists for.
//!
//! Every `SS_PUT` with a nonzero TTL arms a per-shard wheel timer; the
//! runtime fires it inside the shard's critical section (before a mutating
//! op on any backend, and from the idle shard loop on MP-SERVER shards), so
//! expiry linearizes like any other mutation. Reads are belt-and-braces:
//! `SS_GET`/`SS_TTL`/`SS_TOUCH`/`SS_SCAN` re-check the deadline and retire
//! an overdue entry on the spot — an expired session is never served even
//! on an inline backend whose idle shard has no one to run the sweep.
//!
//! TTL 0 means immortal: no timer, no deadline, fully deterministic (the
//! lincheck histories use this mode so results are clock-independent).

use std::collections::BTreeMap;

use mpsync_objects::EMPTY;
use mpsync_runtime::{mono_ns, TimerWheel};
use mpsync_telemetry as telemetry;
use mpsync_telemetry::Counter;

use crate::{ops, Timer};

/// Packs an `SS_PUT` argument: TTL (ms) in the high 32 bits, value in the
/// low 32. TTL 0 = immortal.
pub fn pack_put(value: u32, ttl_ms: u32) -> u64 {
    ((ttl_ms as u64) << 32) | value as u64
}

/// Inverse of [`pack_put`]: `(value, ttl_ms)`.
pub fn unpack_put(word: u64) -> (u32, u32) {
    (word as u32, (word >> 32) as u32)
}

#[derive(Debug)]
struct Entry {
    value: u64,
    /// 0 = immortal.
    deadline_ns: u64,
    /// Wheel timer id, 0 = none (wheel ids start at 1).
    timer: u64,
}

/// One shard's sessions.
#[derive(Debug, Default)]
pub(crate) struct SessionState {
    entries: BTreeMap<u64, Entry>,
}

impl SessionState {
    /// Timer-path expiry: retires `key` iff it is still armed with the
    /// fired timer `id` (a PUT/TOUCH after arming re-keys the timer, which
    /// orphans the old firing). Returns whether an entry was retired.
    pub(crate) fn expire_one(&mut self, key: u64, id: u64) -> bool {
        match self.entries.get(&key) {
            Some(e) if e.timer == id => {
                self.entries.remove(&key);
                true
            }
            _ => false,
        }
    }

    pub(crate) fn live(&self, now_ns: u64) -> usize {
        self.entries
            .values()
            .filter(|e| e.deadline_ns == 0 || e.deadline_ns > now_ns)
            .count()
    }

    pub(crate) fn resident(&self) -> usize {
        self.entries.len()
    }
}

/// Retires `key` if its deadline has passed; returns true if it did.
fn lazy_expire(
    state: &mut SessionState,
    wheel: &mut TimerWheel<Timer>,
    key: u64,
    now_ns: u64,
) -> bool {
    let Some(e) = state.entries.get(&key) else {
        return false;
    };
    if e.deadline_ns == 0 || e.deadline_ns > now_ns {
        return false;
    }
    let timer = e.timer;
    state.entries.remove(&key);
    if timer != 0 {
        wheel.cancel(timer);
    }
    telemetry::count(Counter::AppSessionLazyExpired, 1);
    true
}

/// Removes `key` unconditionally, cancelling its timer.
fn take(state: &mut SessionState, wheel: &mut TimerWheel<Timer>, key: u64) -> Option<u64> {
    let e = state.entries.remove(&key)?;
    if e.timer != 0 {
        wheel.cancel(e.timer);
    }
    Some(e.value)
}

/// Sequential dispatcher for the `SS_*` band. Shares the shard's wheel so
/// puts arm timers and lazy retirement cancels them.
pub(crate) fn dispatch(
    state: &mut SessionState,
    wheel: &mut TimerWheel<Timer>,
    key: u64,
    op: u64,
    arg: u64,
) -> u64 {
    match op {
        ops::SS_PUT => {
            let (value, ttl_ms) = unpack_put(arg);
            let old = take(state, wheel, key).unwrap_or(EMPTY);
            let (deadline_ns, timer) = if ttl_ms > 0 {
                let deadline = mono_ns() + ttl_ms as u64 * 1_000_000;
                (deadline, wheel.insert(deadline, Timer::Session(key)))
            } else {
                (0, 0)
            };
            state.entries.insert(
                key,
                Entry {
                    value: value as u64,
                    deadline_ns,
                    timer,
                },
            );
            old
        }
        ops::SS_GET => {
            if lazy_expire(state, wheel, key, mono_ns()) {
                return EMPTY;
            }
            state.entries.get(&key).map(|e| e.value).unwrap_or(EMPTY)
        }
        ops::SS_DEL => take(state, wheel, key).unwrap_or(EMPTY),
        ops::SS_TTL => {
            let now = mono_ns();
            if lazy_expire(state, wheel, key, now) {
                return EMPTY;
            }
            match state.entries.get(&key) {
                Some(e) if e.deadline_ns == 0 => 0,
                Some(e) => (e.deadline_ns - now).div_ceil(1_000_000),
                None => EMPTY,
            }
        }
        ops::SS_TOUCH => {
            let now = mono_ns();
            if lazy_expire(state, wheel, key, now) {
                return 0;
            }
            let Some(e) = state.entries.get_mut(&key) else {
                return 0;
            };
            if e.timer != 0 {
                wheel.cancel(e.timer);
            }
            if arg > 0 {
                e.deadline_ns = now + arg * 1_000_000;
                e.timer = wheel.insert(e.deadline_ns, Timer::Session(key));
            } else {
                e.deadline_ns = 0;
                e.timer = 0;
            }
            1
        }
        ops::SS_SCAN => {
            let now = mono_ns();
            let mut cursor = arg;
            loop {
                let Some((&k, _)) = state.entries.range(cursor..).next() else {
                    return EMPTY;
                };
                if !lazy_expire(state, wheel, k, now) {
                    return k;
                }
                cursor = k; // the expired key is gone; resume at the gap
            }
        }
        _ => panic!("session: unknown opcode {op}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel() -> TimerWheel<Timer> {
        TimerWheel::new(1_000_000)
    }

    fn ss(s: &mut SessionState, w: &mut TimerWheel<Timer>, op: u64, key: u64, arg: u64) -> u64 {
        dispatch(s, w, key, op, arg)
    }

    #[test]
    fn immortal_put_get_del_roundtrip() {
        let (mut s, mut w) = (SessionState::default(), wheel());
        assert_eq!(ss(&mut s, &mut w, ops::SS_PUT, 1, pack_put(42, 0)), EMPTY);
        assert_eq!(ss(&mut s, &mut w, ops::SS_GET, 1, 0), 42);
        assert_eq!(ss(&mut s, &mut w, ops::SS_TTL, 1, 0), 0, "immortal");
        assert_eq!(ss(&mut s, &mut w, ops::SS_PUT, 1, pack_put(43, 0)), 42);
        assert_eq!(ss(&mut s, &mut w, ops::SS_DEL, 1, 0), 43);
        assert_eq!(ss(&mut s, &mut w, ops::SS_GET, 1, 0), EMPTY);
        assert!(w.is_empty(), "immortal sessions arm no timers");
    }

    #[test]
    fn ttl_put_arms_timer_and_lazy_get_expires() {
        let (mut s, mut w) = (SessionState::default(), wheel());
        ss(&mut s, &mut w, ops::SS_PUT, 1, pack_put(7, 50));
        assert_eq!(w.len(), 1);
        assert_eq!(ss(&mut s, &mut w, ops::SS_GET, 1, 0), 7, "live before TTL");
        let ttl = ss(&mut s, &mut w, ops::SS_TTL, 1, 0);
        assert!((1..=50).contains(&ttl), "remaining ttl in range, got {ttl}");
        // Force the deadline into the past without sleeping.
        s.entries.get_mut(&1).unwrap().deadline_ns = 1;
        assert_eq!(ss(&mut s, &mut w, ops::SS_GET, 1, 0), EMPTY, "lazy expiry");
        assert!(w.is_empty(), "lazy expiry cancels the timer");
    }

    #[test]
    fn timer_expiry_respects_rearm() {
        let (mut s, mut w) = (SessionState::default(), wheel());
        ss(&mut s, &mut w, ops::SS_PUT, 1, pack_put(7, 50));
        let old_timer = s.entries[&1].timer;
        assert_eq!(ss(&mut s, &mut w, ops::SS_TOUCH, 1, 100), 1);
        let new_timer = s.entries[&1].timer;
        assert_ne!(old_timer, new_timer);
        assert!(!s.expire_one(1, old_timer), "stale firing is orphaned");
        assert_eq!(ss(&mut s, &mut w, ops::SS_GET, 1, 0), 7);
        assert!(s.expire_one(1, new_timer), "current firing retires");
        assert_eq!(ss(&mut s, &mut w, ops::SS_GET, 1, 0), EMPTY);
    }

    #[test]
    fn touch_zero_makes_immortal_and_scan_skips_expired() {
        let (mut s, mut w) = (SessionState::default(), wheel());
        ss(&mut s, &mut w, ops::SS_PUT, 1, pack_put(1, 50));
        ss(&mut s, &mut w, ops::SS_PUT, 2, pack_put(2, 50));
        ss(&mut s, &mut w, ops::SS_PUT, 3, pack_put(3, 0));
        assert_eq!(ss(&mut s, &mut w, ops::SS_TOUCH, 1, 0), 1);
        assert_eq!(s.entries[&1].deadline_ns, 0);
        s.entries.get_mut(&2).unwrap().deadline_ns = 1; // force-expire 2
        assert_eq!(ss(&mut s, &mut w, ops::SS_SCAN, 0, 0), 1);
        assert_eq!(ss(&mut s, &mut w, ops::SS_SCAN, 0, 2), 3, "2 retired");
        assert_eq!(ss(&mut s, &mut w, ops::SS_GET, 2, 0), EMPTY);
        assert_eq!(ss(&mut s, &mut w, ops::SS_SCAN, 0, 4), EMPTY);
        assert_eq!(ss(&mut s, &mut w, ops::SS_TOUCH, 9, 10), 0, "absent");
    }
}
