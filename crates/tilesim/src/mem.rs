//! The memory system: sequentially consistent word memory (the paper's §2
//! model), a directory-based coherence protocol maintaining the
//! single-writer/multiple-reader invariant, and memory controllers that
//! execute atomic operations.
//!
//! Addresses are 64-bit word indices; [`WORDS_PER_LINE`] consecutive words
//! share a cache line, which is the coherence unit. Loads and stores by the
//! simulated cores go through the directory, which charges remote memory
//! references (RMRs) hop-proportional latencies; atomic read-modify-write
//! operations bypass the caches and execute serialized at one of the memory
//! controllers, as on the TILE-Gx.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::config::MachineConfig;

/// Words per cache line (64-byte lines of 64-bit words).
pub const WORDS_PER_LINE: u64 = 8;

/// A word address in simulated memory.
pub type Addr = u64;

/// The cache line an address belongs to.
#[inline]
pub fn line_of(addr: Addr) -> u64 {
    addr / WORDS_PER_LINE
}

/// Multiply-mix hasher for the `u64` keys of the two hot maps below. Both
/// map lookups sit on the per-access critical path of every simulated memory
/// operation; the default SipHash dominates their cost while word addresses
/// need no DoS resistance.
#[derive(Default)]
struct WordHasher(u64);

impl Hasher for WordHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        // Fibonacci multiply then fold the high bits down: HashMap derives
        // both the bucket index (low bits) and control byte (high bits) from
        // this, so both halves must be mixed.
        let h = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

type WordMap<V> = HashMap<u64, V, BuildHasherDefault<WordHasher>>;

/// Coherence state of one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineState {
    /// Not cached anywhere (only in memory).
    Invalid,
    /// Cached read-only by the cores in `sharers`.
    Shared,
    /// Cached read-write by exactly `owner`.
    Modified,
}

#[derive(Debug, Clone)]
struct Line {
    state: LineState,
    owner: usize,
    /// Bitmask of sharer cores (the simulator supports up to 64 cores).
    sharers: u64,
}

impl Line {
    fn new() -> Self {
        Self {
            state: LineState::Invalid,
            owner: 0,
            sharers: 0,
        }
    }
}

/// Outcome of a memory access: its latency and whether it was an RMR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Total cycles the access occupies the issuing core.
    pub latency: u64,
    /// Whether the access involved the interconnection network.
    pub rmr: bool,
}

/// The memory system shared by all simulated cores.
pub struct Memory {
    cfg: MachineConfig,
    values: WordMap<u64>,
    lines: WordMap<Line>,
    /// Each controller is busy until the given cycle (serialization point
    /// for atomics).
    ctrl_busy_until: Vec<u64>,
    /// Last line each controller operated on (same-line atomics stream;
    /// switching lines pays the §5.4 false-serialization penalty).
    ctrl_last_line: Vec<Option<u64>>,
    /// Each home tile's directory is busy until the given cycle: misses and
    /// invalidations on lines homed there serialize, so a single hot line
    /// (e.g. a CAS-hammered stack top) queues its traffic.
    home_busy_until: Vec<u64>,
    /// Total RMRs charged, per core.
    rmr_count: Vec<u64>,
    /// Total atomics executed, per core.
    atomic_count: Vec<u64>,
}

impl Memory {
    /// Creates zeroed memory for the given machine.
    pub fn new(cfg: MachineConfig) -> Self {
        let cores = cfg.cores();
        Self {
            cfg,
            values: WordMap::default(),
            lines: WordMap::default(),
            ctrl_busy_until: vec![0; cfg.controllers],
            ctrl_last_line: vec![None; cfg.controllers],
            home_busy_until: vec![0; cores],
            rmr_count: vec![0; cores],
            atomic_count: vec![0; cores],
        }
    }

    /// Directory home tile of a line (distributed directory, striped).
    fn home(&self, l: u64) -> usize {
        (l % self.cfg.cores() as u64) as usize
    }

    /// Memory controller responsible for a line.
    fn controller(&self, l: u64) -> usize {
        (l % self.cfg.controllers as u64) as usize
    }

    fn line_mut(&mut self, l: u64) -> &mut Line {
        self.lines.entry(l).or_insert_with(Line::new)
    }

    /// Reserves the home directory of line `l` for one transaction starting
    /// no earlier than `arrival`, returning the transaction's start time.
    fn home_slot(&mut self, home: usize, arrival: u64) -> u64 {
        let start = arrival.max(self.home_busy_until[home]);
        self.home_busy_until[home] = start + self.cfg.dir_occupancy;
        start
    }

    /// Reads a word at cycle `now`. A hit costs `l1_hit`; otherwise the
    /// directory at the line's home is consulted (hop-proportional, and
    /// *serialized at the home* — a hot line queues its misses) and, if
    /// another core owns the line in Modified state, an ownership downgrade
    /// is charged.
    pub fn read(&mut self, core: usize, addr: Addr, now: u64) -> (u64, Access) {
        let cfg = self.cfg;
        let l = line_of(addr);
        let home = self.home(l);
        let value = *self.values.entry(addr).or_insert(0);
        let bit = 1u64 << core;

        let line = self.line_mut(l);
        let hit = match line.state {
            LineState::Modified => line.owner == core,
            LineState::Shared => line.sharers & bit != 0,
            LineState::Invalid => false,
        };
        if hit {
            return (
                value,
                Access {
                    latency: cfg.l1_hit,
                    rmr: false,
                },
            );
        }

        let travel = cfg.hop * cfg.hops(core, home);
        let mut service = cfg.dir_occupancy;
        let line = self.lines.get_mut(&l).expect("line exists");
        match line.state {
            LineState::Modified => {
                // Fetch from the current owner and downgrade to Shared.
                service += cfg.coherence_extra + cfg.hop * cfg.hops(home, line.owner);
                line.sharers = (1u64 << line.owner) | bit;
                line.state = LineState::Shared;
            }
            LineState::Shared => {
                line.sharers |= bit;
            }
            LineState::Invalid => {
                line.state = LineState::Shared;
                line.sharers = bit;
            }
        }
        let start = self.home_slot(home, now + travel);
        let latency = (start + service + travel).saturating_sub(now) + cfg.rmr_base;
        self.rmr_count[core] += 1;
        (value, Access { latency, rmr: true })
    }

    /// Writes a word at cycle `now`. A hit requires Modified ownership;
    /// otherwise the directory upgrade (serialized at the home) invalidates
    /// all other copies.
    pub fn write(&mut self, core: usize, addr: Addr, v: u64, now: u64) -> Access {
        let cfg = self.cfg;
        let l = line_of(addr);
        let home = self.home(l);
        self.values.insert(addr, v);
        let bit = 1u64 << core;

        let line = self.line_mut(l);
        if line.state == LineState::Modified && line.owner == core {
            return Access {
                latency: cfg.l1_hit,
                rmr: false,
            };
        }

        let others = match line.state {
            LineState::Modified if line.owner != core => 1,
            LineState::Shared => (line.sharers & !bit).count_ones() as u64,
            _ => 0,
        };
        line.state = LineState::Modified;
        line.owner = core;
        line.sharers = bit;

        let travel = cfg.hop * cfg.hops(core, home);
        let mut service = cfg.dir_occupancy;
        if others > 0 {
            service += cfg.coherence_extra;
        }
        let start = self.home_slot(home, now + travel);
        let latency = (start + service + travel).saturating_sub(now) + cfg.rmr_base;
        self.rmr_count[core] += 1;
        Access { latency, rmr: true }
    }

    /// Executes an atomic read-modify-write at the line's memory
    /// controller: all cached copies are invalidated, the operation is
    /// serialized on the controller, and the round trip is charged to the
    /// issuing core. Returns the *previous* value and the access cost.
    ///
    /// `now` is the core's current cycle; the returned latency already
    /// accounts for queuing behind other atomics at the same controller.
    pub fn atomic<F: FnOnce(u64) -> u64>(
        &mut self,
        core: usize,
        addr: Addr,
        now: u64,
        f: F,
    ) -> (u64, Access) {
        let cfg = self.cfg;
        let l = line_of(addr);
        let ctrl = self.controller(l);

        // Invalidate every cached copy: after the operation, memory holds
        // the only current version.
        let home = self.home(l);
        let had_copies = {
            let line = self.line_mut(l);
            let had = line.state != LineState::Invalid;
            line.state = LineState::Invalid;
            line.sharers = 0;
            had
        };
        if had_copies {
            // The invalidation is a directory transaction at the home tile.
            self.home_slot(home, now);
        }

        let dist = cfg.hop * cfg.hops_to_controller(core, ctrl);
        let arrival = now + dist;
        let start = arrival.max(self.ctrl_busy_until[ctrl]);
        // Streaming atomics on one line are cheap; switching lines pays the
        // false-serialization penalty (§5.4).
        let occupancy = if self.ctrl_last_line[ctrl] == Some(l) {
            cfg.ctrl_occupancy_same
        } else {
            cfg.ctrl_occupancy_switch
        };
        let finish = start + occupancy;
        self.ctrl_busy_until[ctrl] = finish;
        self.ctrl_last_line[ctrl] = Some(l);

        let old = *self.values.entry(addr).or_insert(0);
        self.values.insert(addr, f(old));

        let mut latency = finish.max(arrival + cfg.ctrl_op) + dist - now;
        if had_copies {
            latency += cfg.coherence_extra;
        }
        self.atomic_count[core] += 1;
        (old, Access { latency, rmr: true })
    }

    /// Reads a value without touching coherence state or charging cycles
    /// (for assertions and end-of-run inspection).
    pub fn peek(&self, addr: Addr) -> u64 {
        self.values.get(&addr).copied().unwrap_or(0)
    }

    /// Writes a value without coherence effects or cycle charges — for
    /// initializing protocol state before the simulation starts.
    pub fn poke(&mut self, addr: Addr, v: u64) {
        self.values.insert(addr, v);
    }

    /// Total RMRs charged to a core so far.
    pub fn rmrs(&self, core: usize) -> u64 {
        self.rmr_count[core]
    }

    /// Total atomics executed by a core so far.
    pub fn atomics(&self, core: usize) -> u64 {
        self.atomic_count[core]
    }

    /// Verifies the single-writer/multiple-readers invariant for every
    /// tracked line (used by tests).
    pub fn check_swmr(&self) -> Result<(), String> {
        for (l, line) in &self.lines {
            match line.state {
                LineState::Modified => {
                    if line.sharers.count_ones() > 1 {
                        return Err(format!(
                            "line {l}: Modified with sharers {:b}",
                            line.sharers
                        ));
                    }
                }
                LineState::Shared => {
                    if line.sharers == 0 {
                        return Err(format!("line {l}: Shared with no sharers"));
                    }
                }
                LineState::Invalid => {
                    if line.sharers != 0 {
                        return Err(format!("line {l}: Invalid with sharers"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::new(MachineConfig::tile_gx8036())
    }

    #[test]
    fn read_miss_then_hit() {
        let mut m = mem();
        let (v, a) = m.read(0, 100, 0);
        assert_eq!(v, 0);
        assert!(a.rmr);
        let (_, a2) = m.read(0, 100, 0);
        assert!(!a2.rmr);
        assert_eq!(a2.latency, m.cfg.l1_hit);
        // Same line, different word: also a hit.
        let (_, a3) = m.read(0, 101, 0);
        assert!(!a3.rmr);
    }

    #[test]
    fn write_invalidates_readers() {
        let mut m = mem();
        m.read(0, 8, 0);
        m.read(1, 8, 0);
        let a = m.write(2, 8, 7, 0);
        assert!(a.rmr);
        // Both former sharers now miss.
        let (v, a0) = m.read(0, 8, 0);
        assert_eq!(v, 7);
        assert!(a0.rmr);
        // Writer 2 lost exclusivity (downgraded to Shared by reader 0).
        let a2 = m.write(2, 8, 9, 0);
        assert!(a2.rmr);
        m.check_swmr().unwrap();
    }

    #[test]
    fn write_hit_in_modified() {
        let mut m = mem();
        m.write(3, 16, 1, 0);
        let a = m.write(3, 17, 2, 0); // same line
        assert!(!a.rmr);
        assert_eq!(m.peek(16), 1);
        assert_eq!(m.peek(17), 2);
    }

    #[test]
    fn rmr_latency_grows_with_distance() {
        let mut m = mem();
        // Line 0 homes at core 0. Core 1 (adjacent) vs core 35 (corner).
        let (_, near) = m.read(1, 0, 0);
        let mut m2 = mem();
        let (_, far) = m2.read(35, 0, 0);
        assert!(far.latency > near.latency);
    }

    #[test]
    fn atomics_serialize_at_controller() {
        let mut m = mem();
        // Lines 0 and 2 both map to controller 0; issue two atomics at the
        // same instant and observe queuing.
        let (_, a1) = m.atomic(0, 0, 1000, |v| v + 1);
        let (_, a2) = m.atomic(1, 2 * WORDS_PER_LINE, 1000, |v| v + 1);
        assert!(a2.latency > a1.latency.saturating_sub(2 * m.cfg.hop * 10));
        // Controller busy time advanced twice (both are line switches).
        assert!(m.ctrl_busy_until[0] >= 1000 + 2 * m.cfg.ctrl_occupancy_switch);
    }

    #[test]
    fn same_line_atomics_stream_faster() {
        let cfg = MachineConfig::tile_gx8036();
        // Same line back-to-back...
        let mut m = Memory::new(cfg);
        m.atomic(0, 0, 0, |v| v + 1);
        m.atomic(1, 0, 0, |v| v + 1);
        let same_busy = m.ctrl_busy_until[0];
        // ...vs alternating lines (both on controller 0).
        let mut m2 = Memory::new(cfg);
        m2.atomic(0, 0, 0, |v| v + 1);
        m2.atomic(1, 2 * WORDS_PER_LINE, 0, |v| v + 1);
        let switch_busy = m2.ctrl_busy_until[0];
        assert!(
            switch_busy > same_busy,
            "line switches must serialize harder: {switch_busy} vs {same_busy}"
        );
    }

    #[test]
    fn atomic_faa_sequence() {
        let mut m = mem();
        let (old1, _) = m.atomic(0, 40, 0, |v| v + 1);
        let (old2, _) = m.atomic(1, 40, 50, |v| v + 1);
        assert_eq!((old1, old2), (0, 1));
        assert_eq!(m.peek(40), 2);
    }

    #[test]
    fn atomic_invalidates_cached_copies() {
        let mut m = mem();
        m.read(0, 40, 0);
        m.atomic(1, 40, 0, |v| v + 5);
        let (v, acc) = m.read(0, 40, 0);
        assert_eq!(v, 5);
        assert!(acc.rmr, "cached copy must have been invalidated");
    }

    #[test]
    fn swmr_invariant_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut m = mem();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5_000 {
            let core = rng.gen_range(0..36);
            let addr = rng.gen_range(0..64u64);
            match rng.gen_range(0..3) {
                0 => {
                    m.read(core, addr, 0);
                }
                1 => {
                    m.write(core, addr, core as u64, 0);
                }
                _ => {
                    m.atomic(core, addr, 0, |v| v.wrapping_add(1));
                }
            }
            m.check_swmr().unwrap();
        }
    }
}
