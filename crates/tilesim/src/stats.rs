//! Per-core counters and run results.

use crate::config::MachineConfig;

/// Number of metric slots per proc.
pub const N_METRICS: usize = 20;

/// Number of logarithmic latency-histogram buckets ([`Metric::LatB0`] …).
pub const LAT_BUCKETS: usize = 8;

/// Upper bound (exclusive) of latency bucket `i`, in cycles: 64, 128, …;
/// the last bucket is unbounded.
pub fn lat_bucket_bound(i: usize) -> u64 {
    64u64 << i
}

/// The histogram bucket a latency sample falls into.
pub fn lat_bucket(latency: u64) -> usize {
    for i in 0..LAT_BUCKETS - 1 {
        if latency < lat_bucket_bound(i) {
            return i;
        }
    }
    LAT_BUCKETS - 1
}

/// Workload-defined metric slots accumulated via
/// [`Ctx::record`](crate::Ctx::record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// Completed object operations (throughput numerator).
    Ops = 0,
    /// Sum of request latencies in cycles.
    LatSum = 1,
    /// Number of latency samples.
    LatCount = 2,
    /// CAS instructions issued by the workload protocol (HYBCOMB line 17 /
    /// nonblocking retries).
    Cas = 3,
    /// Combining rounds started.
    Rounds = 4,
    /// Requests served by combiners (their own included).
    Combined = 5,
    /// Combining rounds that served only the combiner's own request.
    Orphans = 6,
    /// Critical sections executed *by this core as servicing thread*.
    Served = 7,
    /// Failed CAS attempts (nonblocking algorithms' retries).
    CasFail = 8,
    /// Scratch slot A for experiment-specific counters.
    CustomA = 9,
    /// Scratch slot B.
    CustomB = 10,
    /// Scratch slot C.
    CustomC = 11,
    /// Latency histogram bucket 0 (< 64 cycles). Buckets are consecutive
    /// metric slots; see [`lat_bucket`].
    LatB0 = 12,
    /// Latency bucket 1 (< 128 cycles).
    LatB1 = 13,
    /// Latency bucket 2 (< 256 cycles).
    LatB2 = 14,
    /// Latency bucket 3 (< 512 cycles).
    LatB3 = 15,
    /// Latency bucket 4 (< 1024 cycles).
    LatB4 = 16,
    /// Latency bucket 5 (< 2048 cycles).
    LatB5 = 17,
    /// Latency bucket 6 (< 4096 cycles).
    LatB6 = 18,
    /// Latency bucket 7 (≥ 4096 cycles).
    LatB7 = 19,
}

impl Metric {
    /// The metric slot for latency-histogram bucket `i`.
    pub fn lat_bucket_slot(i: usize) -> usize {
        assert!(i < LAT_BUCKETS);
        Metric::LatB0 as usize + i
    }

    /// The latency-histogram metrics in bucket order.
    pub const LAT_HISTOGRAM: [Metric; LAT_BUCKETS] = [
        Metric::LatB0,
        Metric::LatB1,
        Metric::LatB2,
        Metric::LatB3,
        Metric::LatB4,
        Metric::LatB5,
        Metric::LatB6,
        Metric::LatB7,
    ];

    /// Every metric, indexed by its discriminant (so
    /// `Metric::ALL[m as usize] == m`).
    pub const ALL: [Metric; N_METRICS] = [
        Metric::Ops,
        Metric::LatSum,
        Metric::LatCount,
        Metric::Cas,
        Metric::Rounds,
        Metric::Combined,
        Metric::Orphans,
        Metric::Served,
        Metric::CasFail,
        Metric::CustomA,
        Metric::CustomB,
        Metric::CustomC,
        Metric::LatB0,
        Metric::LatB1,
        Metric::LatB2,
        Metric::LatB3,
        Metric::LatB4,
        Metric::LatB5,
        Metric::LatB6,
        Metric::LatB7,
    ];

    /// The metric with discriminant `i` (inverse of `m as usize`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= N_METRICS`.
    pub fn from_index(i: usize) -> Metric {
        Metric::ALL[i]
    }
}

/// Host-side execution counters of one simulation run: how the simulator
/// itself behaved on the machine running it, as opposed to the simulated
/// machine's counters in [`CoreStats`].
///
/// `handoffs`, `inline_payloads`, and `heap_fallbacks` are deterministic
/// functions of the simulated trace; `engine_parks` and `proc_parks` depend
/// on host scheduling and vary run to run. None of these may feed figure
/// values — they exist for the harness's `--timing` self-measurement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Proc→engine request/response round trips served through the mailbox.
    pub handoffs: u64,
    /// Times the engine thread parked waiting for a proc's next request.
    pub engine_parks: u64,
    /// Times a proc thread parked waiting for the engine's response.
    pub proc_parks: u64,
    /// Request/response payloads carried in the mailbox's inline word
    /// buffer — each one an allocation the previous channel-based handoff
    /// design would have made.
    pub inline_payloads: u64,
    /// Oversized payloads that fell back to a heap allocation.
    pub heap_fallbacks: u64,
}

impl HostStats {
    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &HostStats) {
        self.handoffs += other.handoffs;
        self.engine_parks += other.engine_parks;
        self.proc_parks += other.proc_parks;
        self.inline_payloads += other.inline_payloads;
        self.heap_fallbacks += other.heap_fallbacks;
    }
}

/// Cycle accounting for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles doing useful work (instruction execution, cache hits,
    /// message service).
    pub busy: u64,
    /// Cycles stalled on the memory system (RMR latency beyond a hit,
    /// atomic round trips).
    pub stall: u64,
    /// Cycles idle: waiting for messages to arrive or for queue space.
    pub idle: u64,
    /// Memory operations issued.
    pub mem_ops: u64,
    /// Remote memory references (filled from the memory system).
    pub rmrs: u64,
    /// Atomic operations (filled from the memory system).
    pub atomics: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// `receive` completions.
    pub msgs_recv: u64,
    /// Sends that hit back-pressure.
    pub blocked_sends: u64,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Machine the run used.
    pub cfg: MachineConfig,
    /// Cycles elapsed, clamped to the horizon (use for throughput).
    pub cycles: u64,
    /// Raw final clock (may exceed the horizon by the last event's width).
    pub end_clock: u64,
    /// Per-core cycle accounting; index = core = proc id.
    pub per_core: Vec<CoreStats>,
    /// Per-proc metric accumulators.
    pub metrics: Vec<[u64; N_METRICS]>,
    /// Host-side simulator execution counters (see [`HostStats`]); not part
    /// of the simulated machine's state and never used in figure values.
    pub host: HostStats,
}

impl SimResult {
    /// Sum of a metric across all procs.
    pub fn metric_sum(&self, m: Metric) -> u64 {
        self.metrics.iter().map(|row| row[m as usize]).sum()
    }

    /// One proc's metric.
    pub fn metric(&self, proc: usize, m: Metric) -> u64 {
        self.metrics[proc][m as usize]
    }

    /// Aggregate throughput in Mops/s at the configured frequency, based on
    /// [`Metric::Ops`].
    pub fn mops(&self) -> f64 {
        self.cfg.mops(self.metric_sum(Metric::Ops), self.cycles)
    }

    /// Average request latency in cycles ([`Metric::LatSum`] over
    /// [`Metric::LatCount`]).
    pub fn avg_latency(&self) -> f64 {
        let n = self.metric_sum(Metric::LatCount);
        if n == 0 {
            0.0
        } else {
            self.metric_sum(Metric::LatSum) as f64 / n as f64
        }
    }

    /// Upper bound of the latency bucket containing the `p`-th percentile
    /// sample (`p` in 0..=1), from the logarithmic histogram — e.g.
    /// `latency_percentile(0.99)`. Returns 0 with no samples.
    pub fn latency_percentile(&self, p: f64) -> u64 {
        let total: u64 = Metric::LAT_HISTOGRAM
            .iter()
            .map(|&m| self.metric_sum(m))
            .sum();
        if total == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &m) in Metric::LAT_HISTOGRAM.iter().enumerate() {
            seen += self.metric_sum(m);
            if seen >= target {
                return lat_bucket_bound(i);
            }
        }
        lat_bucket_bound(LAT_BUCKETS - 1)
    }

    /// Average requests served per combining round.
    pub fn combining_rate(&self) -> f64 {
        let rounds = self.metric_sum(Metric::Rounds);
        if rounds == 0 {
            0.0
        } else {
            self.metric_sum(Metric::Combined) as f64 / rounds as f64
        }
    }

    /// CAS instructions per completed operation.
    pub fn cas_per_op(&self) -> f64 {
        let ops = self.metric_sum(Metric::Ops);
        if ops == 0 {
            0.0
        } else {
            self.metric_sum(Metric::Cas) as f64 / ops as f64
        }
    }

    /// Fairness ratio: max over min per-proc op count, over procs that
    /// completed at least one op (1.0 = perfectly fair; the paper reports
    /// ≤ 1.2 for HYBCOMB and ~1.1 for MP-SERVER).
    pub fn fairness_ratio(&self) -> f64 {
        let counts: Vec<u64> = self
            .metrics
            .iter()
            .map(|m| m[Metric::Ops as usize])
            .filter(|&c| c > 0)
            .collect();
        match (counts.iter().max(), counts.iter().min()) {
            (Some(&max), Some(&min)) if min > 0 => max as f64 / min as f64,
            _ => 0.0,
        }
    }

    /// Cycles per completed operation on the *servicing* core (Figure 4a's
    /// y-axis): total non-idle cycles of `core` divided by the critical
    /// sections it served.
    pub fn cycles_per_served_op(&self, core: usize) -> f64 {
        let served = self.metric(core, Metric::Served);
        if served == 0 {
            return 0.0;
        }
        let s = &self.per_core[core];
        (s.busy + s.stall) as f64 / served as f64
    }

    /// Stalled cycles per served operation on `core` (Figure 4a's dark
    /// bars).
    pub fn stalls_per_served_op(&self, core: usize) -> f64 {
        let served = self.metric(core, Metric::Served);
        if served == 0 {
            return 0.0;
        }
        self.per_core[core].stall as f64 / served as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(metrics: Vec<[u64; N_METRICS]>, per_core: Vec<CoreStats>) -> SimResult {
        SimResult {
            cfg: MachineConfig::tile_gx8036(),
            cycles: 1_200_000, // 1 ms at 1.2 GHz
            end_clock: 1_200_000,
            per_core,
            metrics,
            host: HostStats::default(),
        }
    }

    #[test]
    fn mops_and_latency() {
        let mut m = [0u64; N_METRICS];
        m[Metric::Ops as usize] = 12_000;
        m[Metric::LatSum as usize] = 50_000;
        m[Metric::LatCount as usize] = 1_000;
        let r = result_with(vec![m], vec![CoreStats::default()]);
        assert!((r.mops() - 12.0).abs() < 1e-9);
        assert!((r.avg_latency() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fairness_ignores_zero_procs() {
        let mut a = [0u64; N_METRICS];
        a[Metric::Ops as usize] = 100;
        let mut b = [0u64; N_METRICS];
        b[Metric::Ops as usize] = 80;
        let zero = [0u64; N_METRICS];
        let r = result_with(vec![a, b, zero], vec![CoreStats::default(); 3]);
        assert!((r.fairness_ratio() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn served_op_cycle_breakdown() {
        let mut m = [0u64; N_METRICS];
        m[Metric::Served as usize] = 10;
        let core = CoreStats {
            busy: 300,
            stall: 200,
            ..CoreStats::default()
        };
        let r = result_with(vec![m], vec![core]);
        assert!((r.cycles_per_served_op(0) - 50.0).abs() < 1e-9);
        assert!((r.stalls_per_served_op(0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn lat_buckets_partition() {
        assert_eq!(lat_bucket(0), 0);
        assert_eq!(lat_bucket(63), 0);
        assert_eq!(lat_bucket(64), 1);
        assert_eq!(lat_bucket(1023), 4);
        assert_eq!(lat_bucket(1024), 5);
        assert_eq!(lat_bucket(u64::MAX), LAT_BUCKETS - 1);
        for i in 0..LAT_BUCKETS - 1 {
            assert!(lat_bucket_bound(i) < lat_bucket_bound(i + 1));
        }
    }

    #[test]
    fn latency_percentiles_from_histogram() {
        let mut m = [0u64; N_METRICS];
        // 90 fast samples (<64cy), 9 medium (<1024), 1 slow tail (>=4096).
        m[Metric::LatB0 as usize] = 90;
        m[Metric::LatB4 as usize] = 9;
        m[Metric::LatB7 as usize] = 1;
        let r = result_with(vec![m], vec![CoreStats::default()]);
        assert_eq!(r.latency_percentile(0.50), 64);
        assert_eq!(r.latency_percentile(0.95), 1024);
        assert_eq!(r.latency_percentile(1.0), lat_bucket_bound(LAT_BUCKETS - 1));
        let empty = result_with(vec![[0; N_METRICS]], vec![CoreStats::default()]);
        assert_eq!(empty.latency_percentile(0.99), 0);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let r = result_with(vec![[0; N_METRICS]], vec![CoreStats::default()]);
        assert_eq!(r.mops(), 0.0);
        assert_eq!(r.avg_latency(), 0.0);
        assert_eq!(r.combining_rate(), 0.0);
        assert_eq!(r.cas_per_op(), 0.0);
        assert_eq!(r.fairness_ratio(), 0.0);
        assert_eq!(r.cycles_per_served_op(0), 0.0);
    }
}
