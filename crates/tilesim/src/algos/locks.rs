//! Simulator models of classical spin locks (§3's context): TAS with
//! backoff, the ticket lock, and the MCS queue lock with local spinning.
//!
//! These complete the picture the paper paints in §3: even the best lock
//! (MCS, O(1) RMRs per acquisition) must *move the protected data* to the
//! acquiring core — every critical section starts with compulsory RMR
//! misses on the object's lines — which is exactly the locality cost that
//! delegation and combining avoid. The `ext-locks` experiment in `repro`
//! plots them against the paper's constructions.

use crate::engine::{Ctx, Engine};
use crate::mem::{Addr, WORDS_PER_LINE};
use crate::stats::Metric;

use super::{client_rng, exec_cs, local_work, record_op, AddrAlloc, RunSpec};

/// Which lock model to install.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// Test-and-test-and-set with exponential backoff.
    Tas,
    /// Ticket lock (FIFO, one grant variable).
    Ticket,
    /// MCS queue lock (local spinning).
    Mcs,
}

impl LockKind {
    /// All lock kinds, for sweeps.
    pub const ALL: [LockKind; 3] = [LockKind::Tas, LockKind::Ticket, LockKind::Mcs];

    /// Label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            LockKind::Tas => "tas",
            LockKind::Ticket => "ticket",
            LockKind::Mcs => "mcs",
        }
    }
}

/// Installs `spec.threads` procs running the counter-style workload with
/// the critical section protected by the chosen lock.
pub fn install_lock(engine: &mut Engine, spec: RunSpec, kind: LockKind, alloc: &mut AddrAlloc) {
    match kind {
        LockKind::Tas => {
            let lock = alloc.line();
            for _ in 0..spec.threads {
                engine.add_proc(move |ctx| tas_loop(ctx, spec, lock));
            }
        }
        LockKind::Ticket => {
            let next = alloc.line();
            let serving = alloc.line();
            for _ in 0..spec.threads {
                engine.add_proc(move |ctx| ticket_loop(ctx, spec, next, serving));
            }
        }
        LockKind::Mcs => {
            let tail = alloc.line();
            // One node line per thread: +0 locked flag, +1 next (id+1).
            let nodes = alloc.lines(spec.threads as u64);
            for t in 0..spec.threads {
                engine.add_proc(move |ctx| mcs_loop(ctx, spec, tail, nodes, t as u64));
            }
        }
    }
}

fn workload_iteration(
    ctx: &mut Ctx,
    spec: &RunSpec,
    i: u64,
    acquire: impl FnOnce(&mut Ctx),
    release: impl FnOnce(&mut Ctx),
) {
    let (op, arg) = spec.opgen.op(i);
    let t0 = ctx.now();
    acquire(ctx);
    let _ = exec_cs(ctx, &spec.body, op, arg);
    ctx.record(Metric::Served, 1);
    release(ctx);
    record_op(ctx, t0);
}

fn tas_loop(ctx: &mut Ctx, spec: RunSpec, lock: Addr) {
    let mut rng = client_rng(spec.seed, ctx.core());
    let mut i = 0u64;
    loop {
        workload_iteration(
            ctx,
            &spec,
            i,
            |ctx| {
                let mut backoff = 4u64;
                loop {
                    if ctx.swap(lock, 1) == 0 {
                        return;
                    }
                    // Test loop on the (cached) lock word plus backoff.
                    while ctx.read(lock) != 0 {
                        ctx.work(backoff);
                        backoff = (backoff * 2).min(256);
                    }
                }
            },
            |ctx| ctx.write(lock, 0),
        );
        local_work(ctx, &mut rng, spec.max_local_work, 1);
        i += 1;
    }
}

fn ticket_loop(ctx: &mut Ctx, spec: RunSpec, next: Addr, serving: Addr) {
    let mut rng = client_rng(spec.seed, ctx.core());
    let mut i = 0u64;
    loop {
        workload_iteration(
            ctx,
            &spec,
            i,
            |ctx| {
                let my = ctx.faa(next, 1);
                let mut backoff = 2u64;
                while ctx.read(serving) != my {
                    ctx.work(backoff);
                    backoff = (backoff * 2).min(64);
                }
            },
            |ctx| {
                let s = ctx.read(serving);
                ctx.write(serving, s + 1);
            },
        );
        local_work(ctx, &mut rng, spec.max_local_work, 1);
        i += 1;
    }
}

fn mcs_loop(ctx: &mut Ctx, spec: RunSpec, tail: Addr, nodes: Addr, me: u64) {
    let node = |id: u64| nodes + id * WORDS_PER_LINE;
    const LOCKED: u64 = 0;
    const NEXT: u64 = 1;
    let mut rng = client_rng(spec.seed, ctx.core());
    let mut i = 0u64;
    loop {
        workload_iteration(
            ctx,
            &spec,
            i,
            |ctx| {
                ctx.write(node(me) + NEXT, 0);
                ctx.write(node(me) + LOCKED, 1);
                let pred = ctx.swap(tail, me + 1);
                if pred != 0 {
                    ctx.write(node(pred - 1) + NEXT, me + 1);
                    // Local spin on my own node line.
                    let mut backoff = 2u64;
                    while ctx.read(node(me) + LOCKED) != 0 {
                        ctx.work(backoff);
                        backoff = (backoff * 2).min(64);
                    }
                }
            },
            |ctx| {
                let next = ctx.read(node(me) + NEXT);
                if next == 0 {
                    if ctx.cas(tail, me + 1, 0) {
                        return;
                    }
                    // A successor is linking itself; wait for the link.
                    let mut backoff = 2u64;
                    loop {
                        let n = ctx.read(node(me) + NEXT);
                        if n != 0 {
                            ctx.write(node(n - 1) + LOCKED, 0);
                            return;
                        }
                        ctx.work(backoff);
                        backoff = (backoff * 2).min(32);
                    }
                }
                ctx.write(node(next - 1) + LOCKED, 0);
            },
        );
        local_work(ctx, &mut rng, spec.max_local_work, 1);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::CsBody;
    use crate::{Engine, MachineConfig};

    fn run(kind: LockKind, threads: usize, horizon: u64) -> (crate::SimResult, Addr) {
        let mut alloc = AddrAlloc::new();
        let spec = RunSpec::counter(threads, 1, &mut alloc);
        let addr = match spec.body {
            CsBody::Counter { addr } => addr,
            _ => unreachable!(),
        };
        let mut e = Engine::new(MachineConfig::tile_gx8036());
        install_lock(&mut e, spec, kind, &mut alloc);
        (e.run(horizon), addr)
    }

    #[test]
    fn all_locks_make_progress() {
        for kind in LockKind::ALL {
            let (r, _) = run(kind, 6, 150_000);
            let ops = r.metric_sum(Metric::Ops);
            assert!(
                ops > 300,
                "{} made too little progress: {ops}",
                kind.label()
            );
            // Every completed op executed exactly one CS.
            let served = r.metric_sum(Metric::Served);
            assert!(served >= ops && served <= ops + 6);
        }
    }

    #[test]
    fn locks_lose_to_delegation_under_contention() {
        let t = 12;
        let h = 150_000;
        let mut alloc = AddrAlloc::new();
        let spec = RunSpec::counter(t, 200, &mut alloc);
        let mut e = Engine::new(MachineConfig::tile_gx8036());
        super::super::install_mp_server(&mut e, spec);
        let mp = e.run(h).mops();
        for kind in LockKind::ALL {
            let (r, _) = run(kind, t, h);
            assert!(
                mp > r.mops(),
                "mp-server ({mp:.1}) must beat {} ({:.1}) under contention",
                kind.label(),
                r.mops()
            );
        }
    }

    #[test]
    fn single_thread_lock_is_cheap() {
        let (r, _) = run(LockKind::Mcs, 1, 80_000);
        // Alone, the MCS fast path is one swap + one CAS per CS.
        assert!(r.metric_sum(Metric::Ops) > 300);
    }
}
