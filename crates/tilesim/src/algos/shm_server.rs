//! Simulator model of SHM-SERVER (§3, Figure 1; §5.2).
//!
//! One cache line per client is the bidirectional channel. Under load the
//! server pays two RMRs per critical section — reading the fresh request
//! (the client's write invalidated the server's copy) and writing the
//! response (invalidating the client's spinning copy). Those two stalls are
//! what Figure 4a shows eating more than half of the server's cycles.

use crate::engine::{Ctx, Engine};
use crate::mem::Addr;
use crate::stats::Metric;

use super::{client_rng, exec_cs, local_work, record_op, AddrAlloc, RunSpec};

const IDLE: u64 = 0;
const REQ: u64 = 1;
const DONE: u64 = 2;

/// Word offsets within a client's channel line.
const STATUS: u64 = 0;
const OP: u64 = 1;
const ARG: u64 = 2;
const RET: u64 = 3;

/// Installs a SHM-SERVER run; channel lines are taken from `alloc`.
/// Returns the server's core id.
pub fn install_shm_server(engine: &mut Engine, spec: RunSpec, alloc: &mut AddrAlloc) -> usize {
    let channels: Vec<Addr> = (0..spec.threads).map(|_| alloc.line()).collect();
    let body = spec.body;
    let server_channels = channels.clone();
    let server_core = engine.add_proc(move |ctx| loop {
        for &ch in &server_channels {
            if ctx.read(ch + STATUS) == REQ {
                let op = ctx.read(ch + OP);
                let arg = ctx.read(ch + ARG);
                let ret = exec_cs(ctx, &body, op, arg);
                ctx.write(ch + RET, ret);
                ctx.write(ch + STATUS, DONE);
                ctx.record(Metric::Served, 1);
            }
        }
    });
    for &ch in channels.iter().take(spec.threads) {
        engine.add_proc(move |ctx| client(ctx, spec, ch));
    }
    server_core
}

fn client(ctx: &mut Ctx, spec: RunSpec, ch: Addr) {
    let mut rng = client_rng(spec.seed, ctx.core());
    let mut i = 0u64;
    loop {
        let (op, arg) = spec.opgen.op(i);
        let t0 = ctx.now();
        ctx.write(ch + OP, op);
        ctx.write(ch + ARG, arg);
        ctx.write(ch + STATUS, REQ);
        // Local spin on the channel line until the server writes DONE.
        let mut backoff = 2u64;
        while ctx.read(ch + STATUS) != DONE {
            ctx.work(backoff);
            backoff = (backoff * 2).min(32);
        }
        let _ret = ctx.read(ch + RET);
        ctx.write(ch + STATUS, IDLE);
        record_op(ctx, t0);
        local_work(ctx, &mut rng, spec.max_local_work, 1);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::CsBody;
    use crate::{Engine, MachineConfig};

    #[test]
    fn counter_is_exact_and_server_stalls_heavily() {
        let mut alloc = AddrAlloc::new();
        let spec = RunSpec::counter(8, 200, &mut alloc);
        let counter_addr = match spec.body {
            CsBody::Counter { addr } => addr,
            _ => unreachable!(),
        };
        let _ = counter_addr;
        let mut e = Engine::new(MachineConfig::tile_gx8036());
        let server = install_shm_server(&mut e, spec, &mut alloc);
        let r = e.run(200_000);

        let ops = r.metric_sum(Metric::Ops);
        assert!(ops > 500, "too few ops simulated: {ops}");
        // The paper's Figure 4a: stalls account for >50% of the servicing
        // thread's cycles under load.
        let s = &r.per_core[server];
        let stall_frac = s.stall as f64 / (s.busy + s.stall) as f64;
        assert!(
            stall_frac > 0.35,
            "SHM-SERVER server should stall heavily, got {stall_frac:.2}"
        );
    }

    #[test]
    fn slower_than_mp_server() {
        fn throughput(mp: bool) -> f64 {
            let mut alloc = AddrAlloc::new();
            let spec = RunSpec::counter(10, 200, &mut alloc);
            let mut e = Engine::new(MachineConfig::tile_gx8036());
            if mp {
                super::super::install_mp_server(&mut e, spec);
            } else {
                install_shm_server(&mut e, spec, &mut alloc);
            }
            e.run(200_000).mops()
        }
        let mp = throughput(true);
        let shm = throughput(false);
        assert!(
            mp > 1.5 * shm,
            "expected MP-SERVER to clearly win: mp={mp:.1} shm={shm:.1} Mops/s"
        );
    }
}
