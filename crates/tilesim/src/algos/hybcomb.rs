//! Simulator model of HYBCOMB (§4.2, Algorithm 1).
//!
//! Combiner↔client traffic travels over the hardware message queues;
//! combiner identity lives in shared memory (`last_registered_combiner`
//! CAS, per-node `n_ops` fetch-and-add gate, `combining_done` hand-off,
//! `departed_combiner` node exchange). The fetch-and-add every client
//! executes runs at a memory controller, which is why HYBCOMB's
//! single-thread latency trails CC-SYNCH's (§5.3: three atomics per
//! operation against one).
//!
//! Knobs ([`HybOptions`]) expose the paper's two discussed design choices
//! for ablation: the eager drain loop (lines 25–28) and CAS-vs-SWAP
//! combiner registration (§4.2's discussion).

use crate::engine::{Ctx, Engine};
use crate::mem::{Addr, WORDS_PER_LINE};
use crate::stats::Metric;

use super::{client_rng, exec_cs, local_work, record_op, spin_until_eq, AddrAlloc, RunSpec};

/// Word offsets within a node's *meta* line.
const TID: u64 = 0; // owner's core id
const DONE: u64 = 1; // combining_done flag

/// Variant knobs for the ablation experiments.
#[derive(Debug, Clone, Copy)]
pub struct HybOptions {
    /// Run Algorithm 1 lines 25–28 (serve while the queue is non-empty
    /// before closing registration). Disabling it is `repro abl-nodrain`.
    pub eager_drain: bool,
    /// Replace the CAS at line 17 with an unconditional SWAP
    /// (`repro abl-swap`): every failed registrant becomes a combiner,
    /// some with only their own request.
    pub use_swap: bool,
}

impl Default for HybOptions {
    fn default() -> Self {
        Self {
            eager_drain: true,
            use_swap: false,
        }
    }
}

#[derive(Clone, Copy)]
struct Shared {
    /// First of `threads + 1` n_ops lines (one per node; FAA target).
    n_ops: Addr,
    /// First of `threads + 1` meta lines (thread_id, combining_done).
    meta: Addr,
    /// Line holding `last_registered_combiner` (a node id).
    lrc: Addr,
    /// Line holding `departed_combiner` (a node id).
    departed: Addr,
    max_ops: u64,
    opts: HybOptions,
}

impl Shared {
    fn n_ops_of(&self, node: u64) -> Addr {
        self.n_ops + node * WORDS_PER_LINE
    }

    fn meta_of(&self, node: u64) -> Addr {
        self.meta + node * WORDS_PER_LINE
    }
}

/// Installs a HYBCOMB run with `spec.threads` application procs.
pub fn install_hybcomb(
    engine: &mut Engine,
    spec: RunSpec,
    alloc: &mut AddrAlloc,
    opts: HybOptions,
) {
    let n_nodes = spec.threads as u64 + 1;
    let sh = Shared {
        n_ops: alloc.lines(n_nodes),
        meta: alloc.lines(n_nodes),
        lrc: alloc.line(),
        departed: alloc.line(),
        max_ops: spec.max_ops,
        opts,
    };
    let spare = spec.threads as u64;
    // Line 3–5 of Algorithm 1: the spare node is the initial
    // last-registered/departed combiner, closed and done; every thread
    // node starts closed.
    for node in 0..n_nodes {
        engine.preset_memory(sh.n_ops_of(node), spec.max_ops);
    }
    engine.preset_memory(sh.meta_of(spare) + DONE, 1);
    engine.preset_memory(sh.lrc, spare);
    engine.preset_memory(sh.departed, spare);

    for t in 0..spec.threads {
        let my_node = t as u64;
        engine.add_proc(move |ctx| {
            // The handle registers its endpoint: node → owner core.
            let me = ctx.core() as u64;
            ctx.write(sh.meta_of(my_node) + TID, me);
            thread_loop(ctx, spec, sh, my_node);
        });
    }
}

/// The fixed-combiner variant used by Figure 4a: one thread acts as the
/// combiner for the whole run (the paper's footnote 4, "equivalent to
/// setting MAX_OPS = ∞"). The combiner's node stays registered and open, so
/// clients run the unchanged registration path (read `lrc`, FAA, send) and
/// the combiner runs a pure serve loop.
pub fn install_hybcomb_fixed(
    engine: &mut Engine,
    spec: RunSpec,
    alloc: &mut AddrAlloc,
    _opts: HybOptions,
) {
    let max_ops = u64::MAX / 4;
    let n_nodes = spec.threads as u64 + 1;
    let sh = Shared {
        n_ops: alloc.lines(n_nodes),
        meta: alloc.lines(n_nodes),
        lrc: alloc.line(),
        departed: alloc.line(),
        max_ops,
        opts: HybOptions::default(),
    };
    // Node 0 belongs to the permanent combiner and is open forever.
    engine.preset_memory(sh.n_ops_of(0), 0);
    for node in 1..n_nodes {
        engine.preset_memory(sh.n_ops_of(node), max_ops);
    }
    engine.preset_memory(sh.lrc, 0);
    engine.preset_memory(sh.departed, n_nodes - 1);

    // The combiner proc: serve forever.
    let body = spec.body;
    engine.add_proc(move |ctx| {
        let me = ctx.core() as u64;
        ctx.write(sh.meta_of(0) + TID, me);
        loop {
            let [sender, o, a] = ctx.receive3();
            let r = exec_cs(ctx, &body, o, a);
            ctx.send(sender as usize, &[r]);
            ctx.record(Metric::Served, 1);
        }
    });
    // Clients: the unchanged lines 9–14 of Algorithm 1 (their FAA always
    // succeeds because the combiner never closes its node).
    for _t in 1..spec.threads {
        engine.add_proc(move |ctx| {
            let mut rng = client_rng(spec.seed, ctx.core());
            let me = ctx.core() as u64;
            let mut i = 0u64;
            loop {
                let (op, arg) = spec.opgen.op(i);
                let t0 = ctx.now();
                let lr = ctx.read(sh.lrc);
                let n = ctx.faa(sh.n_ops_of(lr), 1);
                debug_assert!(n < sh.max_ops);
                let dest = ctx.read(sh.meta_of(lr) + TID) as usize;
                ctx.send(dest, &[me, op, arg]);
                ctx.receive1();
                record_op(ctx, t0);
                local_work(ctx, &mut rng, spec.max_local_work, 1);
                i += 1;
            }
        });
    }
}

fn thread_loop(ctx: &mut Ctx, spec: RunSpec, sh: Shared, my_node: u64) {
    let mut rng = client_rng(spec.seed, ctx.core());
    let mut my = my_node;
    let mut i = 0u64;
    loop {
        let (op, arg) = spec.opgen.op(i);
        let t0 = ctx.now();
        apply(ctx, &spec, &sh, &mut my, op, arg);
        record_op(ctx, t0);
        local_work(ctx, &mut rng, spec.max_local_work, 1);
        i += 1;
    }
}

fn apply(ctx: &mut Ctx, spec: &RunSpec, sh: &Shared, my: &mut u64, op: u64, arg: u64) -> u64 {
    let me = ctx.core() as u64;
    loop {
        // Line 9: read the last registered combiner.
        let lr = ctx.read(sh.lrc);
        // Line 11: FAA on its n_ops (memory-controller atomic).
        if ctx.faa(sh.n_ops_of(lr), 1) < sh.max_ops {
            // Lines 13–14: registered; send and await the response.
            let dest = ctx.read(sh.meta_of(lr) + TID) as usize;
            ctx.send(dest, &[me, op, arg]);
            return ctx.receive1();
        }
        // Line 17: try to become a combiner.
        ctx.record(Metric::Cas, 1);
        let registered = if sh.opts.use_swap {
            // Ablation: SWAP always succeeds; `lr` may be stale but the
            // displaced node is the true predecessor.
            let prev = ctx.swap(sh.lrc, *my);
            Some(prev)
        } else if ctx.cas(sh.lrc, lr, *my) {
            Some(lr)
        } else {
            None
        };
        if let Some(pred) = registered {
            // Line 18: open my node (not atomic with the registration —
            // the benign race of §4.2).
            ctx.write(sh.n_ops_of(*my), 0);
            // Lines 19–20: wait for the predecessor to finish combining.
            spin_until_eq(ctx, sh.meta_of(pred) + DONE, 1);
            return combine(ctx, spec, sh, my, op, arg);
        }
    }
}

fn combine(ctx: &mut Ctx, spec: &RunSpec, sh: &Shared, my: &mut u64, op: u64, arg: u64) -> u64 {
    let me = ctx.core() as u64;
    // Line 23: my own operation first.
    let retval = exec_cs(ctx, &spec.body, op, arg);
    ctx.record(Metric::Served, 1);
    let mut completed = 0u64;

    // Lines 25–28: eagerly drain the message queue. (`has_pending_traffic`
    // rather than `!is_queue_empty`: see its documentation — it compensates
    // for the simulator's fixed wire latency, which would otherwise close
    // rounds that real hardware keeps open.)
    if sh.opts.eager_drain {
        while ctx.has_pending_traffic() {
            let [sender, o, a] = ctx.receive3();
            let r = exec_cs(ctx, &spec.body, o, a);
            ctx.send(sender as usize, &[r]);
            ctx.record(Metric::Served, 1);
            completed += 1;
        }
    }

    // Lines 30–32: close registration; the SWAP's old value is the number
    // of registrations this round.
    let mut total = ctx.swap(sh.n_ops_of(*my), sh.max_ops);
    if total > sh.max_ops {
        total = sh.max_ops;
    }

    // Lines 34–37: serve the registered remainder (messages may still be
    // in flight).
    while completed < total {
        let [sender, o, a] = ctx.receive3();
        let r = exec_cs(ctx, &spec.body, o, a);
        ctx.send(sender as usize, &[r]);
        ctx.record(Metric::Served, 1);
        completed += 1;
    }

    ctx.record(Metric::Rounds, 1);
    ctx.record(Metric::Combined, completed + 1);
    if completed == 0 {
        ctx.record(Metric::Orphans, 1);
    }

    // Lines 39–42: exchange nodes with the departed-combiner spare and
    // release the successor.
    let new_my = ctx.swap(sh.departed, *my);
    ctx.write(sh.meta_of(new_my) + DONE, 0);
    ctx.write(sh.meta_of(new_my) + TID, me);
    ctx.write(sh.meta_of(*my) + DONE, 1);
    *my = new_my;
    retval
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, MachineConfig};

    fn run(threads: usize, max_ops: u64, horizon: u64, opts: HybOptions) -> crate::SimResult {
        let mut alloc = AddrAlloc::new();
        let spec = RunSpec::counter(threads, max_ops, &mut alloc);
        let mut e = Engine::new(MachineConfig::tile_gx8036());
        install_hybcomb(&mut e, spec, &mut alloc, opts);
        e.run(horizon)
    }

    #[test]
    fn ops_complete_and_balance() {
        let r = run(8, 64, 200_000, HybOptions::default());
        let ops = r.metric_sum(Metric::Ops);
        assert!(ops > 1_000, "too few ops: {ops}");
        let served = r.metric_sum(Metric::Served);
        assert!(served >= ops, "served {served} < completed ops {ops}");
        assert!(served <= ops + 2 * 8);
    }

    #[test]
    fn beats_cc_synch_on_throughput() {
        let hyb = run(10, 200, 200_000, HybOptions::default()).mops();
        let mut alloc = AddrAlloc::new();
        let spec = RunSpec::counter(10, 200, &mut alloc);
        let mut e = Engine::new(MachineConfig::tile_gx8036());
        super::super::install_cc_synch(&mut e, spec, &mut alloc);
        let cc = e.run(200_000).mops();
        assert!(
            hyb > cc,
            "HYBCOMB should outperform CC-SYNCH under load: {hyb:.1} vs {cc:.1}"
        );
    }

    #[test]
    fn cas_per_op_is_low_under_load() {
        let r = run(12, 200, 300_000, HybOptions::default());
        let cas = r.cas_per_op();
        assert!(
            cas < 0.7,
            "paper: at most ~0.7 CAS per op in multithreaded runs, got {cas:.2}"
        );
    }

    #[test]
    fn swap_variant_correct() {
        let r = run(
            6,
            50,
            100_000,
            HybOptions {
                use_swap: true,
                ..HybOptions::default()
            },
        );
        assert!(r.metric_sum(Metric::Ops) > 500);
    }

    #[test]
    fn nodrain_variant_correct() {
        let r = run(
            6,
            50,
            100_000,
            HybOptions {
                eager_drain: false,
                ..HybOptions::default()
            },
        );
        assert!(r.metric_sum(Metric::Ops) > 500);
    }

    #[test]
    fn single_thread_all_orphan_rounds() {
        let r = run(1, 200, 50_000, HybOptions::default());
        assert_eq!(r.metric_sum(Metric::Rounds), r.metric_sum(Metric::Orphans));
        assert!(r.metric_sum(Metric::Ops) > 50);
    }
}
