//! Simulator model of CC-SYNCH (Fatourou & Kallimanis 2012), the paper's
//! shared-memory combining baseline.
//!
//! Each node occupies one cache line, so the combiner pays one RMR to fetch
//! a request (the owner's writes made the owner's copy Modified) and one
//! more to publish the response (invalidating the owner's spinning copy) —
//! the same two-RMRs-per-CS pattern as the RCL-style server (§3).

use crate::engine::{Ctx, Engine};
use crate::mem::{Addr, WORDS_PER_LINE};
use crate::stats::Metric;

use super::{client_rng, exec_cs, local_work, record_op, spin_until_eq, AddrAlloc, RunSpec};

/// Word offsets within a node's line.
const WAIT: u64 = 0;
const COMPLETED: u64 = 1;
const OP: u64 = 2;
const ARG: u64 = 3;
const RET: u64 = 4;
const NEXT: u64 = 5; // 0 = nil, else node_id + 1

struct Shared {
    nodes: Addr,
    tail: Addr,
}

impl Shared {
    fn node(&self, id: u64) -> Addr {
        self.nodes + id * WORDS_PER_LINE
    }
}

/// Installs a CC-SYNCH run with `spec.threads` application procs.
pub fn install_cc_synch(engine: &mut Engine, spec: RunSpec, alloc: &mut AddrAlloc) {
    // Node 0 is the initial tail dummy (all-zero: wait=0 → the first thread
    // to swap it out combines immediately); thread t owns node t+1.
    let nodes = alloc.lines(spec.threads as u64 + 1);
    let tail = alloc.line();
    for t in 0..spec.threads {
        let sh = Shared { nodes, tail };
        let my_node = t as u64 + 1;
        engine.add_proc(move |ctx| thread_loop(ctx, spec, sh, my_node));
    }
}

/// The fixed-combiner variant used by Figure 4a: equivalent to
/// `MAX_OPS = ∞` (footnote 4 of the paper).
pub fn install_cc_synch_fixed(engine: &mut Engine, spec: RunSpec, alloc: &mut AddrAlloc) {
    install_cc_synch(
        engine,
        RunSpec {
            max_ops: u64::MAX / 2,
            ..spec
        },
        alloc,
    );
}

fn thread_loop(ctx: &mut Ctx, spec: RunSpec, sh: Shared, mut my_node: u64) {
    let mut rng = client_rng(spec.seed, ctx.core());
    let mut i = 0u64;
    loop {
        let (op, arg) = spec.opgen.op(i);
        let t0 = ctx.now();
        apply(ctx, &spec, &sh, &mut my_node, op, arg);
        record_op(ctx, t0);
        local_work(ctx, &mut rng, spec.max_local_work, 1);
        i += 1;
    }
}

fn apply(ctx: &mut Ctx, spec: &RunSpec, sh: &Shared, my_node: &mut u64, op: u64, arg: u64) -> u64 {
    // Prepare my node as the new tail dummy.
    let next_node = *my_node;
    let next_addr = sh.node(next_node);
    ctx.write(next_addr + NEXT, 0);
    ctx.write(next_addr + WAIT, 1);
    ctx.write(next_addr + COMPLETED, 0);

    // Enqueue with a SWAP on the tail (executed at a memory controller).
    let cur = ctx.swap(sh.tail, next_node);
    let cur_addr = sh.node(cur);
    ctx.write(cur_addr + OP, op);
    ctx.write(cur_addr + ARG, arg);
    ctx.write(cur_addr + NEXT, next_node + 1);
    *my_node = cur;

    // Local spin until served or promoted.
    spin_until_eq(ctx, cur_addr + WAIT, 0);
    if ctx.read(cur_addr + COMPLETED) == 1 {
        return ctx.read(cur_addr + RET);
    }

    // Combiner phase.
    let mut served = 0u64;
    let mut tmp = cur;
    loop {
        let tmp_addr = sh.node(tmp);
        let next = ctx.read(tmp_addr + NEXT);
        if next == 0 || served >= spec.max_ops {
            break;
        }
        let o = ctx.read(tmp_addr + OP);
        let a = ctx.read(tmp_addr + ARG);
        let r = exec_cs(ctx, &spec.body, o, a);
        ctx.write(tmp_addr + RET, r);
        ctx.write(tmp_addr + COMPLETED, 1);
        ctx.write(tmp_addr + WAIT, 0);
        ctx.record(Metric::Served, 1);
        served += 1;
        tmp = next - 1;
    }
    // Hand the combiner role to the first unserved node (or re-arm the
    // tail dummy).
    ctx.write(sh.node(tmp) + WAIT, 0);
    ctx.record(Metric::Rounds, 1);
    ctx.record(Metric::Combined, served);
    if served <= 1 {
        ctx.record(Metric::Orphans, 1);
    }
    ctx.read(cur_addr + RET)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::CsBody;
    use crate::{Engine, MachineConfig};

    fn run(threads: usize, max_ops: u64, horizon: u64) -> (crate::SimResult, Addr) {
        let mut alloc = AddrAlloc::new();
        let spec = RunSpec::counter(threads, max_ops, &mut alloc);
        let addr = match spec.body {
            CsBody::Counter { addr } => addr,
            _ => unreachable!(),
        };
        let mut e = Engine::new(MachineConfig::tile_gx8036());
        install_cc_synch(&mut e, spec, &mut alloc);
        (e.run(horizon), addr)
    }

    #[test]
    fn counter_ops_all_executed() {
        let (r, _) = run(8, 64, 200_000);
        let ops = r.metric_sum(Metric::Ops);
        assert!(ops > 1_000, "too few ops: {ops}");
        // Served counts combiner-executed CSes; every *completed* client op
        // was executed (a few more may have executed but not yet returned
        // at teardown).
        let served = r.metric_sum(Metric::Served);
        assert!(served >= ops, "served {served} < ops {ops}");
        assert!(served <= ops + 2 * 8, "served {served} vs ops {ops}");
    }

    #[test]
    fn combining_rate_grows_with_threads() {
        let (r2, _) = run(2, 200, 150_000);
        let (r12, _) = run(12, 200, 150_000);
        assert!(
            r12.combining_rate() > r2.combining_rate(),
            "combining rate should grow with concurrency: {} vs {}",
            r12.combining_rate(),
            r2.combining_rate()
        );
    }

    #[test]
    fn single_thread_works() {
        let (r, _) = run(1, 200, 50_000);
        assert!(r.metric_sum(Metric::Ops) > 100);
        // Alone, every round serves exactly one request.
        assert!((r.combining_rate() - 1.0).abs() < 1e-9);
    }
}
