//! Simulator implementations of the four synchronization constructions the
//! paper evaluates, plus the shared building blocks (address allocation,
//! critical-section bodies, workload op generators, spin helpers).
//!
//! Each construction installs one proc per participating thread into an
//! [`Engine`](crate::Engine); application procs run the paper's §5.2
//! methodology loop — execute one operation on the shared object, then a
//! random number (at most 50) of empty loop iterations of local work — until
//! the simulation horizon tears them down.
//!
//! Metrics recorded (see [`Metric`]): every application proc
//! counts `Ops`/`LatSum`/`LatCount`; every servicing proc counts `Served`;
//! combiners additionally count `Rounds`/`Combined`/`Orphans`, and HYBCOMB
//! clients count `Cas`.

mod cc_synch;
mod hybcomb;
mod locks;
mod mp_server;
mod shm_server;

pub use cc_synch::{install_cc_synch, install_cc_synch_fixed};
pub use hybcomb::{install_hybcomb, install_hybcomb_fixed, HybOptions};
pub use locks::{install_lock, LockKind};
pub use mp_server::install_mp_server;
pub(crate) use mp_server::serve as serve_body;
pub use shm_server::install_shm_server;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::Ctx;
use crate::mem::{Addr, WORDS_PER_LINE};
use crate::stats::Metric;

/// Identifies one of the four constructions in workload drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// MP-SERVER (§4.1): dedicated server, hardware messages.
    MpServer,
    /// HYBCOMB (§4.2): hybrid combining.
    HybComb,
    /// SHM-SERVER (§5.2): dedicated server, cache-line channels.
    ShmServer,
    /// CC-SYNCH: shared-memory combining.
    CcSynch,
}

impl Approach {
    /// All four, in the paper's plotting order.
    pub const ALL: [Approach; 4] = [
        Approach::MpServer,
        Approach::HybComb,
        Approach::ShmServer,
        Approach::CcSynch,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Approach::MpServer => "mp-server",
            Approach::HybComb => "HybComb",
            Approach::ShmServer => "shm-server",
            Approach::CcSynch => "CC-Synch",
        }
    }
}

/// Bump allocator of cache lines in simulated memory, so that distinct
/// variables never falsely share a line unless a model deliberately co-lays
/// them.
#[derive(Debug, Default)]
pub struct AddrAlloc {
    next_line: u64,
}

impl AddrAlloc {
    /// Fresh allocator starting at line 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates one cache line and returns the address of its first word.
    pub fn line(&mut self) -> Addr {
        let a = self.next_line * WORDS_PER_LINE;
        self.next_line += 1;
        a
    }

    /// Allocates `n` consecutive lines, returning the first word address of
    /// the first line (line `i` starts at `base + i*WORDS_PER_LINE`).
    pub fn lines(&mut self, n: u64) -> Addr {
        let a = self.next_line * WORDS_PER_LINE;
        self.next_line += n;
        a
    }
}

/// The critical-section *body* — the shared-object code executed in mutual
/// exclusion by whichever thread is servicing (server, combiner, or lock
/// holder). Bodies issue real simulated memory accesses, so their cache
/// lines migrate when the servicing thread changes, exactly the locality
/// effect delegation and combining exploit.
#[derive(Debug, Clone, Copy)]
pub enum CsBody {
    /// §5.3 concurrent counter: one read + one write of a single line.
    Counter {
        /// The counter's line.
        addr: Addr,
    },
    /// Figure 4c: increment array elements in a loop, `arg` iterations.
    Array {
        /// First line of the array (one element per line).
        base: Addr,
        /// Number of elements.
        len: u64,
    },
    /// Sequential FIFO queue (the one-lock MS-queue configuration):
    /// op 0 = enqueue(arg), op 1 = dequeue.
    SeqQueue {
        /// Line holding the head index.
        head: Addr,
        /// Line holding the tail index.
        tail: Addr,
        /// First of `len` node lines, used as a ring.
        nodes: Addr,
        /// Node ring capacity.
        len: u64,
    },
    /// Sequential LIFO stack: op 0 = push(arg), op 1 = pop.
    SeqStack {
        /// Line holding the top-of-stack index.
        top: Addr,
        /// First of `len` node lines.
        nodes: Addr,
        /// Node ring capacity.
        len: u64,
    },
    /// The enqueue critical section of the two-lock MS queue.
    TwoLockEnq {
        /// Line holding the tail node id.
        tail: Addr,
        /// Line holding the node allocation cursor.
        alloc: Addr,
        /// First node line (word 0 = value, word 1 = next+1).
        nodes: Addr,
        /// Node ring capacity.
        len: u64,
    },
    /// The dequeue critical section of the two-lock MS queue.
    TwoLockDeq {
        /// Line holding the head (dummy) node id.
        head: Addr,
        /// First node line (shared with the enqueue side).
        nodes: Addr,
        /// Node ring capacity.
        len: u64,
    },
}

/// Sentinel for "empty" results from queue/stack bodies.
pub const CS_EMPTY: u64 = u64::MAX;

/// Sentinel for "full" results from the bounded queue body.
pub const CS_FULL: u64 = u64::MAX - 1;

fn node_line(nodes: Addr, id: u64, len: u64) -> Addr {
    nodes + (id % len) * WORDS_PER_LINE
}

/// Executes the body under the caller's mutual exclusion, issuing simulated
/// memory accesses, and returns the operation's result word.
pub fn exec_cs(ctx: &mut Ctx, body: &CsBody, op: u64, arg: u64) -> u64 {
    match *body {
        CsBody::Counter { addr } => {
            let v = ctx.read(addr);
            ctx.write(addr, v + 1);
            v
        }
        CsBody::Array { base, len } => {
            for i in 0..arg {
                let a = base + (i % len) * WORDS_PER_LINE;
                let v = ctx.read(a);
                ctx.write(a, v + 1);
            }
            arg
        }
        CsBody::SeqQueue {
            head,
            tail,
            nodes,
            len,
        } => {
            if op == 0 {
                // enqueue(arg); the node ring bounds capacity (the paper's
                // queues are unbounded, but its balanced load never grows
                // them — the bound only matters for the imbalance
                // extension, where a full queue rejects the enqueue).
                let t = ctx.read(tail);
                let h = ctx.read(head);
                if t - h >= len {
                    return CS_FULL;
                }
                ctx.write(node_line(nodes, t, len), arg);
                ctx.write(tail, t + 1);
                0
            } else {
                // dequeue
                let h = ctx.read(head);
                let t = ctx.read(tail);
                if h == t {
                    return CS_EMPTY;
                }
                let v = ctx.read(node_line(nodes, h, len));
                ctx.write(head, h + 1);
                v
            }
        }
        CsBody::SeqStack { top, nodes, len } => {
            if op == 0 {
                let t = ctx.read(top);
                ctx.write(node_line(nodes, t, len), arg);
                ctx.write(top, t + 1);
                0
            } else {
                let t = ctx.read(top);
                if t == 0 {
                    return CS_EMPTY;
                }
                let v = ctx.read(node_line(nodes, t - 1, len));
                ctx.write(top, t - 1);
                v
            }
        }
        CsBody::TwoLockEnq {
            tail,
            alloc,
            nodes,
            len,
        } => {
            // Allocate a node from the ring, initialize it, link, advance.
            let n = ctx.read(alloc);
            ctx.write(alloc, n + 1);
            let new = node_line(nodes, n, len);
            ctx.write(new, arg); // value
            ctx.write(new + 1, 0); // next = nil
            let t = ctx.read(tail);
            ctx.write(node_line(nodes, t, len) + 1, n % len + 1); // link (Release in the native code)
            ctx.write(tail, n % len);
            0
        }
        CsBody::TwoLockDeq { head, nodes, len } => {
            let h = ctx.read(head);
            let next = ctx.read(node_line(nodes, h, len) + 1); // Acquire in the native code
            if next == 0 {
                return CS_EMPTY;
            }
            let v = ctx.read(node_line(nodes, next - 1, len));
            ctx.write(head, next - 1);
            v
        }
    }
}

/// What sequence of `(op, arg)` an application thread submits.
#[derive(Debug, Clone, Copy)]
pub enum OpGen {
    /// The same operation every time (counter, array CS).
    Fixed {
        /// Opcode submitted.
        op: u64,
        /// Argument submitted.
        arg: u64,
    },
    /// Alternate between two operations (balanced enqueue/dequeue,
    /// push/pop — the §5.4 "balanced load").
    Alternate {
        /// The pair of operations cycled through.
        ops: [(u64, u64); 2],
    },
    /// Cycle through up to four operations (asymmetric mixes, e.g. three
    /// enqueues per dequeue in the imbalance extension).
    Cycle {
        /// The operations cycled through (`ops[..len]`).
        ops: [(u64, u64); 4],
        /// How many of the four slots are used.
        len: usize,
    },
}

impl OpGen {
    /// The `i`-th operation this generator produces.
    #[inline]
    pub fn op(&self, i: u64) -> (u64, u64) {
        match *self {
            OpGen::Fixed { op, arg } => (op, arg),
            OpGen::Alternate { ops } => ops[(i % 2) as usize],
            OpGen::Cycle { ops, len } => ops[(i % len as u64) as usize],
        }
    }
}

/// Everything needed to install one construction run into an engine.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// Number of *application* threads (servers are extra, as in the
    /// paper's client counts).
    pub threads: usize,
    /// Combining bound (`MAX_OPS`); ignored by the server approaches.
    pub max_ops: u64,
    /// The critical-section body.
    pub body: CsBody,
    /// Operation sequence of each application thread.
    pub opgen: OpGen,
    /// RNG seed for the local-work jitter.
    pub seed: u64,
    /// Maximum empty-loop iterations of local work between operations
    /// (paper: 50).
    pub max_local_work: u64,
}

impl RunSpec {
    /// A counter workload spec with the paper's defaults.
    pub fn counter(threads: usize, max_ops: u64, alloc: &mut AddrAlloc) -> Self {
        Self {
            threads,
            max_ops,
            body: CsBody::Counter { addr: alloc.line() },
            opgen: OpGen::Fixed { op: 0, arg: 0 },
            seed: 0xC0FFEE,
            max_local_work: 50,
        }
    }
}

/// Local-work pause between operations (§5.2: "a random number of empty
/// loop iterations (at most 50)"), to prevent unrealistic long runs.
pub(crate) fn local_work(ctx: &mut Ctx, rng: &mut StdRng, max_iters: u64, iter_cycles: u64) {
    if max_iters > 0 {
        let iters = rng.gen_range(0..=max_iters);
        ctx.work(iters * iter_cycles);
    }
}

pub(crate) fn client_rng(seed: u64, core: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (core as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Spins until `read(addr) == expected`, with growing local backoff so the
/// simulation does not drown in spin events. Real local spinning costs the
/// interconnect nothing; the backoff (capped at 32 cycles) only adds a small
/// wake-up delay, the same price a PAUSE-loop pays on silicon.
pub(crate) fn spin_until_eq(ctx: &mut Ctx, addr: Addr, expected: u64) -> u64 {
    let mut backoff = 2u64;
    loop {
        let v = ctx.read(addr);
        if v == expected {
            return v;
        }
        ctx.work(backoff);
        backoff = (backoff * 2).min(32);
    }
}

/// Records one completed application operation with its latency (average
/// accumulators plus the logarithmic histogram used for tail-latency
/// analysis, `repro ext-tail`).
pub(crate) fn record_op(ctx: &mut Ctx, t0: u64) {
    let t1 = ctx.now();
    let lat = t1 - t0;
    ctx.record(Metric::Ops, 1);
    ctx.record(Metric::LatSum, lat);
    ctx.record(Metric::LatCount, 1);
    ctx.record(Metric::LAT_HISTOGRAM[crate::stats::lat_bucket(lat)], 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, MachineConfig};

    #[test]
    fn addr_alloc_separates_lines() {
        let mut a = AddrAlloc::new();
        let x = a.line();
        let y = a.line();
        assert_ne!(crate::line_of(x), crate::line_of(y));
        let z = a.lines(3);
        let w = a.line();
        assert_eq!(crate::line_of(w) - crate::line_of(z), 3);
    }

    #[test]
    fn opgen_sequences() {
        let f = OpGen::Fixed { op: 1, arg: 9 };
        assert_eq!(f.op(0), (1, 9));
        assert_eq!(f.op(5), (1, 9));
        let alt = OpGen::Alternate {
            ops: [(0, 5), (1, 0)],
        };
        assert_eq!(alt.op(0), (0, 5));
        assert_eq!(alt.op(1), (1, 0));
        assert_eq!(alt.op(2), (0, 5));
    }

    #[test]
    fn counter_body_increments() {
        let mut alloc = AddrAlloc::new();
        let addr = alloc.line();
        let body = CsBody::Counter { addr };
        let mut e = Engine::new(MachineConfig::tile_gx8036());
        e.add_proc(move |ctx| {
            assert_eq!(exec_cs(ctx, &body, 0, 0), 0);
            assert_eq!(exec_cs(ctx, &body, 0, 0), 1);
            assert_eq!(ctx.read(addr), 2);
        });
        e.run(100_000);
    }

    #[test]
    fn seq_queue_body_fifo() {
        let mut alloc = AddrAlloc::new();
        let body = CsBody::SeqQueue {
            head: alloc.line(),
            tail: alloc.line(),
            nodes: alloc.lines(8),
            len: 8,
        };
        let mut e = Engine::new(MachineConfig::tile_gx8036());
        e.add_proc(move |ctx| {
            assert_eq!(exec_cs(ctx, &body, 1, 0), CS_EMPTY);
            exec_cs(ctx, &body, 0, 11);
            exec_cs(ctx, &body, 0, 22);
            assert_eq!(exec_cs(ctx, &body, 1, 0), 11);
            assert_eq!(exec_cs(ctx, &body, 1, 0), 22);
            assert_eq!(exec_cs(ctx, &body, 1, 0), CS_EMPTY);
        });
        e.run(100_000);
    }

    #[test]
    fn seq_stack_body_lifo() {
        let mut alloc = AddrAlloc::new();
        let body = CsBody::SeqStack {
            top: alloc.line(),
            nodes: alloc.lines(8),
            len: 8,
        };
        let mut e = Engine::new(MachineConfig::tile_gx8036());
        e.add_proc(move |ctx| {
            assert_eq!(exec_cs(ctx, &body, 1, 0), CS_EMPTY);
            exec_cs(ctx, &body, 0, 11);
            exec_cs(ctx, &body, 0, 22);
            assert_eq!(exec_cs(ctx, &body, 1, 0), 22);
            assert_eq!(exec_cs(ctx, &body, 1, 0), 11);
        });
        e.run(100_000);
    }

    #[test]
    fn two_lock_bodies_fifo() {
        let mut alloc = AddrAlloc::new();
        let head_node = 0u64; // dummy starts at ring slot 0
        let nodes = alloc.lines(16);
        let tail = alloc.line();
        let alloc_ctr = alloc.line();
        let head = alloc.line();
        let enq = CsBody::TwoLockEnq {
            tail,
            alloc: alloc_ctr,
            nodes,
            len: 16,
        };
        let deq = CsBody::TwoLockDeq {
            head,
            nodes,
            len: 16,
        };
        let mut e = Engine::new(MachineConfig::tile_gx8036());
        e.add_proc(move |ctx| {
            // Initialize: dummy node 0, alloc cursor starts at 1.
            ctx.write(tail, head_node);
            ctx.write(head, head_node);
            ctx.write(alloc_ctr, 1);
            assert_eq!(exec_cs(ctx, &deq, 1, 0), CS_EMPTY);
            exec_cs(ctx, &enq, 0, 7);
            exec_cs(ctx, &enq, 0, 8);
            assert_eq!(exec_cs(ctx, &deq, 1, 0), 7);
            assert_eq!(exec_cs(ctx, &deq, 1, 0), 8);
            assert_eq!(exec_cs(ctx, &deq, 1, 0), CS_EMPTY);
        });
        e.run(100_000);
    }

    #[test]
    fn array_body_touches_lines() {
        let mut alloc = AddrAlloc::new();
        let base = alloc.lines(4);
        let body = CsBody::Array { base, len: 4 };
        let mut e = Engine::new(MachineConfig::tile_gx8036());
        e.add_proc(move |ctx| {
            assert_eq!(exec_cs(ctx, &body, 0, 6), 6);
            assert_eq!(ctx.read(base), 2);
            assert_eq!(ctx.read(base + WORDS_PER_LINE), 2);
            assert_eq!(ctx.read(base + 2 * WORDS_PER_LINE), 1);
        });
        e.run(100_000);
    }
}
