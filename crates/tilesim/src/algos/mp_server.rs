//! Simulator model of MP-SERVER (§4.1, Figure 2).
//!
//! The server proc loops `receive(3) → execute CS → send(response)`. The
//! receive reads the core-local hardware queue — no coherence involvement —
//! and the send is asynchronous, so under load the server's critical path
//! contains no stalls at all: the property Figure 4a measures.

use crate::engine::{Ctx, Engine};
use crate::stats::Metric;

use super::{client_rng, exec_cs, local_work, record_op, CsBody, RunSpec};

/// Installs an MP-SERVER run: the server on the engine's next core, then
/// `spec.threads` client procs. Returns the server's core id.
pub fn install_mp_server(engine: &mut Engine, spec: RunSpec) -> usize {
    let body = spec.body;
    let server_core = engine.add_proc(move |ctx| serve(ctx, body));
    for _ in 0..spec.threads {
        engine.add_proc(move |ctx| client(ctx, spec, server_core));
    }
    server_core
}

/// The server loop (also reused by the two-lock queue's second server).
pub(crate) fn serve(ctx: &mut Ctx, body: CsBody) {
    loop {
        let [sender, op, arg] = ctx.receive3();
        let ret = exec_cs(ctx, &body, op, arg);
        ctx.send(sender as usize, &[ret]);
        ctx.record(Metric::Served, 1);
    }
}

fn client(ctx: &mut Ctx, spec: RunSpec, server: usize) {
    let mut rng = client_rng(spec.seed, ctx.core());
    let me = ctx.core() as u64;
    let mut i = 0u64;
    loop {
        let (op, arg) = spec.opgen.op(i);
        let t0 = ctx.now();
        ctx.send(server, &[me, op, arg]);
        ctx.receive1();
        record_op(ctx, t0);
        local_work(ctx, &mut rng, spec.max_local_work, 1);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::AddrAlloc;
    use crate::{Engine, MachineConfig};

    #[test]
    fn counter_is_exact_and_server_barely_stalls() {
        let cfg = MachineConfig::tile_gx8036();
        let mut alloc = AddrAlloc::new();
        let spec = RunSpec::counter(8, 200, &mut alloc);
        let counter_addr = match spec.body {
            CsBody::Counter { addr } => addr,
            _ => unreachable!(),
        };
        let mut e = Engine::new(cfg);
        let server = install_mp_server(&mut e, spec);
        let _ = counter_addr;
        let r = e.run(200_000);

        let ops = r.metric_sum(Metric::Ops);
        let served = r.metric(server, Metric::Served);
        assert!(ops > 1_000, "too few ops simulated: {ops}");
        // Every client op was served (clients may have one op in flight at
        // teardown).
        assert!(served >= ops && served <= ops + 9);
        // The headline property: the servicing core's stall share is tiny.
        let s = &r.per_core[server];
        let stall_frac = s.stall as f64 / (s.busy + s.stall) as f64;
        assert!(
            stall_frac < 0.15,
            "MP-SERVER server should barely stall, got {stall_frac:.2}"
        );
    }

    #[test]
    fn latency_recorded() {
        let mut alloc = AddrAlloc::new();
        let spec = RunSpec::counter(4, 200, &mut alloc);
        let mut e = Engine::new(MachineConfig::tile_gx8036());
        install_mp_server(&mut e, spec);
        let r = e.run(100_000);
        assert!(r.avg_latency() > 0.0);
        assert_eq!(r.metric_sum(Metric::LatCount), r.metric_sum(Metric::Ops));
    }

    #[test]
    fn deterministic() {
        fn once() -> (u64, f64) {
            let mut alloc = AddrAlloc::new();
            let spec = RunSpec::counter(6, 200, &mut alloc);
            let mut e = Engine::new(MachineConfig::tile_gx8036());
            install_mp_server(&mut e, spec);
            let r = e.run(50_000);
            (r.metric_sum(Metric::Ops), r.avg_latency())
        }
        assert_eq!(once(), once());
    }
}
