//! Simulator performance models of the paper's nonblocking comparators:
//! LCRQ (Figure 5a) and the Treiber stack (Figure 5b).
//!
//! These are *performance* models: they issue the same mix of memory and
//! atomic operations as the real algorithms (fetch-and-add on head/tail,
//! CAS on ring cells or the stack top, retries on contention) so that the
//! TILE-Gx effects the paper describes — atomics serialized at two memory
//! controllers, CAS retry storms — shape the curves. The functionally
//! complete implementations live in the native `mpsync-objects` crate.

use rand::rngs::StdRng;
use rand::Rng;

use crate::algos::{client_rng, record_op, AddrAlloc};
use crate::engine::{Ctx, Engine};
use crate::mem::{Addr, WORDS_PER_LINE};
use crate::stats::Metric;

/// Shared state of the LCRQ model.
#[derive(Clone, Copy)]
pub struct LcrqModel {
    head: Addr,
    tail: Addr,
    cells: Addr,
    ring: u64,
}

impl LcrqModel {
    /// Allocates the model's lines: head and tail counters plus a ring of
    /// `ring` cells (one line each).
    pub fn new(alloc: &mut AddrAlloc, ring: u64) -> Self {
        Self {
            head: alloc.line(),
            tail: alloc.line(),
            cells: alloc.lines(ring),
            ring,
        }
    }

    fn cell(&self, pos: u64) -> Addr {
        self.cells + (pos % self.ring) * WORDS_PER_LINE
    }

    /// One enqueue: FAA on the tail, then CAS the claimed cell from its
    /// round tag to the deposited state (retrying the FAA if the cell was
    /// already skipped by a dequeuer, as in the real algorithm).
    pub fn enqueue(&self, ctx: &mut Ctx) {
        loop {
            let t = ctx.faa(self.tail, 1);
            let cell = self.cell(t);
            let cur = ctx.read(cell);
            ctx.record(Metric::Cas, 1);
            // Cell is free for round `t` if it still carries the value the
            // round before it would have (2 per slot per lap: deposit +
            // consume).
            if cur == 2 * (t / self.ring) && ctx.cas(cell, cur, cur + 1) {
                return;
            }
            ctx.record(Metric::CasFail, 1);
        }
    }

    /// One dequeue: FAA on the head, then CAS the cell from deposited to
    /// consumed; returns `false` on an empty-queue observation.
    pub fn dequeue(&self, ctx: &mut Ctx) -> bool {
        loop {
            let h = ctx.faa(self.head, 1);
            let cell = self.cell(h);
            let cur = ctx.read(cell);
            let deposited = 2 * (h / self.ring) + 1;
            if cur == deposited {
                ctx.record(Metric::Cas, 1);
                if ctx.cas(cell, cur, cur + 1) {
                    return true;
                }
                ctx.record(Metric::CasFail, 1);
            }
            // Not yet deposited (or we lost the race): check emptiness the
            // way the real algorithm does, by comparing against the tail.
            let t = ctx.read(self.tail);
            if t <= h + 1 {
                // Overshot: fix up the tail as FIXSTATE does.
                ctx.record(Metric::Cas, 1);
                let _ = ctx.cas(self.tail, t, h + 1);
                return false;
            }
        }
    }
}

/// Installs LCRQ client procs running the §5.4 balanced workload.
pub fn install_lcrq(
    engine: &mut Engine,
    threads: usize,
    ring: u64,
    seed: u64,
    max_local_work: u64,
    alloc: &mut AddrAlloc,
) {
    let model = LcrqModel::new(alloc, ring);
    for _ in 0..threads {
        engine.add_proc(move |ctx| {
            let mut rng = client_rng(seed, ctx.core());
            loop {
                balanced_queue_step(ctx, &model, &mut rng, max_local_work);
            }
        });
    }
}

fn balanced_queue_step(ctx: &mut Ctx, model: &LcrqModel, rng: &mut StdRng, max_work: u64) {
    let t0 = ctx.now();
    model.enqueue(ctx);
    record_op(ctx, t0);
    ctx.work(rng.gen_range(0..=max_work));
    let t0 = ctx.now();
    model.dequeue(ctx);
    record_op(ctx, t0);
    ctx.work(rng.gen_range(0..=max_work));
}

/// Shared state of the Treiber stack model: the stack is abstracted to its
/// depth, CAS-updated at the top line — the exact contention pattern of the
/// real stack.
#[derive(Clone, Copy)]
pub struct TreiberModel {
    top: Addr,
}

impl TreiberModel {
    /// Allocates the top-of-stack line.
    pub fn new(alloc: &mut AddrAlloc) -> Self {
        Self { top: alloc.line() }
    }

    /// One push: read-top + CAS loop.
    pub fn push(&self, ctx: &mut Ctx) {
        loop {
            let t = ctx.read(self.top);
            ctx.record(Metric::Cas, 1);
            if ctx.cas(self.top, t, t + 1) {
                return;
            }
            ctx.record(Metric::CasFail, 1);
        }
    }

    /// One pop: read-top + CAS loop; `false` when empty.
    pub fn pop(&self, ctx: &mut Ctx) -> bool {
        loop {
            let t = ctx.read(self.top);
            if t == 0 {
                return false;
            }
            ctx.record(Metric::Cas, 1);
            if ctx.cas(self.top, t, t - 1) {
                return true;
            }
            ctx.record(Metric::CasFail, 1);
        }
    }
}

/// Installs Treiber-stack client procs running the balanced workload.
pub fn install_treiber(
    engine: &mut Engine,
    threads: usize,
    seed: u64,
    max_local_work: u64,
    alloc: &mut AddrAlloc,
) {
    let model = TreiberModel::new(alloc);
    for _ in 0..threads {
        engine.add_proc(move |ctx| {
            let mut rng = client_rng(seed, ctx.core());
            loop {
                let t0 = ctx.now();
                model.push(ctx);
                record_op(ctx, t0);
                ctx.work(rng.gen_range(0..=max_local_work));
                let t0 = ctx.now();
                model.pop(ctx);
                record_op(ctx, t0);
                ctx.work(rng.gen_range(0..=max_local_work));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;

    #[test]
    fn lcrq_model_runs_and_counts() {
        let mut alloc = AddrAlloc::new();
        let mut e = Engine::new(MachineConfig::tile_gx8036());
        install_lcrq(&mut e, 6, 64, 1, 50, &mut alloc);
        let r = e.run(150_000);
        let ops = r.metric_sum(Metric::Ops);
        assert!(ops > 500, "too few LCRQ ops: {ops}");
        assert!(r.metric_sum(Metric::Cas) >= ops / 2);
    }

    #[test]
    fn lcrq_sequential_semantics() {
        let mut alloc = AddrAlloc::new();
        let model = LcrqModel::new(&mut alloc, 8);
        let mut e = Engine::new(MachineConfig::tile_gx8036());
        e.add_proc(move |ctx| {
            assert!(!model.dequeue(ctx), "fresh queue must be empty");
            model.enqueue(ctx);
            model.enqueue(ctx);
            assert!(model.dequeue(ctx));
            assert!(model.dequeue(ctx));
            assert!(!model.dequeue(ctx));
        });
        e.run(1_000_000);
    }

    #[test]
    fn treiber_model_contention_causes_cas_failures() {
        let mut alloc = AddrAlloc::new();
        let mut e = Engine::new(MachineConfig::tile_gx8036());
        // No local work: maximum contention on the top.
        install_treiber(&mut e, 8, 1, 0, &mut alloc);
        let r = e.run(150_000);
        assert!(r.metric_sum(Metric::Ops) > 500);
        assert!(
            r.metric_sum(Metric::CasFail) > 0,
            "contended Treiber stack must retry CASes"
        );
    }

    #[test]
    fn treiber_sequential_semantics() {
        let mut alloc = AddrAlloc::new();
        let model = TreiberModel::new(&mut alloc);
        let mut e = Engine::new(MachineConfig::tile_gx8036());
        e.add_proc(move |ctx| {
            assert!(!model.pop(ctx));
            model.push(ctx);
            model.push(ctx);
            assert!(model.pop(ctx));
            assert!(model.pop(ctx));
            assert!(!model.pop(ctx));
        });
        e.run(1_000_000);
    }
}
