//! Single-slot proc↔engine mailbox: the simulator's hot-path handoff.
//!
//! Each proc owns one [`Mailbox`] shared with the engine. The protocol is a
//! strict ping-pong — the proc publishes a request and waits; the engine
//! consumes it, eventually publishes the response, and waits for the next
//! request — so a single cell with one `state` word is enough:
//!
//! ```text
//!   IDLE ──proc──▶ REQ ──engine──▶ RESP ──proc──▶ REQ ──▶ …
//! ```
//!
//! Payloads travel in a fixed array of [`INLINE_WORDS`] atomic words
//! (every request and almost every response in this simulator is ≤ 4
//! words); only oversized payloads fall back to a heap `Vec` behind a
//! mutex, making the steady-state handoff allocation-free. Waiting is
//! spin-then-park: a bounded spin catches the common fast turnaround, and
//! `std::thread::park` bounds CPU burn when the peer is slow. Parking uses
//! the classic flag protocol — the waiter advertises itself in a "parked"
//! flag before re-checking `state`, and the publisher stores `state` before
//! checking the flag, both with `SeqCst`, so one side always sees the other
//! and wakeups cannot be lost.
//!
//! Publishing while the peer still owns the cell is a protocol violation
//! the ping-pong discipline rules out; nothing here checks for it.
//!
//! This replaces a pair of `std::sync::mpsc` channels per proc, which paid
//! two mutex/condvar handoffs and at least one node allocation per
//! simulated operation — at millions of operations per run, the dominant
//! host cost of the whole simulator.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::Thread;

use crate::stats::N_METRICS;

/// Words carried inline in the cell; larger payloads go through the heap.
pub(crate) const INLINE_WORDS: usize = 6;

// The staged-record mask is a u32 bitmap over metric indices.
const _: () = assert!(N_METRICS <= 32);

/// No message in flight (initial state only; after the first request the
/// cell alternates between `REQ` and `RESP`).
pub(crate) const ST_IDLE: u32 = 0;
/// A request is published; the engine owns the cell.
pub(crate) const ST_REQ: u32 = 1;
/// A response is published; the proc owns the cell.
pub(crate) const ST_RESP: u32 = 2;
/// The engine is gone (dropped mid-run, e.g. unwinding a panic); procs
/// must abandon ship instead of waiting forever.
pub(crate) const ST_POISON: u32 = 3;

/// Waiting is three-phase: `pause`-spin (multi-CPU only), `yield_now`, then
/// `park`. On a single-CPU host, spinning can never observe the flip — the
/// peer needs the CPU to publish — so the pause phase is skipped entirely
/// and a yield hands the core straight to the runnable peer, usually
/// completing the handoff with no futex wait at all.
struct WaitBudget {
    spins: u32,
    yields: u32,
}

/// Proc-side spin budget (the yield budget is adaptive, see
/// [`Mailbox::wait_response`]). A proc's response arrives quickly only
/// when few procs are runnable, so the static part stays small.
fn proc_spins() -> u32 {
    if single_cpu() {
        0
    } else {
        500
    }
}

/// Yield budget a proc uses while its last wait completed without parking.
/// When the engine is idle-waiting on this very proc (single runnable
/// proc — common in latency phases and server figures), the response is
/// one scheduler hop away and the whole handoff completes futex-free.
const PROC_YIELDS_EAGER: u32 = 2;

/// Budget of the engine waiting for the next request. The engine is the
/// serial bottleneck and it always waits for the proc it just resumed, so
/// the request is at most one proc-wakeup away — worth waiting harder for.
fn engine_budget() -> WaitBudget {
    if single_cpu() {
        WaitBudget {
            spins: 0,
            yields: 16,
        }
    } else {
        WaitBudget {
            spins: 4_000,
            yields: 64,
        }
    }
}

fn single_cpu() -> bool {
    static SINGLE: OnceLock<bool> = OnceLock::new();
    *SINGLE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get() < 2)
            .unwrap_or(true)
    })
}

/// The shared request/response cell. See the module docs for the protocol.
pub(crate) struct Mailbox {
    state: AtomicU32,
    /// Request opcode or response kind, depending on `state`.
    opcode: AtomicU32,
    /// Payload length in words; lengths above [`INLINE_WORDS`] mean the
    /// payload is in `overflow`.
    len: AtomicU32,
    words: [AtomicU64; INLINE_WORDS],
    overflow: Mutex<Option<Vec<u64>>>,
    /// Side channel for a proc's panic message (rides with `Done`).
    panic_note: Mutex<Option<String>>,
    proc_parked: AtomicBool,
    engine_parked: AtomicBool,
    /// Adaptive proc-side yield budget: [`PROC_YIELDS_EAGER`] while waits
    /// complete without parking, 0 once a wait had to park (the engine is
    /// clearly busy with other procs; park immediately and save the churn).
    proc_yields: AtomicU32,
    /// Simulated clock at the moment the engine published the last
    /// response — the proc's current virtual time. Lets `Ctx::now` answer
    /// locally, without a handoff.
    resp_clock: AtomicU64,
    /// Bitmap of metric indices with staged deltas riding the next request
    /// (set by the proc before publishing, drained by the engine on
    /// receipt). Lets `Ctx::record` buffer locally, without a handoff.
    records_mask: AtomicU32,
    metric_deltas: [AtomicU64; N_METRICS],
    proc_thread: OnceLock<Thread>,
    engine_thread: OnceLock<Thread>,
    proc_parks: AtomicU64,
    engine_parks: AtomicU64,
}

/// Locks `m`, shrugging off poisoning: a panicking proc must still be able
/// to hand its `Done` through the mailbox.
fn lock_anyway<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Mailbox {
    pub(crate) fn new() -> Self {
        Self {
            state: AtomicU32::new(ST_IDLE),
            opcode: AtomicU32::new(0),
            len: AtomicU32::new(0),
            words: Default::default(),
            overflow: Mutex::new(None),
            panic_note: Mutex::new(None),
            proc_parked: AtomicBool::new(false),
            engine_parked: AtomicBool::new(false),
            proc_yields: AtomicU32::new(PROC_YIELDS_EAGER),
            resp_clock: AtomicU64::new(0),
            records_mask: AtomicU32::new(0),
            metric_deltas: Default::default(),
            proc_thread: OnceLock::new(),
            engine_thread: OnceLock::new(),
            proc_parks: AtomicU64::new(0),
            engine_parks: AtomicU64::new(0),
        }
    }

    /// Registers the calling thread as the proc side (for unparking). Must
    /// run before the proc's first request.
    pub(crate) fn register_proc(&self) {
        let _ = self.proc_thread.set(std::thread::current());
    }

    /// Registers the calling thread as the engine side. Must run before the
    /// engine first waits on this mailbox.
    pub(crate) fn register_engine(&self) {
        let _ = self.engine_thread.set(std::thread::current());
    }

    /// Stores a payload and flips `state`, waking the peer if it advertised
    /// itself as parked. The `Relaxed` payload stores are ordered before
    /// the `SeqCst` state store, which the waiter's state load acquires.
    fn publish(&self, new_state: u32, code: u32, payload: &[u64], overflow: Option<Vec<u64>>) {
        self.opcode.store(code, Ordering::Relaxed);
        if let Some(big) = overflow {
            self.len.store(big.len() as u32, Ordering::Relaxed);
            debug_assert!(big.len() > INLINE_WORDS);
            *lock_anyway(&self.overflow) = Some(big);
        } else {
            debug_assert!(payload.len() <= INLINE_WORDS);
            self.len.store(payload.len() as u32, Ordering::Relaxed);
            for (slot, &w) in self.words.iter().zip(payload) {
                slot.store(w, Ordering::Relaxed);
            }
        }
        self.state.store(new_state, Ordering::SeqCst);
        let (peer_parked, peer) = match new_state {
            ST_REQ => (&self.engine_parked, &self.engine_thread),
            _ => (&self.proc_parked, &self.proc_thread),
        };
        if peer_parked.load(Ordering::SeqCst) {
            if let Some(t) = peer.get() {
                t.unpark();
            }
        }
    }

    /// Spins, yields, then parks, until `state` becomes `want` (or
    /// `POISON`). Returns the observed state and whether the wait had to
    /// park at least once.
    fn wait_state(
        &self,
        want: u32,
        budget: WaitBudget,
        me_parked: &AtomicBool,
        parks: &AtomicU64,
    ) -> (u32, bool) {
        let mut s = self.state.load(Ordering::SeqCst);
        if s == want || s == ST_POISON {
            return (s, false);
        }
        for _ in 0..budget.spins {
            std::hint::spin_loop();
            s = self.state.load(Ordering::SeqCst);
            if s == want || s == ST_POISON {
                return (s, false);
            }
        }
        for _ in 0..budget.yields {
            std::thread::yield_now();
            s = self.state.load(Ordering::SeqCst);
            if s == want || s == ST_POISON {
                return (s, false);
            }
        }
        loop {
            me_parked.store(true, Ordering::SeqCst);
            s = self.state.load(Ordering::SeqCst);
            if s == want || s == ST_POISON {
                me_parked.store(false, Ordering::Relaxed);
                return (s, true);
            }
            parks.fetch_add(1, Ordering::Relaxed);
            std::thread::park();
            me_parked.store(false, Ordering::SeqCst);
        }
    }

    // ---- proc side -------------------------------------------------------

    /// Publishes a request with an inline payload. Returns `false` (without
    /// publishing) if the engine is gone.
    pub(crate) fn send_request(&self, op: u32, payload: &[u64]) -> bool {
        if self.state.load(Ordering::SeqCst) == ST_POISON {
            return false;
        }
        self.publish(ST_REQ, op, payload, None);
        true
    }

    /// Publishes a request whose payload exceeds the inline buffer.
    /// `head` still rides inline (it is the destination word of a send).
    pub(crate) fn send_request_big(&self, op: u32, head: u64, rest: Vec<u64>) -> bool {
        if self.state.load(Ordering::SeqCst) == ST_POISON {
            return false;
        }
        self.words[0].store(head, Ordering::Relaxed);
        self.publish(ST_REQ, op, &[], Some(rest));
        true
    }

    /// Stages buffered metric deltas to ride the next request: deltas for
    /// every set bit of `mask`, then the mask itself. Proc side, called
    /// while the proc owns the cell (before publishing); the subsequent
    /// `SeqCst` state store orders these `Relaxed` stores for the engine.
    pub(crate) fn stage_records(&self, mask: u32, deltas: &[u64; N_METRICS]) {
        for (i, d) in deltas.iter().enumerate() {
            if mask & (1 << i) != 0 {
                self.metric_deltas[i].store(*d, Ordering::Relaxed);
            }
        }
        self.records_mask.store(mask, Ordering::Relaxed);
    }

    /// The simulated time of the last response (proc side). Before the
    /// first response this is 0 — which is when the simulation starts.
    pub(crate) fn resp_clock(&self) -> u64 {
        self.resp_clock.load(Ordering::Relaxed)
    }

    /// Attaches a panic message to travel with a `Done` request.
    pub(crate) fn set_panic_note(&self, msg: String) {
        *lock_anyway(&self.panic_note) = Some(msg);
    }

    /// Blocks until the engine's response (or poison) and returns the
    /// observed state (`ST_RESP` or `ST_POISON`).
    pub(crate) fn wait_response(&self) -> u32 {
        let budget = WaitBudget {
            spins: proc_spins(),
            yields: self.proc_yields.load(Ordering::Relaxed),
        };
        let (s, parked) = self.wait_state(ST_RESP, budget, &self.proc_parked, &self.proc_parks);
        self.proc_yields.store(
            if parked { 0 } else { PROC_YIELDS_EAGER },
            Ordering::Relaxed,
        );
        s
    }

    // ---- engine side -----------------------------------------------------

    /// Blocks until the proc's next request and returns its opcode and
    /// payload length. (Procs never poison; only `ST_REQ` returns.)
    pub(crate) fn wait_request(&self) -> (u32, usize) {
        let (s, _) = self.wait_state(
            ST_REQ,
            engine_budget(),
            &self.engine_parked,
            &self.engine_parks,
        );
        debug_assert_eq!(s, ST_REQ);
        (
            self.opcode.load(Ordering::Relaxed),
            self.len.load(Ordering::Relaxed) as usize,
        )
    }

    /// Drains the metric deltas staged with the request the engine just
    /// received, handing each `(metric index, delta)` to `apply`. Engine
    /// side, after [`Mailbox::wait_request`].
    pub(crate) fn drain_records(&self, mut apply: impl FnMut(usize, u64)) {
        let mask = self.records_mask.swap(0, Ordering::Relaxed);
        if mask == 0 {
            return;
        }
        for i in 0..N_METRICS {
            if mask & (1 << i) != 0 {
                apply(i, self.metric_deltas[i].load(Ordering::Relaxed));
            }
        }
    }

    /// Records the simulated time a response is published at (engine side,
    /// called before `send_response`; ordered by the state store).
    pub(crate) fn set_resp_clock(&self, t: u64) {
        self.resp_clock.store(t, Ordering::Relaxed);
    }

    /// Response kind and payload length (valid on the proc side after
    /// [`Mailbox::wait_response`] returned `ST_RESP`).
    pub(crate) fn resp_fields(&self) -> (u32, usize) {
        (
            self.opcode.load(Ordering::Relaxed),
            self.len.load(Ordering::Relaxed) as usize,
        )
    }

    /// Publishes a response with an inline payload.
    pub(crate) fn send_response(&self, kind: u32, payload: &[u64]) {
        self.publish(ST_RESP, kind, payload, None);
    }

    /// Publishes a response whose payload exceeds the inline buffer.
    pub(crate) fn send_response_big(&self, kind: u32, payload: Vec<u64>) {
        self.publish(ST_RESP, kind, &[], Some(payload));
    }

    /// Marks the engine as gone and wakes the proc so it can unwind instead
    /// of waiting forever. Idempotent; harmless after the proc exited.
    pub(crate) fn poison(&self) {
        self.state.store(ST_POISON, Ordering::SeqCst);
        if let Some(t) = self.proc_thread.get() {
            t.unpark();
        }
    }

    // ---- payload access (valid while the caller owns the cell) ----------

    /// Reads inline payload word `i`.
    pub(crate) fn word(&self, i: usize) -> u64 {
        self.words[i].load(Ordering::Relaxed)
    }

    /// Takes the heap payload of an oversized request/response.
    pub(crate) fn take_overflow(&self) -> Option<Vec<u64>> {
        lock_anyway(&self.overflow).take()
    }

    /// Takes the panic message riding with `Done`.
    pub(crate) fn take_panic_note(&self) -> Option<String> {
        lock_anyway(&self.panic_note).take()
    }

    /// How many times the proc side parked (host-scheduling dependent).
    pub(crate) fn proc_park_count(&self) -> u64 {
        self.proc_parks.load(Ordering::Relaxed)
    }

    /// How many times the engine side parked on this mailbox.
    pub(crate) fn engine_park_count(&self) -> u64 {
        self.engine_parks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pingpong_roundtrips_inline_payload() {
        let mb = Arc::new(Mailbox::new());
        mb.register_engine();
        let proc_mb = Arc::clone(&mb);
        let j = std::thread::spawn(move || {
            proc_mb.register_proc();
            for i in 0..10_000u64 {
                assert!(proc_mb.send_request(7, &[i, i * 2, i * 3]));
                assert_eq!(proc_mb.wait_response(), ST_RESP);
                assert_eq!(proc_mb.word(0), i + 1);
            }
        });
        for _ in 0..10_000u64 {
            let (op, len) = mb.wait_request();
            assert_eq!(op, 7);
            assert_eq!(len, 3);
            let x = mb.word(0);
            assert_eq!(mb.word(1), x * 2);
            mb.send_response(0, &[x + 1]);
        }
        j.join().unwrap();
    }

    #[test]
    fn oversized_payload_takes_heap_path() {
        let mb = Arc::new(Mailbox::new());
        mb.register_engine();
        let proc_mb = Arc::clone(&mb);
        let big: Vec<u64> = (0..100).collect();
        let expect = big.clone();
        let j = std::thread::spawn(move || {
            proc_mb.register_proc();
            assert!(proc_mb.send_request_big(5, 42, big));
            assert_eq!(proc_mb.wait_response(), ST_RESP);
            let back = proc_mb.take_overflow().expect("big response");
            assert_eq!(back.len(), 100);
        });
        let (op, len) = mb.wait_request();
        assert_eq!((op, len), (5, 100));
        assert_eq!(mb.word(0), 42);
        let got = mb.take_overflow().expect("big request");
        assert_eq!(got, expect);
        mb.send_response_big(1, got);
        j.join().unwrap();
    }

    #[test]
    fn poison_unblocks_a_waiting_proc() {
        let mb = Arc::new(Mailbox::new());
        let proc_mb = Arc::clone(&mb);
        let j = std::thread::spawn(move || {
            proc_mb.register_proc();
            assert!(proc_mb.send_request(1, &[0]));
            proc_mb.wait_response() // must return ST_POISON, not hang
        });
        // Give the proc time to publish and park.
        std::thread::sleep(std::time::Duration::from_millis(50));
        mb.poison();
        assert_eq!(j.join().unwrap(), ST_POISON);
        // Further requests are refused.
        assert!(!mb.send_request(1, &[0]));
    }
}
