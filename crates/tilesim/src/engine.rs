//! The discrete-event engine.
//!
//! Each simulated core runs one *proc*: an OS thread executing a plain Rust
//! closure that issues [`Request`]s through its [`Ctx`] handle and blocks
//! until the engine answers. The engine processes exactly one proc at a
//! time, in global simulated-time order (ties broken by core id), so the
//! simulation is fully deterministic regardless of host scheduling —
//! and, because effects apply in that single global order, the simulated
//! memory is sequentially consistent, exactly the paper's §2 model.
//!
//! When the simulation horizon is reached, blocked and running procs are
//! torn down by answering [`Response::Stopped`], which `Ctx` converts into a
//! panic payload caught by the proc wrapper — so workload closures are
//! written as infinite loops without any stop-flag plumbing.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::thread::JoinHandle;

use crate::config::MachineConfig;
use crate::mem::{Addr, Memory};
use crate::stats::{CoreStats, Metric, SimResult, N_METRICS};

/// A request a proc issues to the engine.
#[derive(Debug)]
enum Request {
    Read(Addr),
    Write(Addr, u64),
    Faa(Addr, u64),
    Cas(Addr, u64, u64),
    Swap(Addr, u64),
    Send { dest: usize, words: Vec<u64> },
    Receive(usize),
    IsQueueEmpty,
    QueuePending,
    Work(u64),
    Now,
    Record(Metric, u64),
    Done { panic_msg: Option<String> },
}

/// The engine's answer to a request.
#[derive(Debug)]
enum Response {
    Value(u64),
    Values(Vec<u64>),
    Bool(bool),
    Unit,
    /// Simulation horizon reached: the proc must unwind.
    Stopped,
}

/// Panic payload used to unwind a proc at the simulation horizon.
struct StopSim;

/// Silences the default panic hook for `StopSim` unwinds (they are the
/// engine's normal teardown mechanism, not errors); every other panic goes
/// to the previously installed hook.
fn install_quiet_stop_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<StopSim>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Per-proc handle through which simulated code talks to the machine.
///
/// All methods advance simulated time; see [`MachineConfig`] for costs.
pub struct Ctx {
    core: usize,
    req_tx: Sender<Request>,
    resp_rx: Receiver<Response>,
}

impl Ctx {
    fn roundtrip(&mut self, req: Request) -> Response {
        self.req_tx.send(req).expect("engine vanished");
        let resp = self.resp_rx.recv().expect("engine vanished");
        if matches!(resp, Response::Stopped) {
            panic::panic_any(StopSim);
        }
        resp
    }

    fn value(&mut self, req: Request) -> u64 {
        match self.roundtrip(req) {
            Response::Value(v) => v,
            r => unreachable!("expected Value, got {r:?}"),
        }
    }

    /// The core this proc is pinned to.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Reads a shared-memory word.
    pub fn read(&mut self, a: Addr) -> u64 {
        self.value(Request::Read(a))
    }

    /// Writes a shared-memory word.
    pub fn write(&mut self, a: Addr, v: u64) {
        self.roundtrip(Request::Write(a, v));
    }

    /// Fetch-and-add; returns the previous value.
    pub fn faa(&mut self, a: Addr, delta: u64) -> u64 {
        self.value(Request::Faa(a, delta))
    }

    /// Compare-and-set; returns whether the swap happened (the boolean
    /// variant, as in the paper's model).
    pub fn cas(&mut self, a: Addr, old: u64, new: u64) -> bool {
        self.value(Request::Cas(a, old, new)) != 0
    }

    /// Atomic exchange; returns the previous value.
    pub fn swap(&mut self, a: Addr, v: u64) -> u64 {
        self.value(Request::Swap(a, v))
    }

    /// Sends `words` as one message to `dest`'s hardware queue
    /// (asynchronous; blocks only on back-pressure).
    pub fn send(&mut self, dest: usize, words: &[u64]) {
        self.roundtrip(Request::Send {
            dest,
            words: words.to_vec(),
        });
    }

    /// Receives exactly `k` words from the local queue, blocking as needed.
    pub fn receive(&mut self, k: usize) -> Vec<u64> {
        match self.roundtrip(Request::Receive(k)) {
            Response::Values(v) => v,
            r => unreachable!("expected Values, got {r:?}"),
        }
    }

    /// Receives a single word.
    pub fn receive1(&mut self) -> u64 {
        self.receive(1)[0]
    }

    /// Receives a three-word request `{sender, op, arg}`.
    pub fn receive3(&mut self) -> [u64; 3] {
        let v = self.receive(3);
        [v[0], v[1], v[2]]
    }

    /// `true` if the local hardware queue currently holds no arrived word.
    pub fn is_queue_empty(&mut self) -> bool {
        match self.roundtrip(Request::IsQueueEmpty) {
            Response::Bool(b) => b,
            r => unreachable!("expected Bool, got {r:?}"),
        }
    }

    /// `true` if any word is queued for this core, *including words still
    /// in flight on the simulated wire*.
    ///
    /// Real hardware cannot see in-flight messages, but this simulator
    /// charges a fixed wire latency that real short-distance UDN messages
    /// do not pay; a drain loop that polled only arrived words would close
    /// combining rounds on that artifact. Use this for "should I keep
    /// serving?" checks and [`Ctx::is_queue_empty`] for faithful hardware
    /// probes.
    pub fn has_pending_traffic(&mut self) -> bool {
        match self.roundtrip(Request::QueuePending) {
            Response::Bool(b) => b,
            r => unreachable!("expected Bool, got {r:?}"),
        }
    }

    /// Burns `cycles` of local computation.
    pub fn work(&mut self, cycles: u64) {
        if cycles > 0 {
            self.roundtrip(Request::Work(cycles));
        }
    }

    /// Current simulated time in cycles (free).
    pub fn now(&mut self) -> u64 {
        self.value(Request::Now)
    }

    /// Adds `v` to this proc's `metric` accumulator (free).
    pub fn record(&mut self, metric: Metric, v: u64) {
        self.roundtrip(Request::Record(metric, v));
    }
}

#[derive(Debug)]
#[allow(dead_code)] // `dest` is carried for Debug diagnostics only
enum ProcState {
    /// Scheduled in the event heap; `pending` is delivered on resume.
    Runnable,
    /// Blocked on `receive(k)` since the given cycle.
    WaitRecv { k: usize, since: u64 },
    /// Blocked sending `words` to `dest` since the given cycle.
    WaitSend {
        dest: usize,
        words: Vec<u64>,
        since: u64,
    },
    Finished,
}

struct ProcSlot {
    state: ProcState,
    pending: Option<Response>,
    req_rx: Receiver<Request>,
    resp_tx: Sender<Response>,
    join: Option<JoinHandle<()>>,
    stats: CoreStats,
    metrics: [u64; N_METRICS],
    panic_msg: Option<String>,
}

/// One core's hardware message queue: words with arrival times, plus the
/// back-pressured senders waiting for space.
struct SimQueue {
    words: VecDeque<(u64, u64)>, // (arrival cycle, value)
    blocked_senders: VecDeque<usize>,
}

/// The simulator: owns the machine state and the procs.
pub struct Engine {
    cfg: MachineConfig,
    mem: Memory,
    procs: Vec<ProcSlot>,
    queues: Vec<SimQueue>,
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    clock: u64,
    stopping: bool,
}

impl Engine {
    /// Creates an engine for the given machine.
    pub fn new(cfg: MachineConfig) -> Self {
        install_quiet_stop_hook();
        let queues = (0..cfg.cores())
            .map(|_| SimQueue {
                words: VecDeque::new(),
                blocked_senders: VecDeque::new(),
            })
            .collect();
        Self {
            cfg,
            mem: Memory::new(cfg),
            procs: Vec::new(),
            queues,
            heap: BinaryHeap::new(),
            clock: 0,
            stopping: false,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Initializes a memory word before the run, without coherence effects
    /// or cycle charges (protocol state setup).
    pub fn preset_memory(&mut self, addr: Addr, v: u64) {
        self.mem.poke(addr, v);
    }

    /// Adds a proc pinned to the next free core (procs are pinned in
    /// ascending order, like the paper's thread placement). Returns the
    /// core index.
    ///
    /// # Panics
    ///
    /// Panics if all cores already have a proc.
    pub fn add_proc<F>(&mut self, f: F) -> usize
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        let core = self.procs.len();
        assert!(core < self.cfg.cores(), "machine has {} cores", self.cfg.cores());
        let (req_tx, req_rx) = std::sync::mpsc::channel();
        let (resp_tx, resp_rx) = std::sync::mpsc::channel();
        let join = std::thread::Builder::new()
            .name(format!("simproc-{core}"))
            .spawn(move || {
                let mut ctx = Ctx {
                    core,
                    req_tx,
                    resp_rx,
                };
                let result = panic::catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
                let panic_msg = match result {
                    Ok(()) => None,
                    Err(payload) => {
                        if payload.downcast_ref::<StopSim>().is_some() {
                            None
                        } else if let Some(s) = payload.downcast_ref::<&str>() {
                            Some((*s).to_string())
                        } else if let Some(s) = payload.downcast_ref::<String>() {
                            Some(s.clone())
                        } else {
                            Some("proc panicked".to_string())
                        }
                    }
                };
                // The engine may already be gone if it panicked itself.
                let _ = ctx.req_tx.send(Request::Done { panic_msg });
            })
            .expect("failed to spawn sim proc");
        self.procs.push(ProcSlot {
            state: ProcState::Runnable,
            pending: None,
            req_rx,
            resp_tx,
            join: Some(join),
            stats: CoreStats::default(),
            metrics: [0; N_METRICS],
            panic_msg: None,
        });
        self.heap.push(Reverse((0, core)));
        core
    }

    fn schedule(&mut self, proc: usize, at: u64, resp: Response) {
        self.procs[proc].pending = Some(resp);
        self.procs[proc].state = ProcState::Runnable;
        self.heap.push(Reverse((at, proc)));
    }

    /// Charges a memory access to a core: `l1_hit` is useful work, the rest
    /// is a coherence stall.
    fn charge_mem(&mut self, proc: usize, latency: u64) {
        let useful = self.cfg.l1_hit.min(latency);
        self.procs[proc].stats.busy += useful;
        self.procs[proc].stats.stall += latency - useful;
        self.procs[proc].stats.mem_ops += 1;
    }

    /// Queue occupancy check: can `n` more words fit?
    fn queue_has_room(&self, dest: usize, n: usize) -> bool {
        self.queues[dest].words.len() + n <= self.cfg.queue_capacity
    }

    /// Deposits a message and wakes the destination's receiver if it is now
    /// satisfiable.
    fn deposit(&mut self, from: usize, dest: usize, words: &[u64], send_time: u64) {
        let arrival =
            send_time + self.cfg.send_inject + self.cfg.msg_wire_base + self.cfg.wire(from, dest);
        for &w in words {
            self.queues[dest].words.push_back((arrival, w));
        }
        self.procs[from].stats.msgs_sent += 1;
        self.try_wake_receiver(dest);
    }

    /// If the proc on `core` is blocked in `receive(k)` and k words are now
    /// queued, completes the receive.
    fn try_wake_receiver(&mut self, core: usize) {
        let (k, since) = match self.procs[core].state {
            ProcState::WaitRecv { k, since } => (k, since),
            _ => return,
        };
        if self.queues[core].words.len() < k {
            return;
        }
        self.complete_receive(core, k, since);
    }

    /// Pops `k` words for `core`'s proc and schedules its resume.
    fn complete_receive(&mut self, core: usize, k: usize, issued: u64) {
        let mut vals = Vec::with_capacity(k);
        let mut last_arrival = issued;
        for _ in 0..k {
            let (arr, v) = self.queues[core].words.pop_front().expect("checked len");
            last_arrival = last_arrival.max(arr);
            vals.push(v);
        }
        let service = self.cfg.recv_base + self.cfg.recv_word * k as u64;
        let resume = last_arrival + service;
        let slot = &mut self.procs[core];
        slot.stats.busy += service;
        slot.stats.idle += last_arrival - issued;
        slot.stats.msgs_recv += 1;
        self.schedule(core, resume, Response::Values(vals));
        // Space freed: let blocked senders through (in arrival order).
        self.drain_blocked_senders(core, resume);
    }

    fn drain_blocked_senders(&mut self, dest: usize, now: u64) {
        while let Some(&sender) = self.queues[dest].blocked_senders.front() {
            let (words, since) = match &self.procs[sender].state {
                ProcState::WaitSend { words, since, .. } => (words.clone(), *since),
                _ => unreachable!("blocked sender not in WaitSend"),
            };
            if !self.queue_has_room(dest, words.len()) {
                break;
            }
            self.queues[dest].blocked_senders.pop_front();
            self.procs[sender].stats.idle += now.saturating_sub(since);
            self.procs[sender].stats.blocked_sends += 1;
            self.deposit(sender, dest, &words, now);
            let resume = now + self.cfg.send_inject;
            self.procs[sender].stats.busy += self.cfg.send_inject;
            self.schedule(sender, resume, Response::Unit);
        }
    }

    fn handle_request(&mut self, proc: usize, req: Request) {
        let now = self.clock;
        match req {
            Request::Read(a) => {
                let (v, acc) = self.mem.read(proc, a, now);
                self.charge_mem(proc, acc.latency);
                self.schedule(proc, now + acc.latency, Response::Value(v));
            }
            Request::Write(a, v) => {
                let acc = self.mem.write(proc, a, v, now);
                self.charge_mem(proc, acc.latency);
                self.schedule(proc, now + acc.latency, Response::Unit);
            }
            Request::Faa(a, d) => {
                let (old, acc) = self.mem.atomic(proc, a, now, |v| v.wrapping_add(d));
                self.charge_mem(proc, acc.latency);
                self.schedule(proc, now + acc.latency, Response::Value(old));
            }
            Request::Cas(a, expect, new) => {
                let mut ok = false;
                let (_, acc) = self.mem.atomic(proc, a, now, |v| {
                    if v == expect {
                        ok = true;
                        new
                    } else {
                        v
                    }
                });
                self.charge_mem(proc, acc.latency);
                self.schedule(proc, now + acc.latency, Response::Value(ok as u64));
            }
            Request::Swap(a, new) => {
                let (old, acc) = self.mem.atomic(proc, a, now, |_| new);
                self.charge_mem(proc, acc.latency);
                self.schedule(proc, now + acc.latency, Response::Value(old));
            }
            Request::Send { dest, words } => {
                assert!(dest < self.queues.len(), "send to core {dest} out of range");
                assert!(
                    words.len() <= self.cfg.queue_capacity,
                    "message larger than a hardware queue"
                );
                if self.queue_has_room(dest, words.len()) {
                    self.deposit(proc, dest, &words, now);
                    self.procs[proc].stats.busy += self.cfg.send_inject;
                    self.schedule(proc, now + self.cfg.send_inject, Response::Unit);
                } else {
                    self.procs[proc].state = ProcState::WaitSend {
                        dest,
                        words,
                        since: now,
                    };
                    self.queues[dest].blocked_senders.push_back(proc);
                }
            }
            Request::Receive(k) => {
                assert!(k > 0 && k <= self.cfg.queue_capacity, "bad receive size {k}");
                if self.queues[proc].words.len() >= k {
                    self.complete_receive(proc, k, now);
                } else {
                    self.procs[proc].state = ProcState::WaitRecv { k, since: now };
                }
            }
            Request::IsQueueEmpty => {
                let empty = self.queues[proc]
                    .words
                    .front()
                    .map(|&(arr, _)| arr > now)
                    .unwrap_or(true);
                self.procs[proc].stats.busy += self.cfg.queue_probe;
                self.schedule(proc, now + self.cfg.queue_probe, Response::Bool(empty));
            }
            Request::QueuePending => {
                let pending = !self.queues[proc].words.is_empty();
                self.procs[proc].stats.busy += self.cfg.queue_probe;
                self.schedule(proc, now + self.cfg.queue_probe, Response::Bool(pending));
            }
            Request::Work(cycles) => {
                self.procs[proc].stats.busy += cycles;
                self.schedule(proc, now + cycles, Response::Unit);
            }
            Request::Now => {
                self.schedule(proc, now, Response::Value(now));
            }
            Request::Record(metric, v) => {
                self.procs[proc].metrics[metric as usize] += v;
                self.schedule(proc, now, Response::Unit);
            }
            Request::Done { panic_msg } => {
                self.procs[proc].panic_msg = panic_msg;
                self.procs[proc].state = ProcState::Finished;
            }
        }
    }

    /// Forces every blocked proc runnable with a `Stopped` response.
    fn force_stop_blocked(&mut self) {
        for i in 0..self.procs.len() {
            match self.procs[i].state {
                ProcState::WaitRecv { .. } | ProcState::WaitSend { .. } => {
                    self.schedule(i, self.clock, Response::Stopped);
                }
                _ => {}
            }
        }
        for q in &mut self.queues {
            q.blocked_senders.clear();
        }
    }

    /// Runs the simulation until every proc finished or `horizon` cycles
    /// elapsed, and returns the collected statistics.
    ///
    /// # Panics
    ///
    /// Panics if a proc panicked (test failures propagate), or on deadlock
    /// (all procs blocked before the horizon).
    pub fn run(mut self, horizon: u64) -> SimResult {
        loop {
            if self.procs.iter().all(|p| matches!(p.state, ProcState::Finished)) {
                break;
            }
            let Some(Reverse((t, proc))) = self.heap.pop() else {
                // No event pending. Either procs are mid-teardown (wait for
                // their Done), or every remaining proc is blocked with no
                // event that could ever wake it — quiescence; stop them.
                if self.stopping {
                    self.reap_done();
                } else {
                    self.stopping = true;
                    self.force_stop_blocked();
                }
                continue;
            };
            if matches!(self.procs[proc].state, ProcState::Finished) {
                continue;
            }
            self.clock = self.clock.max(t);
            if self.clock >= horizon && !self.stopping {
                self.stopping = true;
                self.force_stop_blocked();
            }
            // Deliver the pending response, if any (at the very first
            // activation there is none: the proc starts by *sending* its
            // first request). Under teardown, whatever was pending is
            // replaced by Stopped.
            if let Some(pending) = self.procs[proc].pending.take() {
                let resp = if self.stopping {
                    Response::Stopped
                } else {
                    pending
                };
                if self.procs[proc].resp_tx.send(resp).is_err() {
                    // Proc already exited (teardown race); reap below.
                    self.procs[proc].state = ProcState::Finished;
                    continue;
                }
            }
            let req = match self.procs[proc].req_rx.recv() {
                Ok(r) => r,
                Err(_) => {
                    self.procs[proc].state = ProcState::Finished;
                    continue;
                }
            };
            self.handle_request(proc, req);
        }
        self.finish(horizon)
    }

    /// Collects `Done` notifications from procs that are unwinding after a
    /// forced stop.
    fn reap_done(&mut self) {
        for i in 0..self.procs.len() {
            if matches!(self.procs[i].state, ProcState::Finished) {
                continue;
            }
            match self.procs[i].req_rx.recv() {
                Ok(Request::Done { panic_msg }) => {
                    self.procs[i].panic_msg = panic_msg;
                    self.procs[i].state = ProcState::Finished;
                }
                Ok(other) => {
                    // A proc raced one more request in before seeing the
                    // stop; answer Stopped and let it unwind.
                    let _ = other;
                    let _ = self.procs[i].resp_tx.send(Response::Stopped);
                }
                Err(_) => self.procs[i].state = ProcState::Finished,
            }
        }
    }

    fn finish(mut self, horizon: u64) -> SimResult {
        for p in &mut self.procs {
            if let Some(j) = p.join.take() {
                let _ = j.join();
            }
        }
        let mut panics: Vec<String> = Vec::new();
        for (i, p) in self.procs.iter().enumerate() {
            if let Some(msg) = &p.panic_msg {
                panics.push(format!("proc {i}: {msg}"));
            }
        }
        assert!(panics.is_empty(), "sim procs panicked: {panics:?}");

        let per_core: Vec<CoreStats> = self
            .procs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut s = p.stats;
                s.rmrs = self.mem.rmrs(i);
                s.atomics = self.mem.atomics(i);
                s
            })
            .collect();
        let metrics = self.procs.iter().map(|p| p.metrics).collect();
        SimResult {
            cfg: self.cfg,
            cycles: self.clock.min(horizon).max(1),
            end_clock: self.clock,
            per_core,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Metric;

    fn small_cfg() -> MachineConfig {
        MachineConfig {
            rows: 2,
            cols: 2,
            ..MachineConfig::tile_gx8036()
        }
    }

    #[test]
    fn single_proc_memory_ops() {
        let mut e = Engine::new(small_cfg());
        e.add_proc(|ctx| {
            ctx.write(10, 5);
            assert_eq!(ctx.read(10), 5);
            assert_eq!(ctx.faa(10, 3), 5);
            assert_eq!(ctx.read(10), 8);
            assert!(ctx.cas(10, 8, 20));
            assert!(!ctx.cas(10, 8, 30));
            assert_eq!(ctx.swap(10, 1), 20);
            ctx.record(Metric::Ops, 1);
        });
        let r = e.run(1_000_000);
        assert_eq!(r.metrics[0][Metric::Ops as usize], 1);
        assert!(r.per_core[0].busy > 0);
    }

    #[test]
    fn two_procs_message_roundtrip() {
        let mut e = Engine::new(small_cfg());
        e.add_proc(|ctx| {
            // Server on core 0.
            let m = ctx.receive3();
            assert_eq!(m, [1, 42, 7]);
            ctx.send(1, &[m[1] + m[2]]);
        });
        e.add_proc(|ctx| {
            ctx.send(0, &[1, 42, 7]);
            assert_eq!(ctx.receive1(), 49);
            ctx.record(Metric::Ops, 1);
        });
        let r = e.run(100_000);
        assert_eq!(r.metrics[1][Metric::Ops as usize], 1);
        assert_eq!(r.per_core[0].msgs_recv, 1);
        assert_eq!(r.per_core[0].msgs_sent, 1);
    }

    #[test]
    fn horizon_stops_infinite_loops() {
        let mut e = Engine::new(small_cfg());
        e.add_proc(|ctx| loop {
            ctx.work(10);
            ctx.record(Metric::Ops, 1);
        });
        // A receiver that never gets a message: must be torn down too.
        e.add_proc(|ctx| {
            ctx.receive1();
            unreachable!("no one sends to core 1");
        });
        let r = e.run(5_000);
        let ops = r.metrics[0][Metric::Ops as usize];
        assert!((490..=510).contains(&ops), "ops {ops}");
        assert_eq!(r.cycles, 5_000);
    }

    #[test]
    fn deterministic_same_seed_same_result() {
        fn run_once() -> (u64, u64) {
            let mut e = Engine::new(small_cfg());
            for p in 0..4 {
                e.add_proc(move |ctx| {
                    use rand::{rngs::StdRng, Rng, SeedableRng};
                    let mut rng = StdRng::seed_from_u64(33 + p as u64);
                    loop {
                        ctx.work(rng.gen_range(0..50));
                        ctx.faa(7, 1);
                        ctx.record(Metric::Ops, 1);
                    }
                });
            }
            let r = e.run(20_000);
            let ops: u64 = r.metrics.iter().map(|m| m[Metric::Ops as usize]).sum();
            let stalls: u64 = r.per_core.iter().map(|c| c.stall).sum();
            (ops, stalls)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn backpressure_blocks_sender() {
        let cfg = MachineConfig {
            queue_capacity: 4,
            ..small_cfg()
        };
        let mut e = Engine::new(cfg);
        e.add_proc(|ctx| {
            // Receiver: wait long, then drain.
            ctx.work(10_000);
            for _ in 0..10 {
                ctx.receive1();
            }
        });
        e.add_proc(|ctx| {
            for i in 0..10 {
                ctx.send(0, &[i]); // must block after the queue fills
            }
            ctx.record(Metric::Ops, 1);
        });
        let r = e.run(1_000_000);
        assert_eq!(r.metrics[1][Metric::Ops as usize], 1);
        assert!(r.per_core[1].blocked_sends > 0, "sender never blocked");
        assert!(r.per_core[1].idle > 0);
    }

    #[test]
    fn quiescent_blocked_proc_is_torn_down() {
        let mut e = Engine::new(small_cfg());
        e.add_proc(|ctx| {
            ctx.receive1(); // nobody ever sends
            unreachable!("must be stopped, not satisfied");
        });
        e.add_proc(|ctx| {
            ctx.work(100);
            ctx.record(Metric::Ops, 1);
        });
        // Even with an effectively infinite horizon the run terminates once
        // no event can ever wake the blocked receiver.
        let r = e.run(u64::MAX / 2);
        assert_eq!(r.metrics[1][Metric::Ops as usize], 1);
    }

    #[test]
    fn proc_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let mut e = Engine::new(small_cfg());
            e.add_proc(|ctx| {
                ctx.work(5);
                panic!("boom from sim proc");
            });
            e.run(1_000);
        });
        assert!(result.is_err());
    }

    #[test]
    fn is_queue_empty_sees_arrivals_only() {
        let mut e = Engine::new(small_cfg());
        e.add_proc(|ctx| {
            // Wait until the message must have arrived.
            ctx.work(1_000);
            assert!(!ctx.is_queue_empty());
            assert_eq!(ctx.receive1(), 9);
            assert!(ctx.is_queue_empty());
        });
        e.add_proc(|ctx| {
            ctx.send(0, &[9]);
        });
        e.run(100_000);
    }
}
