//! The discrete-event engine.
//!
//! Each simulated core runs one *proc*: an OS thread executing a plain Rust
//! closure that issues requests through its [`Ctx`] handle and blocks until
//! the engine answers. The engine processes exactly one proc at a time, in
//! global simulated-time order (ties broken by core id), so the simulation
//! is fully deterministic regardless of host scheduling — and, because
//! effects apply in that single global order, the simulated memory is
//! sequentially consistent, exactly the paper's §2 model.
//!
//! Proc↔engine handoffs go through a per-proc single-slot
//! [`Mailbox`](crate::mailbox) — atomics with a spin-then-park wait and
//! fixed-size inline word buffers — so the steady-state simulation loop is
//! allocation-free and avoids the mutex/condvar round trips a channel pair
//! would pay on every simulated operation. The handoff mechanism carries
//! the *same* requests and responses in the same order as the previous
//! `mpsc`-based design; simulated time, and therefore every figure, is
//! unaffected. Host-side counters of the mechanism itself are reported in
//! [`SimResult::host`].
//!
//! When the simulation horizon is reached, blocked and running procs are
//! torn down by answering a `Stopped` response, which `Ctx` converts into a
//! panic payload caught by the proc wrapper — so workload closures are
//! written as infinite loops without any stop-flag plumbing.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::config::MachineConfig;
use crate::mailbox::{Mailbox, INLINE_WORDS, ST_POISON};
use crate::mem::{Addr, Memory};
use crate::stats::{CoreStats, HostStats, Metric, SimResult, N_METRICS};

// Request opcodes, written by `Ctx` and decoded by the engine. Payload
// layout (inline words) is noted per opcode.
const OP_READ: u32 = 0; //  [addr]
const OP_WRITE: u32 = 1; // [addr, value]
const OP_FAA: u32 = 2; //   [addr, delta]
const OP_CAS: u32 = 3; //   [addr, expect, new]
const OP_SWAP: u32 = 4; //  [addr, value]
const OP_SEND: u32 = 5; //  [dest, msg...]; oversized: dest inline, msg on heap
const OP_RECV: u32 = 6; //  [k]
const OP_QEMPTY: u32 = 7; //  []
const OP_QPEND: u32 = 8; //   []
const OP_WORK: u32 = 9; //  [cycles]
const OP_DONE: u32 = 10; // []; panic message in the mailbox side channel

// `Ctx::now` and `Ctx::record` have no opcode: both are answered locally,
// without a handoff. `now` reads the clock the engine piggybacks on every
// response; `record` buffers deltas that ride the next request. Neither
// shortcut can reorder the simulation — the old round trips scheduled a
// zero-latency event for the issuing proc, and such an event is always the
// very next one popped (the heap holds nothing smaller at that point), so
// no other proc could ever observe the difference.

// Response kinds.
const RESP_VALUE: u32 = 0; //  [value]
const RESP_VALUES: u32 = 1; // [word; k] (heap when k > INLINE_WORDS)
const RESP_BOOL: u32 = 2; //   [0|1]
const RESP_UNIT: u32 = 3; //   []
/// Simulation horizon reached: the proc must unwind.
const RESP_STOPPED: u32 = 4;

/// Panic payload used to unwind a proc at the simulation horizon.
struct StopSim;

/// Silences the default panic hook for `StopSim` unwinds (they are the
/// engine's normal teardown mechanism, not errors); every other panic goes
/// to the previously installed hook.
fn install_quiet_stop_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<StopSim>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Per-proc handle through which simulated code talks to the machine.
///
/// All methods advance simulated time; see [`MachineConfig`] for costs.
pub struct Ctx {
    core: usize,
    mb: Arc<Mailbox>,
    /// Metric deltas buffered by [`Ctx::record`], staged onto the next
    /// request instead of paying their own handoffs.
    metric_buf: [u64; N_METRICS],
    dirty_mask: u32,
}

impl Ctx {
    /// Stages buffered `record` deltas to ride the next request.
    fn flush_records(&mut self) {
        if self.dirty_mask != 0 {
            self.mb.stage_records(self.dirty_mask, &self.metric_buf);
            for i in 0..N_METRICS {
                if self.dirty_mask & (1 << i) != 0 {
                    self.metric_buf[i] = 0;
                }
            }
            self.dirty_mask = 0;
        }
    }

    /// Publishes a request, blocks for the response, and returns its kind.
    /// Payload words stay in the mailbox for the caller to read.
    fn transact(&mut self, op: u32, payload: &[u64]) -> u32 {
        self.flush_records();
        assert!(self.mb.send_request(op, payload), "engine vanished");
        if self.mb.wait_response() == ST_POISON {
            panic!("engine vanished");
        }
        let (kind, _) = self.resp_head();
        if kind == RESP_STOPPED {
            panic::panic_any(StopSim);
        }
        kind
    }

    /// Response kind and payload length (the mailbox `opcode`/`len` fields
    /// hold the response while the proc owns the cell).
    fn resp_head(&self) -> (u32, usize) {
        self.mb.resp_fields()
    }

    fn value(&mut self, op: u32, payload: &[u64]) -> u64 {
        let kind = self.transact(op, payload);
        debug_assert_eq!(kind, RESP_VALUE);
        self.mb.word(0)
    }

    /// The core this proc is pinned to.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Reads a shared-memory word.
    pub fn read(&mut self, a: Addr) -> u64 {
        self.value(OP_READ, &[a])
    }

    /// Writes a shared-memory word.
    pub fn write(&mut self, a: Addr, v: u64) {
        self.transact(OP_WRITE, &[a, v]);
    }

    /// Fetch-and-add; returns the previous value.
    pub fn faa(&mut self, a: Addr, delta: u64) -> u64 {
        self.value(OP_FAA, &[a, delta])
    }

    /// Compare-and-set; returns whether the swap happened (the boolean
    /// variant, as in the paper's model).
    pub fn cas(&mut self, a: Addr, old: u64, new: u64) -> bool {
        self.value(OP_CAS, &[a, old, new]) != 0
    }

    /// Atomic exchange; returns the previous value.
    pub fn swap(&mut self, a: Addr, v: u64) -> u64 {
        self.value(OP_SWAP, &[a, v])
    }

    /// Sends `words` as one message to `dest`'s hardware queue
    /// (asynchronous; blocks only on back-pressure).
    pub fn send(&mut self, dest: usize, words: &[u64]) {
        if words.len() < INLINE_WORDS {
            let mut payload = [0u64; INLINE_WORDS];
            payload[0] = dest as u64;
            payload[1..=words.len()].copy_from_slice(words);
            self.transact(OP_SEND, &payload[..words.len() + 1]);
        } else {
            // Oversized send: the message words ride on the heap; `dest`
            // stays inline.
            self.flush_records();
            assert!(
                self.mb
                    .send_request_big(OP_SEND, dest as u64, words.to_vec()),
                "engine vanished"
            );
            if self.mb.wait_response() == ST_POISON {
                panic!("engine vanished");
            }
            let (kind, _) = self.resp_head();
            if kind == RESP_STOPPED {
                panic::panic_any(StopSim);
            }
        }
    }

    /// Receives exactly `k` words from the local queue, blocking as needed.
    pub fn receive(&mut self, k: usize) -> Vec<u64> {
        let kind = self.transact(OP_RECV, &[k as u64]);
        debug_assert_eq!(kind, RESP_VALUES);
        if k <= INLINE_WORDS {
            (0..k).map(|i| self.mb.word(i)).collect()
        } else {
            self.mb.take_overflow().expect("oversized response payload")
        }
    }

    /// Receives a single word (allocation-free).
    pub fn receive1(&mut self) -> u64 {
        let kind = self.transact(OP_RECV, &[1]);
        debug_assert_eq!(kind, RESP_VALUES);
        self.mb.word(0)
    }

    /// Receives a three-word request `{sender, op, arg}` (allocation-free).
    pub fn receive3(&mut self) -> [u64; 3] {
        let kind = self.transact(OP_RECV, &[3]);
        debug_assert_eq!(kind, RESP_VALUES);
        [self.mb.word(0), self.mb.word(1), self.mb.word(2)]
    }

    /// `true` if the local hardware queue currently holds no arrived word.
    pub fn is_queue_empty(&mut self) -> bool {
        let kind = self.transact(OP_QEMPTY, &[]);
        debug_assert_eq!(kind, RESP_BOOL);
        self.mb.word(0) != 0
    }

    /// `true` if any word is queued for this core, *including words still
    /// in flight on the simulated wire*.
    ///
    /// Real hardware cannot see in-flight messages, but this simulator
    /// charges a fixed wire latency that real short-distance UDN messages
    /// do not pay; a drain loop that polled only arrived words would close
    /// combining rounds on that artifact. Use this for "should I keep
    /// serving?" checks and [`Ctx::is_queue_empty`] for faithful hardware
    /// probes.
    pub fn has_pending_traffic(&mut self) -> bool {
        let kind = self.transact(OP_QPEND, &[]);
        debug_assert_eq!(kind, RESP_BOOL);
        self.mb.word(0) != 0
    }

    /// Burns `cycles` of local computation.
    pub fn work(&mut self, cycles: u64) {
        if cycles > 0 {
            self.transact(OP_WORK, &[cycles]);
        }
    }

    /// Current simulated time in cycles (free).
    pub fn now(&mut self) -> u64 {
        // The engine piggybacks its clock on every response, and this
        // proc's virtual time cannot advance between that response and its
        // next request.
        self.mb.resp_clock()
    }

    /// Adds `v` to this proc's `metric` accumulator (free).
    pub fn record(&mut self, metric: Metric, v: u64) {
        self.metric_buf[metric as usize] += v;
        self.dirty_mask |= 1 << (metric as usize);
    }
}

#[derive(Debug)]
#[allow(dead_code)] // `dest` is carried for Debug diagnostics only
enum ProcState {
    /// Scheduled in the event heap; `pending` is delivered on resume.
    Runnable,
    /// Blocked on `receive(k)` since the given cycle.
    WaitRecv {
        k: usize,
        since: u64,
    },
    /// Blocked sending `words` to `dest` since the given cycle.
    WaitSend {
        dest: usize,
        words: Vec<u64>,
        since: u64,
    },
    Finished,
}

/// A response waiting to be delivered when its proc's event fires. Inline
/// payload as in the mailbox; only oversized receives allocate.
struct PendingResp {
    kind: u32,
    len: u32,
    words: [u64; INLINE_WORDS],
    overflow: Option<Vec<u64>>,
}

impl PendingResp {
    fn unit() -> Self {
        Self {
            kind: RESP_UNIT,
            len: 0,
            words: [0; INLINE_WORDS],
            overflow: None,
        }
    }

    fn value(v: u64) -> Self {
        let mut words = [0; INLINE_WORDS];
        words[0] = v;
        Self {
            kind: RESP_VALUE,
            len: 1,
            words,
            overflow: None,
        }
    }

    fn boolean(b: bool) -> Self {
        let mut words = [0; INLINE_WORDS];
        words[0] = b as u64;
        Self {
            kind: RESP_BOOL,
            len: 1,
            words,
            overflow: None,
        }
    }

    fn stopped() -> Self {
        Self {
            kind: RESP_STOPPED,
            len: 0,
            words: [0; INLINE_WORDS],
            overflow: None,
        }
    }
}

struct ProcSlot {
    state: ProcState,
    pending: Option<PendingResp>,
    mb: Arc<Mailbox>,
    join: Option<JoinHandle<()>>,
    stats: CoreStats,
    metrics: [u64; N_METRICS],
    panic_msg: Option<String>,
}

/// One core's hardware message queue: words with arrival times, plus the
/// back-pressured senders waiting for space.
struct SimQueue {
    words: VecDeque<(u64, u64)>, // (arrival cycle, value)
    blocked_senders: VecDeque<usize>,
}

/// The simulator: owns the machine state and the procs.
pub struct Engine {
    cfg: MachineConfig,
    mem: Memory,
    procs: Vec<ProcSlot>,
    queues: Vec<SimQueue>,
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    clock: u64,
    stopping: bool,
    host: HostStats,
}

impl Engine {
    /// Creates an engine for the given machine.
    pub fn new(cfg: MachineConfig) -> Self {
        install_quiet_stop_hook();
        let queues = (0..cfg.cores())
            .map(|_| SimQueue {
                words: VecDeque::new(),
                blocked_senders: VecDeque::new(),
            })
            .collect();
        Self {
            cfg,
            mem: Memory::new(cfg),
            procs: Vec::new(),
            queues,
            heap: BinaryHeap::new(),
            clock: 0,
            stopping: false,
            host: HostStats::default(),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Initializes a memory word before the run, without coherence effects
    /// or cycle charges (protocol state setup).
    pub fn preset_memory(&mut self, addr: Addr, v: u64) {
        self.mem.poke(addr, v);
    }

    /// Adds a proc pinned to the next free core (procs are pinned in
    /// ascending order, like the paper's thread placement). Returns the
    /// core index.
    ///
    /// # Panics
    ///
    /// Panics if all cores already have a proc.
    pub fn add_proc<F>(&mut self, f: F) -> usize
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        let core = self.procs.len();
        assert!(
            core < self.cfg.cores(),
            "machine has {} cores",
            self.cfg.cores()
        );
        let mb = Arc::new(Mailbox::new());
        let proc_mb = Arc::clone(&mb);
        let join = std::thread::Builder::new()
            .name(format!("simproc-{core}"))
            .spawn(move || {
                proc_mb.register_proc();
                let mut ctx = Ctx {
                    core,
                    mb: proc_mb,
                    metric_buf: [0; N_METRICS],
                    dirty_mask: 0,
                };
                let result = panic::catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
                if let Err(payload) = result {
                    let msg = if payload.downcast_ref::<StopSim>().is_some() {
                        None
                    } else if let Some(s) = payload.downcast_ref::<&str>() {
                        Some((*s).to_string())
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        Some(s.clone())
                    } else {
                        Some("proc panicked".to_string())
                    };
                    if let Some(msg) = msg {
                        ctx.mb.set_panic_note(msg);
                    }
                }
                // Records buffered after the last request (including by a
                // closure that then panicked) still ride with `Done`.
                ctx.flush_records();
                // The engine may already be gone if it panicked itself; the
                // poisoned mailbox refuses the publish and we just exit.
                let _ = ctx.mb.send_request(OP_DONE, &[]);
            })
            .expect("failed to spawn sim proc");
        self.procs.push(ProcSlot {
            state: ProcState::Runnable,
            pending: None,
            mb,
            join: Some(join),
            stats: CoreStats::default(),
            metrics: [0; N_METRICS],
            panic_msg: None,
        });
        self.heap.push(Reverse((0, core)));
        core
    }

    fn schedule(&mut self, proc: usize, at: u64, resp: PendingResp) {
        self.procs[proc].pending = Some(resp);
        self.procs[proc].state = ProcState::Runnable;
        self.heap.push(Reverse((at, proc)));
    }

    /// Charges a memory access to a core: `l1_hit` is useful work, the rest
    /// is a coherence stall.
    fn charge_mem(&mut self, proc: usize, latency: u64) {
        let useful = self.cfg.l1_hit.min(latency);
        self.procs[proc].stats.busy += useful;
        self.procs[proc].stats.stall += latency - useful;
        self.procs[proc].stats.mem_ops += 1;
    }

    /// Queue occupancy check: can `n` more words fit?
    fn queue_has_room(&self, dest: usize, n: usize) -> bool {
        self.queues[dest].words.len() + n <= self.cfg.queue_capacity
    }

    /// Deposits a message and wakes the destination's receiver if it is now
    /// satisfiable.
    fn deposit(&mut self, from: usize, dest: usize, words: &[u64], send_time: u64) {
        let arrival =
            send_time + self.cfg.send_inject + self.cfg.msg_wire_base + self.cfg.wire(from, dest);
        for &w in words {
            self.queues[dest].words.push_back((arrival, w));
        }
        self.procs[from].stats.msgs_sent += 1;
        self.try_wake_receiver(dest);
    }

    /// If the proc on `core` is blocked in `receive(k)` and k words are now
    /// queued, completes the receive.
    fn try_wake_receiver(&mut self, core: usize) {
        let (k, since) = match self.procs[core].state {
            ProcState::WaitRecv { k, since } => (k, since),
            _ => return,
        };
        if self.queues[core].words.len() < k {
            return;
        }
        self.complete_receive(core, k, since);
    }

    /// Pops `k` words for `core`'s proc and schedules its resume.
    fn complete_receive(&mut self, core: usize, k: usize, issued: u64) {
        let mut resp = PendingResp {
            kind: RESP_VALUES,
            len: k as u32,
            words: [0; INLINE_WORDS],
            overflow: None,
        };
        let mut big = if k > INLINE_WORDS {
            self.host.heap_fallbacks += 1;
            Some(Vec::with_capacity(k))
        } else {
            self.host.inline_payloads += 1;
            None
        };
        let mut last_arrival = issued;
        for i in 0..k {
            let (arr, v) = self.queues[core].words.pop_front().expect("checked len");
            last_arrival = last_arrival.max(arr);
            match &mut big {
                Some(vec) => vec.push(v),
                None => resp.words[i] = v,
            }
        }
        resp.overflow = big;
        let service = self.cfg.recv_base + self.cfg.recv_word * k as u64;
        let resume = last_arrival + service;
        let slot = &mut self.procs[core];
        slot.stats.busy += service;
        slot.stats.idle += last_arrival - issued;
        slot.stats.msgs_recv += 1;
        self.schedule(core, resume, resp);
        // Space freed: let blocked senders through (in arrival order).
        self.drain_blocked_senders(core, resume);
    }

    fn drain_blocked_senders(&mut self, dest: usize, now: u64) {
        while let Some(&sender) = self.queues[dest].blocked_senders.front() {
            let (words, since) = match &self.procs[sender].state {
                ProcState::WaitSend { words, since, .. } => (words.clone(), *since),
                _ => unreachable!("blocked sender not in WaitSend"),
            };
            if !self.queue_has_room(dest, words.len()) {
                break;
            }
            self.queues[dest].blocked_senders.pop_front();
            self.procs[sender].stats.idle += now.saturating_sub(since);
            self.procs[sender].stats.blocked_sends += 1;
            self.deposit(sender, dest, &words, now);
            let resume = now + self.cfg.send_inject;
            self.procs[sender].stats.busy += self.cfg.send_inject;
            self.schedule(sender, resume, PendingResp::unit());
        }
    }

    /// Services one decoded request. `words` holds the inline payload (the
    /// first `len` words when `len <= INLINE_WORDS`); oversized send
    /// payloads arrive in `overflow`.
    fn service(
        &mut self,
        proc: usize,
        op: u32,
        len: usize,
        words: &[u64; INLINE_WORDS],
        overflow: Option<Vec<u64>>,
    ) {
        let now = self.clock;
        match op {
            OP_READ => {
                let (v, acc) = self.mem.read(proc, words[0], now);
                self.charge_mem(proc, acc.latency);
                self.schedule(proc, now + acc.latency, PendingResp::value(v));
            }
            OP_WRITE => {
                let acc = self.mem.write(proc, words[0], words[1], now);
                self.charge_mem(proc, acc.latency);
                self.schedule(proc, now + acc.latency, PendingResp::unit());
            }
            OP_FAA => {
                let d = words[1];
                let (old, acc) = self.mem.atomic(proc, words[0], now, |v| v.wrapping_add(d));
                self.charge_mem(proc, acc.latency);
                self.schedule(proc, now + acc.latency, PendingResp::value(old));
            }
            OP_CAS => {
                let (expect, new) = (words[1], words[2]);
                let mut ok = false;
                let (_, acc) = self.mem.atomic(proc, words[0], now, |v| {
                    if v == expect {
                        ok = true;
                        new
                    } else {
                        v
                    }
                });
                self.charge_mem(proc, acc.latency);
                self.schedule(proc, now + acc.latency, PendingResp::value(ok as u64));
            }
            OP_SWAP => {
                let new = words[1];
                let (old, acc) = self.mem.atomic(proc, words[0], now, |_| new);
                self.charge_mem(proc, acc.latency);
                self.schedule(proc, now + acc.latency, PendingResp::value(old));
            }
            OP_SEND => {
                let dest = words[0] as usize;
                // Inline payload: [dest, msg...]; oversized: msg on heap.
                let msg: &[u64] = match &overflow {
                    Some(big) => {
                        self.host.heap_fallbacks += 1;
                        big
                    }
                    None => {
                        self.host.inline_payloads += 1;
                        &words[1..len]
                    }
                };
                assert!(dest < self.queues.len(), "send to core {dest} out of range");
                assert!(
                    msg.len() <= self.cfg.queue_capacity,
                    "message larger than a hardware queue"
                );
                if self.queue_has_room(dest, msg.len()) {
                    // `msg` borrows the caller's stack copy / the local
                    // overflow vec, never `self`, so it can cross these
                    // `&mut self` calls.
                    self.deposit(proc, dest, msg, now);
                    self.procs[proc].stats.busy += self.cfg.send_inject;
                    self.schedule(proc, now + self.cfg.send_inject, PendingResp::unit());
                } else {
                    let owned = match overflow {
                        Some(big) => big,
                        None => words[1..len].to_vec(),
                    };
                    self.procs[proc].state = ProcState::WaitSend {
                        dest,
                        words: owned,
                        since: now,
                    };
                    self.queues[dest].blocked_senders.push_back(proc);
                }
            }
            OP_RECV => {
                let k = words[0] as usize;
                assert!(
                    k > 0 && k <= self.cfg.queue_capacity,
                    "bad receive size {k}"
                );
                if self.queues[proc].words.len() >= k {
                    self.complete_receive(proc, k, now);
                } else {
                    self.procs[proc].state = ProcState::WaitRecv { k, since: now };
                }
            }
            OP_QEMPTY => {
                let empty = self.queues[proc]
                    .words
                    .front()
                    .map(|&(arr, _)| arr > now)
                    .unwrap_or(true);
                self.procs[proc].stats.busy += self.cfg.queue_probe;
                self.schedule(
                    proc,
                    now + self.cfg.queue_probe,
                    PendingResp::boolean(empty),
                );
            }
            OP_QPEND => {
                let pending = !self.queues[proc].words.is_empty();
                self.procs[proc].stats.busy += self.cfg.queue_probe;
                self.schedule(
                    proc,
                    now + self.cfg.queue_probe,
                    PendingResp::boolean(pending),
                );
            }
            OP_WORK => {
                let cycles = words[0];
                self.procs[proc].stats.busy += cycles;
                self.schedule(proc, now + cycles, PendingResp::unit());
            }
            OP_DONE => {
                self.procs[proc].panic_msg = self.procs[proc].mb.take_panic_note();
                self.procs[proc].state = ProcState::Finished;
            }
            other => unreachable!("unknown opcode {other}"),
        }
    }

    /// Blocks for `proc`'s next request and services it.
    fn recv_and_service(&mut self, proc: usize) {
        let (op, len) = self.procs[proc].mb.wait_request();
        self.host.handoffs += 1;
        self.apply_staged_records(proc);
        let mut words = [0u64; INLINE_WORDS];
        let overflow = if len > INLINE_WORDS {
            // Oversized send: only word 0 (the destination) is inline.
            words[0] = self.procs[proc].mb.word(0);
            Some(
                self.procs[proc]
                    .mb
                    .take_overflow()
                    .expect("oversized request payload"),
            )
        } else {
            for (i, w) in words.iter_mut().enumerate().take(len) {
                *w = self.procs[proc].mb.word(i);
            }
            None
        };
        self.service(proc, op, len, &words, overflow);
    }

    /// Applies the metric deltas that rode in with a just-received request.
    /// These were issued strictly before the request, so they count even if
    /// the request itself ends up answered with `Stopped`.
    fn apply_staged_records(&mut self, proc: usize) {
        let slot = &mut self.procs[proc];
        let metrics = &mut slot.metrics;
        slot.mb
            .drain_records(|i, d| metrics[Metric::from_index(i) as usize] += d);
    }

    /// Forces every blocked proc runnable with a `Stopped` response.
    fn force_stop_blocked(&mut self) {
        for i in 0..self.procs.len() {
            match self.procs[i].state {
                ProcState::WaitRecv { .. } | ProcState::WaitSend { .. } => {
                    self.schedule(i, self.clock, PendingResp::stopped());
                }
                _ => {}
            }
        }
        for q in &mut self.queues {
            q.blocked_senders.clear();
        }
    }

    /// Runs the simulation until every proc finished or `horizon` cycles
    /// elapsed, and returns the collected statistics.
    ///
    /// # Panics
    ///
    /// Panics if a proc panicked (test failures propagate), or on deadlock
    /// (all procs blocked before the horizon).
    pub fn run(mut self, horizon: u64) -> SimResult {
        for p in &self.procs {
            p.mb.register_engine();
        }
        loop {
            if self
                .procs
                .iter()
                .all(|p| matches!(p.state, ProcState::Finished))
            {
                break;
            }
            let Some(Reverse((t, proc))) = self.heap.pop() else {
                // No event pending. Either procs are mid-teardown (wait for
                // their Done), or every remaining proc is blocked with no
                // event that could ever wake it — quiescence; stop them.
                if self.stopping {
                    self.reap_done();
                } else {
                    self.stopping = true;
                    self.force_stop_blocked();
                }
                continue;
            };
            if matches!(self.procs[proc].state, ProcState::Finished) {
                continue;
            }
            self.clock = self.clock.max(t);
            if self.clock >= horizon && !self.stopping {
                self.stopping = true;
                self.force_stop_blocked();
            }
            // Deliver the pending response, if any (at the very first
            // activation there is none: the proc starts by *sending* its
            // first request). Under teardown, whatever was pending is
            // replaced by Stopped.
            if let Some(pending) = self.procs[proc].pending.take() {
                let resp = if self.stopping {
                    PendingResp::stopped()
                } else {
                    pending
                };
                let mb = &self.procs[proc].mb;
                mb.set_resp_clock(self.clock);
                match resp.overflow {
                    Some(big) => mb.send_response_big(resp.kind, big),
                    None => mb.send_response(resp.kind, &resp.words[..resp.len as usize]),
                }
            }
            self.recv_and_service(proc);
        }
        self.finish(horizon)
    }

    /// Collects `Done` notifications from procs that are unwinding after a
    /// forced stop.
    fn reap_done(&mut self) {
        for i in 0..self.procs.len() {
            if matches!(self.procs[i].state, ProcState::Finished) {
                continue;
            }
            let (op, _) = self.procs[i].mb.wait_request();
            self.host.handoffs += 1;
            self.apply_staged_records(i);
            if op == OP_DONE {
                self.procs[i].panic_msg = self.procs[i].mb.take_panic_note();
                self.procs[i].state = ProcState::Finished;
            } else {
                // The proc raced one more request in before seeing the
                // stop; answer Stopped and let it unwind (the outer loop
                // comes back for its Done).
                let _ = self.procs[i].mb.take_overflow();
                self.procs[i].mb.send_response(RESP_STOPPED, &[]);
            }
        }
    }

    fn finish(mut self, horizon: u64) -> SimResult {
        for p in &mut self.procs {
            if let Some(j) = p.join.take() {
                let _ = j.join();
            }
        }
        let mut panics: Vec<String> = Vec::new();
        for (i, p) in self.procs.iter().enumerate() {
            if let Some(msg) = &p.panic_msg {
                panics.push(format!("proc {i}: {msg}"));
            }
        }
        assert!(panics.is_empty(), "sim procs panicked: {panics:?}");

        let per_core: Vec<CoreStats> = self
            .procs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut s = p.stats;
                s.rmrs = self.mem.rmrs(i);
                s.atomics = self.mem.atomics(i);
                s
            })
            .collect();
        let metrics = self.procs.iter().map(|p| p.metrics).collect();
        let mut host = self.host;
        for p in &self.procs {
            host.proc_parks += p.mb.proc_park_count();
            host.engine_parks += p.mb.engine_park_count();
        }
        SimResult {
            cfg: self.cfg,
            cycles: self.clock.min(horizon).max(1),
            end_clock: self.clock,
            per_core,
            metrics,
            host,
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Normal completion joins every proc before the engine drops, so
        // this only matters when the engine unwinds mid-run (its own panic,
        // or a propagated proc panic): procs parked in their mailboxes must
        // be woken and told the engine is gone or they would wait forever.
        for p in &self.procs {
            p.mb.poison();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Metric;

    fn small_cfg() -> MachineConfig {
        MachineConfig {
            rows: 2,
            cols: 2,
            ..MachineConfig::tile_gx8036()
        }
    }

    #[test]
    fn single_proc_memory_ops() {
        let mut e = Engine::new(small_cfg());
        e.add_proc(|ctx| {
            ctx.write(10, 5);
            assert_eq!(ctx.read(10), 5);
            assert_eq!(ctx.faa(10, 3), 5);
            assert_eq!(ctx.read(10), 8);
            assert!(ctx.cas(10, 8, 20));
            assert!(!ctx.cas(10, 8, 30));
            assert_eq!(ctx.swap(10, 1), 20);
            ctx.record(Metric::Ops, 1);
        });
        let r = e.run(1_000_000);
        assert_eq!(r.metrics[0][Metric::Ops as usize], 1);
        assert!(r.per_core[0].busy > 0);
    }

    #[test]
    fn two_procs_message_roundtrip() {
        let mut e = Engine::new(small_cfg());
        e.add_proc(|ctx| {
            // Server on core 0.
            let m = ctx.receive3();
            assert_eq!(m, [1, 42, 7]);
            ctx.send(1, &[m[1] + m[2]]);
        });
        e.add_proc(|ctx| {
            ctx.send(0, &[1, 42, 7]);
            assert_eq!(ctx.receive1(), 49);
            ctx.record(Metric::Ops, 1);
        });
        let r = e.run(100_000);
        assert_eq!(r.metrics[1][Metric::Ops as usize], 1);
        assert_eq!(r.per_core[0].msgs_recv, 1);
        assert_eq!(r.per_core[0].msgs_sent, 1);
    }

    #[test]
    fn horizon_stops_infinite_loops() {
        let mut e = Engine::new(small_cfg());
        e.add_proc(|ctx| loop {
            ctx.work(10);
            ctx.record(Metric::Ops, 1);
        });
        // A receiver that never gets a message: must be torn down too.
        e.add_proc(|ctx| {
            ctx.receive1();
            unreachable!("no one sends to core 1");
        });
        let r = e.run(5_000);
        let ops = r.metrics[0][Metric::Ops as usize];
        assert!((490..=510).contains(&ops), "ops {ops}");
        assert_eq!(r.cycles, 5_000);
    }

    #[test]
    fn deterministic_same_seed_same_result() {
        fn run_once() -> (u64, u64) {
            let mut e = Engine::new(small_cfg());
            for p in 0..4 {
                e.add_proc(move |ctx| {
                    use rand::{rngs::StdRng, Rng, SeedableRng};
                    let mut rng = StdRng::seed_from_u64(33 + p as u64);
                    loop {
                        ctx.work(rng.gen_range(0..50));
                        ctx.faa(7, 1);
                        ctx.record(Metric::Ops, 1);
                    }
                });
            }
            let r = e.run(20_000);
            let ops: u64 = r.metrics.iter().map(|m| m[Metric::Ops as usize]).sum();
            let stalls: u64 = r.per_core.iter().map(|c| c.stall).sum();
            (ops, stalls)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn backpressure_blocks_sender() {
        let cfg = MachineConfig {
            queue_capacity: 4,
            ..small_cfg()
        };
        let mut e = Engine::new(cfg);
        e.add_proc(|ctx| {
            // Receiver: wait long, then drain.
            ctx.work(10_000);
            for _ in 0..10 {
                ctx.receive1();
            }
        });
        e.add_proc(|ctx| {
            for i in 0..10 {
                ctx.send(0, &[i]); // must block after the queue fills
            }
            ctx.record(Metric::Ops, 1);
        });
        let r = e.run(1_000_000);
        assert_eq!(r.metrics[1][Metric::Ops as usize], 1);
        assert!(r.per_core[1].blocked_sends > 0, "sender never blocked");
        assert!(r.per_core[1].idle > 0);
    }

    #[test]
    fn quiescent_blocked_proc_is_torn_down() {
        let mut e = Engine::new(small_cfg());
        e.add_proc(|ctx| {
            ctx.receive1(); // nobody ever sends
            unreachable!("must be stopped, not satisfied");
        });
        e.add_proc(|ctx| {
            ctx.work(100);
            ctx.record(Metric::Ops, 1);
        });
        // Even with an effectively infinite horizon the run terminates once
        // no event can ever wake the blocked receiver.
        let r = e.run(u64::MAX / 2);
        assert_eq!(r.metrics[1][Metric::Ops as usize], 1);
    }

    #[test]
    fn proc_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let mut e = Engine::new(small_cfg());
            e.add_proc(|ctx| {
                ctx.work(5);
                panic!("boom from sim proc");
            });
            e.run(1_000);
        });
        assert!(result.is_err());
    }

    #[test]
    fn is_queue_empty_sees_arrivals_only() {
        let mut e = Engine::new(small_cfg());
        e.add_proc(|ctx| {
            // Wait until the message must have arrived.
            ctx.work(1_000);
            assert!(!ctx.is_queue_empty());
            assert_eq!(ctx.receive1(), 9);
            assert!(ctx.is_queue_empty());
        });
        e.add_proc(|ctx| {
            ctx.send(0, &[9]);
        });
        e.run(100_000);
    }

    #[test]
    fn host_stats_count_handoffs_and_inline_payloads() {
        let mut e = Engine::new(small_cfg());
        e.add_proc(|ctx| {
            let m = ctx.receive3();
            ctx.send(1, &[m[0] + m[1] + m[2]]);
        });
        e.add_proc(|ctx| {
            ctx.send(0, &[1, 2, 3]);
            assert_eq!(ctx.receive1(), 6);
        });
        let r = e.run(100_000);
        // 2 sends + 2 receives + 2 Done, at least.
        assert!(r.host.handoffs >= 6, "handoffs {}", r.host.handoffs);
        // Both sends and both receive-responses fit inline.
        assert_eq!(r.host.heap_fallbacks, 0);
        assert!(
            r.host.inline_payloads >= 4,
            "inline {}",
            r.host.inline_payloads
        );
    }

    #[test]
    fn oversized_receive_falls_back_to_heap() {
        let cfg = MachineConfig {
            queue_capacity: 64,
            ..small_cfg()
        };
        let mut e = Engine::new(cfg);
        e.add_proc(|ctx| {
            let words = ctx.receive(10);
            assert_eq!(words, (0..10u64).collect::<Vec<_>>());
            ctx.record(Metric::Ops, 1);
        });
        e.add_proc(|ctx| {
            let msg: Vec<u64> = (0..10).collect();
            ctx.send(0, &msg);
        });
        let r = e.run(100_000);
        assert_eq!(r.metrics[0][Metric::Ops as usize], 1);
        // The 10-word send and the 10-word response both exceed the inline
        // buffer.
        assert!(
            r.host.heap_fallbacks >= 2,
            "fallbacks {}",
            r.host.heap_fallbacks
        );
    }
}
