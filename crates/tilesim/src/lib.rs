//! `tilesim` — a discrete-event simulator of a TILE-Gx-like *hybrid*
//! manycore: cache-coherent shared memory plus per-core hardware message
//! queues.
//!
//! The PPoPP'14 paper this repository reproduces evaluates its
//! synchronization constructions on real TILE-Gx8036 silicon, using per-core
//! event counters to attribute CPU stalls to the cache coherence protocol.
//! Without that hardware, the only way to regenerate the paper's
//! *quantitative* results — throughput crossovers, stall breakdowns,
//! combining-rate dynamics — is to simulate the mechanisms they arise from.
//! This crate does exactly that:
//!
//! * a 6×6 **mesh** with hop-proportional communication latencies
//!   ([`MachineConfig`]);
//! * a directory-based **coherence protocol** maintaining the
//!   single-writer/multiple-reader invariant of the paper's §2 model, with
//!   every remote memory reference (RMR) charged to the issuing core as a
//!   stall ([`mem`]);
//! * **atomics executed at two memory controllers** — the TILE-Gx property
//!   behind the paper's observations about single-thread HYBCOMB latency
//!   (§5.3) and LCRQ's false serialization (§5.4);
//! * **hardware message queues** with asynchronous sends, local-buffer
//!   receives, 118-word capacity and back-pressure;
//! * a deterministic discrete-event **engine** ([`Engine`]) that runs
//!   simulated threads written as ordinary Rust closures;
//! * simulator implementations of MP-SERVER, HYBCOMB, SHM-SERVER and
//!   CC-SYNCH ([`algos`]), of the nonblocking LCRQ/Treiber comparators
//!   ([`nonblocking`]), and of every workload in the paper's evaluation
//!   ([`workload`]).
//!
//! The simulator implements the paper's formal model (sequentially
//! consistent memory, bounded-but-unknown message delivery), so the *shape*
//! of each figure emerges from the same mechanisms the paper identifies.
//! Absolute cycle numbers are calibrated to the paper's magnitudes, not to
//! real silicon.
//!
//! # Example: two cores, one message
//!
//! ```
//! use tilesim::{Engine, MachineConfig, Metric};
//!
//! let mut e = Engine::new(MachineConfig::tile_gx8036());
//! e.add_proc(|ctx| {
//!     let [sender, op, arg] = ctx.receive3();
//!     assert_eq!((op, arg), (1, 41));
//!     ctx.send(sender as usize, &[arg + 1]);
//! });
//! e.add_proc(|ctx| {
//!     ctx.send(0, &[ctx.core() as u64, 1, 41]);
//!     assert_eq!(ctx.receive1(), 42);
//!     ctx.record(Metric::Ops, 1);
//! });
//! let result = e.run(100_000);
//! assert_eq!(result.metric_sum(Metric::Ops), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algos;
mod config;
mod engine;
mod mailbox;
pub mod mem;
pub mod nonblocking;
mod stats;
pub mod workload;

pub use config::MachineConfig;
pub use engine::{Ctx, Engine};
pub use mem::{line_of, Addr, WORDS_PER_LINE};
pub use stats::{
    lat_bucket, lat_bucket_bound, CoreStats, HostStats, Metric, SimResult, LAT_BUCKETS, N_METRICS,
};
