//! Machine configuration: topology and latency parameters.
//!
//! Defaults approximate the TILE-Gx8036 the paper evaluates on (36 cores at
//! 1.2 GHz on a 6×6 mesh, two memory controllers executing atomic
//! instructions, per-core hardware message buffers of 118 words). The cycle
//! costs are calibrated so that the *magnitudes* the paper reports emerge —
//! ~10 cycles per operation on an MP-SERVER under load, ~50 on the
//! shared-memory servers with more than half of them stalls (Figure 4a) —
//! without claiming cycle-accuracy for the real chip.

/// Simulator cycle counts and machine shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Mesh rows.
    pub rows: usize,
    /// Mesh columns.
    pub cols: usize,
    /// Clock frequency in Hz, used only to convert cycles to ops/second
    /// (TILE-Gx8036: 1.2 GHz).
    pub freq_hz: f64,

    /// Cycles for a load/store that hits the local cache.
    pub l1_hit: u64,
    /// Base cycles of any remote memory reference (directory lookup etc.),
    /// on top of the hop-proportional part.
    pub rmr_base: u64,
    /// Cycles per mesh hop (one way).
    pub hop: u64,
    /// Extra cycles when an RMR must invalidate or fetch from another
    /// core's cache (owner forwarding / invalidation round).
    pub coherence_extra: u64,
    /// Serialization at a line's *home tile* per directory transaction
    /// (miss service or invalidation). A line hammered by many cores
    /// queues at its home — the mechanism that collapses CAS-retry
    /// structures (Treiber's top) without affecting distributed traffic.
    pub dir_occupancy: u64,

    /// Base latency of one atomic operation at a memory controller, on top
    /// of travel and queuing (TILE-Gx executes FAA/CAS/SWAP at the
    /// controllers, not in the local cache — §5.3, §5.4).
    pub ctrl_op: u64,
    /// Controller serialization (occupancy) when an atomic hits the *same*
    /// line as the previous atomic at that controller — the streaming fast
    /// path that lets HYBCOMB's single `n_ops` line absorb one FAA every
    /// handful of cycles.
    pub ctrl_occupancy_same: u64,
    /// Controller serialization when an atomic targets a *different* line
    /// than the previous one — the paper's §5.4 "false serialization": "two
    /// atomic instructions might collide on the memory controller even if
    /// they have independent data sets", which is what flattens LCRQ on
    /// this machine.
    pub ctrl_occupancy_switch: u64,
    /// Number of memory controllers (TILE-Gx8036: 2).
    pub controllers: usize,

    /// Cycles to inject a message into the network (asynchronous send).
    pub send_inject: u64,
    /// Fixed wire latency of a message between cores, on top of the
    /// hop-proportional part (serialization through the UDN, packetization).
    /// Affects delivery time only — the sender does not wait for it.
    pub msg_wire_base: u64,
    /// Fixed cycles of a `receive` that finds its words ready.
    pub recv_base: u64,
    /// Additional cycles per received word.
    pub recv_word: u64,
    /// Cycles of an `is_queue_empty` check (local buffer probe).
    pub queue_probe: u64,
    /// Capacity of a core's hardware message queue, in words (TILE-Gx: 118).
    pub queue_capacity: usize,

    /// Cycles per iteration of the benchmark's local-work loop (§5.2: "a
    /// random number of empty loop iterations (at most 50)").
    pub work_iter: u64,
}

impl MachineConfig {
    /// The TILE-Gx8036-like default machine.
    pub fn tile_gx8036() -> Self {
        Self {
            rows: 6,
            cols: 6,
            freq_hz: 1.2e9,
            l1_hit: 2,
            rmr_base: 1,
            hop: 1,
            coherence_extra: 3,
            dir_occupancy: 10,
            ctrl_op: 18,
            ctrl_occupancy_same: 8,
            ctrl_occupancy_switch: 30,
            controllers: 2,
            send_inject: 2,
            msg_wire_base: 12,
            recv_base: 2,
            recv_word: 1,
            queue_probe: 1,
            queue_capacity: 118,
            work_iter: 3,
        }
    }

    /// A machine with x86-like remote-reference costs (§5.5: proportionally
    /// more stalls per operation than the TILE-Gx), for the `tab-x86`
    /// sensitivity experiment.
    pub fn x86_like() -> Self {
        Self {
            rmr_base: 35,
            coherence_extra: 20,
            dir_occupancy: 10,
            ctrl_op: 12,
            ctrl_occupancy_same: 6,
            ctrl_occupancy_switch: 10,
            ..Self::tile_gx8036()
        }
    }

    /// Number of cores on the mesh.
    pub fn cores(&self) -> usize {
        self.rows * self.cols
    }

    /// Mesh coordinates of a core.
    pub fn coords(&self, core: usize) -> (usize, usize) {
        (core / self.cols, core % self.cols)
    }

    /// Manhattan hop distance between two cores.
    pub fn hops(&self, a: usize, b: usize) -> u64 {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        (ar.abs_diff(br) + ac.abs_diff(bc)) as u64
    }

    /// Hop distance from a core to a memory controller. The controllers sit
    /// at the middle of the left and right chip edges.
    pub fn hops_to_controller(&self, core: usize, ctrl: usize) -> u64 {
        let (r, c) = self.coords(core);
        let ctrl_row = self.rows / 2;
        let ctrl_col_dist = if ctrl.is_multiple_of(2) {
            c + 1 // left edge
        } else {
            self.cols - c // right edge
        };
        (r.abs_diff(ctrl_row) + ctrl_col_dist) as u64
    }

    /// One-way wire latency between two cores.
    pub fn wire(&self, a: usize, b: usize) -> u64 {
        self.hop * self.hops(a, b)
    }

    /// Converts an operation count over a cycle span to Mops/second at the
    /// configured frequency.
    pub fn mops(&self, ops: u64, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        ops as f64 / (cycles as f64 / self.freq_hz) / 1e6
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::tile_gx8036()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_defaults_shape() {
        let c = MachineConfig::tile_gx8036();
        assert_eq!(c.cores(), 36);
        assert_eq!(c.coords(0), (0, 0));
        assert_eq!(c.coords(35), (5, 5));
        assert_eq!(c.coords(7), (1, 1));
    }

    #[test]
    fn hops_are_manhattan() {
        let c = MachineConfig::tile_gx8036();
        assert_eq!(c.hops(0, 0), 0);
        assert_eq!(c.hops(0, 35), 10);
        assert_eq!(c.hops(0, 1), 1);
        assert_eq!(c.hops(0, 6), 1);
        assert_eq!(c.hops(7, 14), 2);
    }

    #[test]
    fn controller_distances_differ_by_edge() {
        let c = MachineConfig::tile_gx8036();
        // Core 12 is at (2, 0): immediately next to the left edge.
        assert!(c.hops_to_controller(12, 0) < c.hops_to_controller(12, 1));
        // Core 17 is at (2, 5): right edge.
        assert!(c.hops_to_controller(17, 1) < c.hops_to_controller(17, 0));
    }

    #[test]
    fn mops_conversion() {
        let c = MachineConfig::tile_gx8036();
        // 1.2e9 cycles = 1 second; 120e6 ops in 1 s = 120 Mops/s.
        let m = c.mops(120_000_000, 1_200_000_000);
        assert!((m - 120.0).abs() < 1e-9);
        assert_eq!(c.mops(5, 0), 0.0);
    }
}
