//! Ready-made workload runners for every experiment in the paper's §5.
//!
//! Each function builds an [`Engine`], installs one construction with the
//! right critical-section body and op generator, runs it for `horizon`
//! simulated cycles, and returns the [`SimResult`] from which the figure's
//! y-values derive. The `repro` binary in `mpsync-bench` sweeps these over
//! the papers' x-axes.

use crate::algos::{
    install_cc_synch, install_cc_synch_fixed, install_hybcomb, install_hybcomb_fixed, install_lock,
    install_mp_server, install_shm_server, AddrAlloc, Approach, CsBody, HybOptions, LockKind,
    OpGen, RunSpec,
};
use crate::engine::Engine;
use crate::nonblocking::{install_lcrq, install_treiber};
use crate::stats::{Metric, SimResult};
use crate::MachineConfig;

/// Default simulation horizon per data point, in cycles. Long enough for
/// tens of thousands of operations — the simulator is deterministic, so no
/// averaging over repeated runs is needed.
pub const DEFAULT_HORIZON: u64 = 300_000;

/// Ring capacity used by sequential queue/stack bodies (bounds in-flight
/// occupancy under the balanced workload).
const NODE_RING: u64 = 1024;

fn install(engine: &mut Engine, approach: Approach, spec: RunSpec, alloc: &mut AddrAlloc) {
    match approach {
        Approach::MpServer => {
            install_mp_server(engine, spec);
        }
        Approach::ShmServer => {
            install_shm_server(engine, spec, alloc);
        }
        Approach::HybComb => install_hybcomb(engine, spec, alloc, HybOptions::default()),
        Approach::CcSynch => install_cc_synch(engine, spec, alloc),
    }
}

/// Maximum application-thread count for an approach on the given machine
/// (servers occupy extra cores, as on the paper's testbed).
pub fn max_threads(cfg: &MachineConfig, approach: Approach) -> usize {
    match approach {
        Approach::MpServer | Approach::ShmServer => cfg.cores() - 1,
        Approach::HybComb | Approach::CcSynch => cfg.cores(),
    }
}

/// §5.3 concurrent counter (Figures 3a, 3b, 3c and the in-text CAS and
/// fairness numbers).
pub fn run_counter(
    cfg: MachineConfig,
    approach: Approach,
    threads: usize,
    max_ops: u64,
    horizon: u64,
    seed: u64,
) -> SimResult {
    let mut alloc = AddrAlloc::new();
    let mut spec = RunSpec::counter(threads, max_ops, &mut alloc);
    spec.seed = seed;
    let mut e = Engine::new(cfg);
    install(&mut e, approach, spec, &mut alloc);
    e.run(horizon)
}

/// Figure 4a's fixed-combiner counter runs (`MAX_OPS = ∞` for the
/// combining approaches; the servers are unchanged).
pub fn run_counter_fixed(
    cfg: MachineConfig,
    approach: Approach,
    threads: usize,
    horizon: u64,
    seed: u64,
) -> SimResult {
    let mut alloc = AddrAlloc::new();
    let mut spec = RunSpec::counter(threads, 200, &mut alloc);
    spec.seed = seed;
    let mut e = Engine::new(cfg);
    match approach {
        Approach::MpServer => {
            install_mp_server(&mut e, spec);
        }
        Approach::ShmServer => {
            install_shm_server(&mut e, spec, &mut alloc);
        }
        Approach::HybComb => install_hybcomb_fixed(&mut e, spec, &mut alloc, HybOptions::default()),
        Approach::CcSynch => install_cc_synch_fixed(&mut e, spec, &mut alloc),
    }
    e.run(horizon)
}

/// HYBCOMB with explicit options (the `abl-swap` / `abl-nodrain`
/// ablations).
pub fn run_counter_hybcomb_opts(
    cfg: MachineConfig,
    threads: usize,
    max_ops: u64,
    horizon: u64,
    seed: u64,
    opts: HybOptions,
) -> SimResult {
    let mut alloc = AddrAlloc::new();
    let mut spec = RunSpec::counter(threads, max_ops, &mut alloc);
    spec.seed = seed;
    let mut e = Engine::new(cfg);
    install_hybcomb(&mut e, spec, &mut alloc, opts);
    e.run(horizon)
}

/// Extension experiment `ext-locks`: the counter workload under a classical
/// spin lock (§3's context — what delegation/combining improve on).
pub fn run_counter_lock(
    cfg: MachineConfig,
    kind: LockKind,
    threads: usize,
    horizon: u64,
    seed: u64,
) -> SimResult {
    let mut alloc = AddrAlloc::new();
    let mut spec = RunSpec::counter(threads, 1, &mut alloc);
    spec.seed = seed;
    let mut e = Engine::new(cfg);
    install_lock(&mut e, spec, kind, &mut alloc);
    e.run(horizon)
}

/// Figure 4c: critical sections of `iters` array-increment iterations.
pub fn run_array(
    cfg: MachineConfig,
    approach: Approach,
    threads: usize,
    iters: u64,
    max_ops: u64,
    horizon: u64,
    seed: u64,
) -> SimResult {
    let mut alloc = AddrAlloc::new();
    let len = 16u64;
    let body = CsBody::Array {
        base: alloc.lines(len),
        len,
    };
    let spec = RunSpec {
        threads,
        max_ops,
        body,
        opgen: OpGen::Fixed { op: 0, arg: iters },
        seed,
        max_local_work: 50,
    };
    let mut e = Engine::new(cfg);
    install(&mut e, approach, spec, &mut alloc);
    e.run(horizon)
}

/// Cycles the CS body alone takes for `iters` array iterations (Figure 4c's
/// "ideal" dash-dot line): each iteration is a read and a write hitting the
/// local cache.
pub fn array_ideal_cycles(cfg: &MachineConfig, iters: u64) -> u64 {
    2 * cfg.l1_hit * iters
}

/// Figure 5a, single-lock MS-queue configuration: a sequential FIFO under
/// one construction, balanced enqueue/dequeue load.
pub fn run_queue_onelock(
    cfg: MachineConfig,
    approach: Approach,
    threads: usize,
    max_ops: u64,
    horizon: u64,
    seed: u64,
) -> SimResult {
    let mut alloc = AddrAlloc::new();
    let body = CsBody::SeqQueue {
        head: alloc.line(),
        tail: alloc.line(),
        nodes: alloc.lines(NODE_RING),
        len: NODE_RING,
    };
    let spec = RunSpec {
        threads,
        max_ops,
        body,
        opgen: OpGen::Alternate {
            ops: [(0, 7), (1, 0)],
        },
        seed,
        max_local_work: 50,
    };
    let mut e = Engine::new(cfg);
    install(&mut e, approach, spec, &mut alloc);
    e.run(horizon)
}

/// Figure 5a's `mp-server-2`: the two-lock MS queue with one MP-SERVER per
/// lock (enqueue server on core 0, dequeue server on core 1).
pub fn run_queue_mp2(cfg: MachineConfig, threads: usize, horizon: u64, seed: u64) -> SimResult {
    let mut alloc = AddrAlloc::new();
    let nodes = alloc.lines(NODE_RING);
    let tail = alloc.line();
    let alloc_ctr = alloc.line();
    let head = alloc.line();
    let enq_body = CsBody::TwoLockEnq {
        tail,
        alloc: alloc_ctr,
        nodes,
        len: NODE_RING,
    };
    let deq_body = CsBody::TwoLockDeq {
        head,
        nodes,
        len: NODE_RING,
    };

    let mut e = Engine::new(cfg);
    // Dummy node is ring slot 0; allocation cursor starts after it.
    e.preset_memory(tail, 0);
    e.preset_memory(head, 0);
    e.preset_memory(alloc_ctr, 1);

    let enq_server = e.add_proc(move |ctx| crate::algos::serve_body(ctx, enq_body));
    let deq_server = e.add_proc(move |ctx| crate::algos::serve_body(ctx, deq_body));
    for _ in 0..threads {
        e.add_proc(move |ctx| {
            let mut rng = crate::algos::client_rng(seed, ctx.core());
            let me = ctx.core() as u64;
            let mut i = 0u64;
            loop {
                let (server, op, arg) = if i.is_multiple_of(2) {
                    (enq_server, 0u64, 7u64)
                } else {
                    (deq_server, 1u64, 0u64)
                };
                let t0 = ctx.now();
                ctx.send(server, &[me, op, arg]);
                ctx.receive1();
                crate::algos::record_op(ctx, t0);
                crate::algos::local_work(ctx, &mut rng, 50, 1);
                i += 1;
            }
        });
    }
    e.run(horizon)
}

/// Extension experiment `ext-imbalance`: the one-lock queue under an
/// *asymmetric* mix — `enq_per_4` of every four operations are enqueues
/// (1 = dequeue-heavy, so the queue hovers near empty and most dequeues
/// fail; 3 = enqueue-heavy, so it drifts toward full). The paper evaluates
/// balanced load only; this probes the constructions away from that sweet
/// spot.
pub fn run_queue_mixed(
    cfg: MachineConfig,
    approach: Approach,
    threads: usize,
    enq_per_4: usize,
    max_ops: u64,
    horizon: u64,
    seed: u64,
) -> SimResult {
    assert!(
        (1..=3).contains(&enq_per_4),
        "mix must be 1..=3 enqueues per 4 ops"
    );
    let mut alloc = AddrAlloc::new();
    let body = CsBody::SeqQueue {
        head: alloc.line(),
        tail: alloc.line(),
        nodes: alloc.lines(NODE_RING),
        len: NODE_RING,
    };
    let mut ops = [(1u64, 0u64); 4]; // default: dequeue
    for slot in ops.iter_mut().take(enq_per_4) {
        *slot = (0, 7); // enqueue
    }
    let spec = RunSpec {
        threads,
        max_ops,
        body,
        opgen: OpGen::Cycle { ops, len: 4 },
        seed,
        max_local_work: 50,
    };
    let mut e = Engine::new(cfg);
    install(&mut e, approach, spec, &mut alloc);
    e.run(horizon)
}

/// Figure 5a's LCRQ line.
pub fn run_queue_lcrq(cfg: MachineConfig, threads: usize, horizon: u64, seed: u64) -> SimResult {
    let mut alloc = AddrAlloc::new();
    let mut e = Engine::new(cfg);
    install_lcrq(&mut e, threads, NODE_RING, seed, 50, &mut alloc);
    e.run(horizon)
}

/// Figure 5b: a sequential stack under one construction, balanced
/// push/pop load.
pub fn run_stack(
    cfg: MachineConfig,
    approach: Approach,
    threads: usize,
    max_ops: u64,
    horizon: u64,
    seed: u64,
) -> SimResult {
    let mut alloc = AddrAlloc::new();
    let body = CsBody::SeqStack {
        top: alloc.line(),
        nodes: alloc.lines(NODE_RING),
        len: NODE_RING,
    };
    let spec = RunSpec {
        threads,
        max_ops,
        body,
        opgen: OpGen::Alternate {
            ops: [(0, 7), (1, 0)],
        },
        seed,
        max_local_work: 50,
    };
    let mut e = Engine::new(cfg);
    install(&mut e, approach, spec, &mut alloc);
    e.run(horizon)
}

/// Figure 5b's Treiber-stack line.
pub fn run_stack_treiber(cfg: MachineConfig, threads: usize, horizon: u64, seed: u64) -> SimResult {
    let mut alloc = AddrAlloc::new();
    let mut e = Engine::new(cfg);
    install_treiber(&mut e, threads, seed, 50, &mut alloc);
    e.run(horizon)
}

/// The core acting as servicing thread in a result: for servers this is the
/// server core; for combining runs, the core that served most requests
/// (Figure 4a pins the combiner, so it serves virtually all of them).
pub fn servicing_core(r: &SimResult) -> usize {
    (0..r.metrics.len())
        .max_by_key(|&i| r.metric(i, Metric::Served))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: u64 = 100_000;

    #[test]
    fn counter_all_approaches_produce_ops() {
        for a in Approach::ALL {
            let r = run_counter(MachineConfig::tile_gx8036(), a, 6, 200, H, 1);
            assert!(
                r.metric_sum(Metric::Ops) > 500,
                "{} produced too few ops",
                a.label()
            );
        }
    }

    #[test]
    fn fig3a_shape_mp_server_wins_at_load() {
        let cfg = MachineConfig::tile_gx8036();
        let mp = run_counter(cfg, Approach::MpServer, 12, 200, H, 1).mops();
        let hyb = run_counter(cfg, Approach::HybComb, 12, 200, H, 1).mops();
        let shm = run_counter(cfg, Approach::ShmServer, 12, 200, H, 1).mops();
        let cc = run_counter(cfg, Approach::CcSynch, 12, 200, H, 1).mops();
        assert!(mp > hyb, "mp {mp:.1} vs hyb {hyb:.1}");
        assert!(hyb > shm, "hyb {hyb:.1} vs shm {shm:.1}");
        assert!(hyb > cc, "hyb {hyb:.1} vs cc {cc:.1}");
    }

    #[test]
    fn fig4a_shape_stall_fractions() {
        let cfg = MachineConfig::tile_gx8036();
        for (a, lo, hi) in [
            (Approach::MpServer, 0.0, 0.15),
            (Approach::HybComb, 0.0, 0.25),
            (Approach::ShmServer, 0.35, 1.0),
            (Approach::CcSynch, 0.35, 1.0),
        ] {
            let r = run_counter_fixed(cfg, a, 10, H, 1);
            let core = servicing_core(&r);
            let s = &r.per_core[core];
            let frac = s.stall as f64 / (s.busy + s.stall) as f64;
            assert!(
                frac >= lo && frac <= hi,
                "{}: stall fraction {frac:.2} outside [{lo}, {hi}]",
                a.label()
            );
        }
    }

    #[test]
    fn queue_runs_produce_ops() {
        let cfg = MachineConfig::tile_gx8036();
        for a in Approach::ALL {
            let r = run_queue_onelock(cfg, a, 6, 200, H, 1);
            assert!(r.metric_sum(Metric::Ops) > 300, "{}", a.label());
        }
        let r = run_queue_mp2(cfg, 6, H, 1);
        assert!(r.metric_sum(Metric::Ops) > 300, "mp-server-2");
        let r = run_queue_lcrq(cfg, 6, H, 1);
        assert!(r.metric_sum(Metric::Ops) > 300, "LCRQ");
    }

    #[test]
    fn stack_runs_produce_ops() {
        let cfg = MachineConfig::tile_gx8036();
        for a in Approach::ALL {
            let r = run_stack(cfg, a, 6, 200, H, 1);
            assert!(r.metric_sum(Metric::Ops) > 300, "{}", a.label());
        }
        let r = run_stack_treiber(cfg, 6, H, 1);
        assert!(r.metric_sum(Metric::Ops) > 300, "Treiber");
    }

    #[test]
    fn array_cs_narrows_the_gap() {
        // Figure 4c: as the CS grows, the relative advantage of message
        // passing shrinks.
        let cfg = MachineConfig::tile_gx8036();
        let gap = |iters: u64| {
            let mp = run_array(cfg, Approach::MpServer, 10, iters, 200, H, 1).mops();
            let shm = run_array(cfg, Approach::ShmServer, 10, iters, 200, H, 1).mops();
            mp / shm
        };
        let short = gap(1);
        let long = gap(15);
        assert!(
            long < short,
            "relative gap should shrink with CS length: short {short:.2}, long {long:.2}"
        );
    }

    #[test]
    fn mixed_queue_workloads_complete() {
        let cfg = MachineConfig::tile_gx8036();
        for enq in 1..=3usize {
            let r = run_queue_mixed(cfg, Approach::MpServer, 6, enq, 200, H, 1);
            assert!(
                r.metric_sum(Metric::Ops) > 300,
                "mix {enq}/4 made no progress"
            );
        }
    }

    #[test]
    fn latency_histogram_populated() {
        let r = run_counter(
            MachineConfig::tile_gx8036(),
            Approach::MpServer,
            6,
            200,
            H,
            1,
        );
        let hist_total: u64 = Metric::LAT_HISTOGRAM.iter().map(|&m| r.metric_sum(m)).sum();
        assert_eq!(hist_total, r.metric_sum(Metric::LatCount));
        assert!(r.latency_percentile(0.99) >= r.latency_percentile(0.50));
    }

    #[test]
    fn x86_like_machine_stalls_more() {
        let tile = run_counter_fixed(MachineConfig::tile_gx8036(), Approach::ShmServer, 10, H, 1);
        let x86 = run_counter_fixed(MachineConfig::x86_like(), Approach::ShmServer, 10, H, 1);
        let frac = |r: &SimResult| {
            let c = servicing_core(r);
            let s = &r.per_core[c];
            s.stall as f64 / (s.busy + s.stall) as f64
        };
        assert!(
            frac(&x86) > frac(&tile),
            "x86-like RMR costs must increase the stall share"
        );
    }
}
