//! Integration and property tests of the simulator as a whole: determinism
//! across the full pipeline, metric conservation identities, and config
//! monotonicity (costlier machines are never faster).

use proptest::prelude::*;
use tilesim::algos::Approach;
use tilesim::workload::{run_counter, run_queue_onelock};
use tilesim::{MachineConfig, Metric};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The whole counter pipeline is a pure function of (approach, threads,
    /// max_ops, seed).
    #[test]
    fn counter_runs_deterministic(
        threads in 1usize..12,
        max_ops in 1u64..300,
        seed in any::<u64>(),
    ) {
        for a in Approach::ALL {
            let r1 = run_counter(MachineConfig::tile_gx8036(), a, threads, max_ops, 60_000, seed);
            let r2 = run_counter(MachineConfig::tile_gx8036(), a, threads, max_ops, 60_000, seed);
            prop_assert_eq!(r1.metric_sum(Metric::Ops), r2.metric_sum(Metric::Ops));
            prop_assert_eq!(r1.metric_sum(Metric::LatSum), r2.metric_sum(Metric::LatSum));
            let stalls1: u64 = r1.per_core.iter().map(|c| c.stall).sum();
            let stalls2: u64 = r2.per_core.iter().map(|c| c.stall).sum();
            prop_assert_eq!(stalls1, stalls2);
        }
    }

    /// Metric identities: latency samples equal completed ops; served ops
    /// cover completed ops (a few may be in flight at teardown).
    #[test]
    fn metric_identities(threads in 1usize..10, seed in any::<u64>()) {
        for a in Approach::ALL {
            let r = run_counter(MachineConfig::tile_gx8036(), a, threads, 100, 60_000, seed);
            let ops = r.metric_sum(Metric::Ops);
            prop_assert_eq!(r.metric_sum(Metric::LatCount), ops);
            let served = r.metric_sum(Metric::Served);
            prop_assert!(served >= ops, "served {} < ops {}", served, ops);
            prop_assert!(served <= ops + 2 * threads as u64 + 2,
                "served {} way beyond ops {}", served, ops);
        }
    }
}

/// Doubling every memory cost must not increase counter throughput.
#[test]
fn costlier_machine_is_not_faster() {
    let base = MachineConfig::tile_gx8036();
    let slow = MachineConfig {
        rmr_base: base.rmr_base * 2,
        coherence_extra: base.coherence_extra * 2,
        ctrl_op: base.ctrl_op * 2,
        ctrl_occupancy_same: base.ctrl_occupancy_same * 2,
        ctrl_occupancy_switch: base.ctrl_occupancy_switch * 2,
        ..base
    };
    for a in Approach::ALL {
        let fast = run_counter(base, a, 8, 200, 120_000, 3).mops();
        let slower = run_counter(slow, a, 8, 200, 120_000, 3).mops();
        assert!(
            slower <= fast * 1.02,
            "{}: {slower:.1} Mops on a costlier machine vs {fast:.1}",
            a.label()
        );
    }
}

/// The sequential-queue invariant holds inside the simulator: dequeue
/// results never exceed enqueues (conservation is visible through the Ops
/// metric balance of the alternate workload).
#[test]
fn queue_workload_balance() {
    let r = run_queue_onelock(
        MachineConfig::tile_gx8036(),
        Approach::MpServer,
        6,
        200,
        120_000,
        9,
    );
    let ops = r.metric_sum(Metric::Ops);
    assert!(ops > 1_000);
    // Balanced generator: enqueues and dequeues within one per thread.
    // (Ops counts both; the workload alternates strictly.)
    let served = r.metric_sum(Metric::Served);
    assert!(served >= ops);
}

/// Throughput grows (or at worst saturates) with offered load for the
/// server approaches.
#[test]
fn server_throughput_monotone_under_load() {
    let cfg = MachineConfig::tile_gx8036();
    let mut last = 0.0;
    for threads in [1, 2, 4, 8, 16] {
        let m = run_counter(cfg, Approach::MpServer, threads, 200, 120_000, 5).mops();
        assert!(
            m >= last * 0.95,
            "throughput regressed when adding load: {last:.1} -> {m:.1} at {threads}"
        );
        last = m;
    }
}
