//! Loom models for the WordQueue protocol (`RUSTFLAGS="--cfg loom" cargo
//! test -p mpsync-udn --lib`).
//!
//! Every atomic in the queue's protocol goes through `crate::sync`, so under
//! `--cfg loom` these tests explore the bounded interleaving space of the
//! real production code — not a copy — and the payload `UnsafeCell`s are
//! checked for happens-before ordering on every access. See DESIGN.md §9
//! for the happens-before graph these models verify.

use std::sync::Arc;

use crate::WordQueue;

/// Two producers race a contiguous-run reservation against the single
/// consumer: the multi-word messages must come out whole, in per-producer
/// order, with payload reads race-free (publish's `seq` Release / receive's
/// Acquire edge).
#[test]
fn two_producers_one_consumer_fifo() {
    loom::model(|| {
        let q = Arc::new(WordQueue::new(4));
        let p1 = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || {
                q.send_blocking(&[10, 11]);
            })
        };
        let p2 = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || {
                q.send_blocking(&[20, 21]);
            })
        };
        let mut first = [0u64; 2];
        let mut second = [0u64; 2];
        q.receive_blocking(&mut first);
        q.receive_blocking(&mut second);
        p1.join().unwrap();
        p2.join().unwrap();
        // Contiguity: each two-word message arrives unsplit, either order.
        let mut msgs = [first, second];
        msgs.sort();
        assert_eq!(msgs, [[10, 11], [20, 21]]);
        assert!(q.is_empty());
    });
}

/// try_send racing the consumer: a rejection must never block, must leave
/// the queue untorn, and must count as a failed — not blocked — send.
/// Regression model for the `blocked_sends` conflation fix.
#[test]
fn try_send_versus_consumer_accounting() {
    loom::model(|| {
        let q = Arc::new(WordQueue::new(2));
        q.send_blocking(&[1, 2]); // queue now full
        let consumer = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || {
                let mut w = [0u64; 1];
                q.receive_blocking(&mut w);
                assert_eq!(w, [1]);
            })
        };
        let accepted = q.try_send(&[3]);
        consumer.join().unwrap();
        // try_send never waits, so back-pressure must stay zero whether or
        // not the attempt won the race with the consumer.
        assert_eq!(q.blocked_sends(), 0);
        assert_eq!(q.failed_sends(), u64::from(!accepted));
        let mut w = [0u64; 1];
        q.receive_blocking(&mut w);
        assert_eq!(w, [2]);
        if accepted {
            q.receive_blocking(&mut w);
            assert_eq!(w, [3]);
        }
        assert!(q.is_empty());
    });
}

/// The full protocol across the numeric wrap of `usize`: positions step
/// from `usize::MAX` to 0 mid-stream (power-of-two capacity keeps the ring
/// mapping continuous — see the queue module doc). Regression model for the
/// unchecked `pos + 1` arithmetic fix.
#[test]
fn producer_consumer_across_position_wrap() {
    loom::model(|| {
        let q = Arc::new(WordQueue::with_start(2, usize::MAX - 1));
        let producer = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || {
                for v in 1..=3u64 {
                    q.send_blocking(&[v]);
                }
            })
        };
        let mut w = [0u64; 1];
        for v in 1..=3u64 {
            q.receive_blocking(&mut w);
            assert_eq!(w, [v]);
        }
        producer.join().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.failed_sends(), 0);
    });
}

/// Back-pressure: a blocking send into a full ring must wait for the
/// consumer's per-cell free (`seq = pos + cap` Release / publish's Acquire
/// edge) rather than corrupting the lapped cell.
#[test]
fn blocking_send_waits_for_cell_free() {
    loom::model(|| {
        let q = Arc::new(WordQueue::new(2));
        q.send_blocking(&[1, 2]); // full: the next send laps the ring
        let producer = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || {
                q.send_blocking(&[3]);
            })
        };
        let mut w = [0u64; 1];
        for expect in 1..=3u64 {
            q.receive_blocking(&mut w);
            assert_eq!(w, [expect]);
        }
        producer.join().unwrap();
        assert!(q.is_empty());
    });
}
