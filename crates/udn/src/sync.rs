//! Synchronization facade: `std::sync::atomic`/`std::cell::UnsafeCell` in
//! normal builds, loom's model-checked doubles under `RUSTFLAGS="--cfg
//! loom"` (see DESIGN.md §9 and `tests in src/loom_models.rs`).
//!
//! Only the *protocol-bearing* shared state goes through this facade — the
//! atomics whose orderings carry the happens-before edges the queue
//! protocol relies on. Monotone statistics counters (`blocked_sends`,
//! `failed_sends`, …) intentionally stay on plain `std` atomics even under
//! loom: they are not part of any protocol, and every extra modeled atomic
//! multiplies the interleaving space the checker must explore.

#[cfg(loom)]
pub(crate) use loom::cell::UnsafeCell;
#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicUsize, Ordering};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicUsize, Ordering};

/// `std::cell::UnsafeCell` behind loom's scoped-access API, so protocol
/// code is written once: `with` for reads, `with_mut` for writes. In std
/// builds both compile down to a bare pointer handed to the closure.
#[cfg(not(loom))]
pub(crate) struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(loom))]
impl<T> UnsafeCell<T> {
    pub(crate) fn new(v: T) -> Self {
        Self(std::cell::UnsafeCell::new(v))
    }

    /// Runs `f` with a shared (read) pointer to the contents. The caller
    /// must uphold the aliasing discipline the surrounding protocol
    /// establishes — under `--cfg loom` the model checker verifies it.
    #[inline(always)]
    pub(crate) fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get())
    }

    /// Runs `f` with an exclusive (write) pointer to the contents; same
    /// contract as [`UnsafeCell::with`].
    #[inline(always)]
    pub(crate) fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }
}

/// Spin with exponential escalation to `yield_now`, so that oversubscribed
/// hosts (fewer hardware threads than emulated cores) still make progress.
///
/// Under loom every wait iteration must be a voluntary yield instead: the
/// explorer deprioritizes yielded threads, which is what lets a bounded
/// search drive a spin loop to its wake-up condition.
#[inline]
pub(crate) fn backoff(spins: &mut u32) {
    #[cfg(loom)]
    {
        let _ = spins;
        loom::thread::yield_now();
    }
    #[cfg(not(loom))]
    {
        *spins = spins.saturating_add(1);
        if *spins < 64 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}
