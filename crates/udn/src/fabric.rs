//! The fabric: the set of per-core multiplexed hardware queues plus the
//! registration book-keeping.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::endpoint::{Endpoint, EndpointId, Sender};
use crate::error::{RegisterError, SendError};
use crate::queue::WordQueue;
use crate::stats::FabricStats;
use crate::{CHANNELS_PER_CORE, QUEUE_CAPACITY_WORDS};

/// Configuration of an emulated message-passing fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Number of cores (the TILE-Gx8036 has 36).
    pub cores: usize,
    /// Independent hardware queues multiplexed per core (TILE-Gx: 4).
    pub channels_per_core: usize,
    /// Capacity of each queue in 64-bit words (TILE-Gx: 118).
    pub queue_capacity: usize,
}

impl FabricConfig {
    /// TILE-Gx-like defaults (4 channels/core, 118-word queues) with the
    /// given core count.
    pub fn new(cores: usize) -> Self {
        Self {
            cores,
            channels_per_core: CHANNELS_PER_CORE,
            queue_capacity: QUEUE_CAPACITY_WORDS,
        }
    }

    /// The full TILE-Gx8036: 36 cores.
    pub fn tile_gx8036() -> Self {
        Self::new(36)
    }

    /// Overrides the per-queue capacity (useful for back-pressure tests).
    pub fn with_queue_capacity(mut self, words: usize) -> Self {
        self.queue_capacity = words;
        self
    }

    /// Overrides the per-core multiplexing factor.
    pub fn with_channels_per_core(mut self, channels: usize) -> Self {
        self.channels_per_core = channels;
        self
    }
}

/// The emulated chip interconnect: owns every hardware queue.
///
/// Threads call [`Fabric::register`] (or [`Fabric::register_any`]) to obtain
/// an [`Endpoint`] — the exclusive consumer handle for one hardware queue —
/// mirroring the TILE-Gx requirement that "a thread must be pinned to a core
/// and registered to use the UDN".
pub struct Fabric {
    queues: Box<[WordQueue]>,
    registered: Box<[AtomicBool]>,
    config: FabricConfig,
}

impl Fabric {
    /// Builds a fabric with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(config: FabricConfig) -> Self {
        assert!(config.cores > 0, "fabric needs at least one core");
        assert!(
            config.channels_per_core > 0,
            "need at least one channel per core"
        );
        assert!(config.queue_capacity > 0, "queues need non-zero capacity");
        let n = config.cores * config.channels_per_core;
        let queues = (0..n)
            .map(|_| WordQueue::new(config.queue_capacity))
            .collect();
        let registered = (0..n).map(|_| AtomicBool::new(false)).collect();
        Self {
            queues,
            registered,
            config,
        }
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> FabricConfig {
        self.config
    }

    /// Total number of hardware queues (`cores × channels_per_core`).
    pub fn endpoints(&self) -> usize {
        self.queues.len()
    }

    fn index(&self, core: usize, channel: usize) -> Result<usize, RegisterError> {
        if core >= self.config.cores {
            return Err(RegisterError::NoSuchCore {
                core,
                cores: self.config.cores,
            });
        }
        if channel >= self.config.channels_per_core {
            return Err(RegisterError::NoSuchChannel {
                channel,
                channels: self.config.channels_per_core,
            });
        }
        Ok(core * self.config.channels_per_core + channel)
    }

    /// Registers the calling thread on `(core, channel)`, returning the
    /// exclusive receive handle for that hardware queue.
    pub fn register(
        self: &Arc<Self>,
        core: usize,
        channel: usize,
    ) -> Result<Endpoint, RegisterError> {
        let idx = self.index(core, channel)?;
        if self.registered[idx]
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(RegisterError::Busy(EndpointId(idx as u32)));
        }
        Ok(Endpoint::new(Arc::clone(self), EndpointId(idx as u32)))
    }

    /// Registers on the first free hardware queue, scanning cores in
    /// ascending order (the paper pins thread *i* to core *i*; this helper
    /// reproduces that assignment when called from threads in spawn order).
    pub fn register_any(self: &Arc<Self>) -> Result<Endpoint, RegisterError> {
        for core in 0..self.config.cores {
            for channel in 0..self.config.channels_per_core {
                match self.register(core, channel) {
                    Ok(ep) => return Ok(ep),
                    Err(RegisterError::Busy(_)) => continue,
                    Err(e) => return Err(e),
                }
            }
        }
        Err(RegisterError::Exhausted)
    }

    /// A send-only handle that is not tied to any hardware queue (it cannot
    /// receive). Useful for control planes, e.g. a shutdown signaller.
    pub fn sender(self: &Arc<Self>) -> Sender {
        Sender::new(Arc::clone(self))
    }

    pub(crate) fn queue(&self, id: EndpointId) -> Result<&WordQueue, SendError> {
        self.queues
            .get(id.0 as usize)
            .ok_or(SendError::NoSuchEndpoint(id))
    }

    pub(crate) fn unregister(&self, id: EndpointId) {
        self.registered[id.0 as usize].store(false, Ordering::Release);
    }

    /// Whether the given endpoint is currently registered.
    pub fn is_registered(&self, id: EndpointId) -> bool {
        self.registered
            .get(id.0 as usize)
            .is_some_and(|r| r.load(Ordering::Acquire))
    }

    /// Aggregate counters across all queues.
    pub fn stats(&self) -> FabricStats {
        FabricStats {
            endpoints: self.queues.len(),
            words_pending: self.queues.iter().map(|q| q.len() as u64).sum(),
            blocked_sends: self.queues.iter().map(|q| q.blocked_sends()).sum(),
            failed_sends: self.queues.iter().map(|q| q.failed_sends()).sum(),
        }
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("cores", &self.config.cores)
            .field("channels_per_core", &self.config.channels_per_core)
            .field("queue_capacity", &self.config.queue_capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_ascending_ids() {
        let f = Arc::new(Fabric::new(FabricConfig::new(2).with_channels_per_core(2)));
        let a = f.register_any().unwrap();
        let b = f.register_any().unwrap();
        assert_eq!(a.id().index(), 0);
        assert_eq!(b.id().index(), 1);
        assert_eq!(a.id().core(&f.config()), 0);
        assert_eq!(b.id().core(&f.config()), 0);
        let c = f.register_any().unwrap();
        let d = f.register_any().unwrap();
        assert_eq!(c.id().core(&f.config()), 1);
        assert_eq!(d.id().core(&f.config()), 1);
        assert!(matches!(f.register_any(), Err(RegisterError::Exhausted)));
    }

    #[test]
    fn double_register_rejected() {
        let f = Arc::new(Fabric::new(FabricConfig::new(1)));
        let _a = f.register(0, 0).unwrap();
        assert!(matches!(f.register(0, 0), Err(RegisterError::Busy(_))));
    }

    #[test]
    fn register_out_of_range() {
        let f = Arc::new(Fabric::new(FabricConfig::new(1)));
        assert!(matches!(
            f.register(5, 0),
            Err(RegisterError::NoSuchCore { .. })
        ));
        assert!(matches!(
            f.register(0, 99),
            Err(RegisterError::NoSuchChannel { .. })
        ));
    }

    #[test]
    fn unregister_frees_queue_for_reuse() {
        let f = Arc::new(Fabric::new(FabricConfig::new(1).with_channels_per_core(1)));
        let a = f.register(0, 0).unwrap();
        let id = a.id();
        assert!(f.is_registered(id));
        drop(a);
        assert!(!f.is_registered(id));
        let _b = f.register(0, 0).unwrap();
    }
}
