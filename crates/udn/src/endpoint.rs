//! Endpoints: per-thread handles to one hardware queue.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mpsync_telemetry as telemetry;
use mpsync_telemetry::{Algo, Counter, Lane};

use crate::error::SendError;
use crate::fabric::{Fabric, FabricConfig};
use crate::stats::EndpointStats;

/// Identifier of one hardware queue on the fabric: this is the "thread id"
/// that the paper's algorithms put inside messages (`send(i, M)` in §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(pub(crate) u32);

impl EndpointId {
    /// Flat index of this endpoint on its fabric.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a flat index (e.g. one carried in a message
    /// word). The id is only meaningful on the fabric it came from.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Self(index as u32)
    }

    /// Packs the id into a message word.
    #[inline]
    pub fn to_word(self) -> u64 {
        u64::from(self.0)
    }

    /// Unpacks an id from a message word.
    #[inline]
    pub fn from_word(w: u64) -> Self {
        Self(w as u32)
    }

    /// The core this endpoint's queue lives on, under `config`.
    #[inline]
    pub fn core(self, config: &FabricConfig) -> usize {
        self.index() / config.channels_per_core
    }

    /// The channel (demux slot) within the core, under `config`.
    #[inline]
    pub fn channel(self, config: &FabricConfig) -> usize {
        self.index() % config.channels_per_core
    }
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// Exclusive handle to one hardware queue: the only way to receive from it.
///
/// `Endpoint` is `Send` but deliberately **not** `Sync`/clonable: the
/// single-consumer discipline of the underlying FIFO is enforced by Rust
/// ownership. Sending to *other* endpoints needs no exclusivity and is
/// available on both `Endpoint` and [`Sender`].
///
/// Dropping the endpoint unregisters the queue (the TILE-Gx lets threads
/// "unregister and freely migrate afterwards").
pub struct Endpoint {
    fabric: Arc<Fabric>,
    id: EndpointId,
    sent: AtomicU64,
    received: AtomicU64,
}

impl Endpoint {
    pub(crate) fn new(fabric: Arc<Fabric>, id: EndpointId) -> Self {
        Self {
            fabric,
            id,
            sent: AtomicU64::new(0),
            received: AtomicU64::new(0),
        }
    }

    /// This endpoint's identifier (its address for `send`).
    #[inline]
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// The fabric this endpoint is registered on.
    #[inline]
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Sends `words` as one contiguous message to `dest`, blocking if the
    /// destination queue is full (back-pressure). Asynchronous in the sense
    /// of the paper: returning does not imply the message was consumed.
    #[inline]
    pub fn send(&self, dest: EndpointId, words: &[u64]) -> Result<(), SendError> {
        let queue = self.fabric.queue(dest)?;
        if telemetry::ENABLED {
            let t0 = telemetry::now_ns();
            let waited = queue.send_blocking(words);
            telemetry::count(Counter::UdnSends, 1);
            if waited {
                telemetry::count(Counter::UdnBlockedSends, 1);
                // The whole send's wall time counts as blocked: an
                // unblocked send is nanoseconds, so the span is ~all wait.
                telemetry::record_span(self.id.0, Algo::Udn, Lane::Blocked, t0);
            }
        } else {
            queue.send_blocking(words);
        }
        self.sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Attempts to send without blocking; fails with [`SendError::Full`] if
    /// the destination queue cannot take the whole message right now.
    #[inline]
    pub fn try_send(&self, dest: EndpointId, words: &[u64]) -> Result<(), SendError> {
        if self.fabric.queue(dest)?.try_send(words) {
            self.sent.fetch_add(1, Ordering::Relaxed);
            Ok(())
        } else {
            if telemetry::ENABLED {
                telemetry::count(Counter::UdnFailedSends, 1);
            }
            Err(SendError::Full(dest))
        }
    }

    /// Receives exactly `buf.len()` words from the head of the local queue,
    /// blocking until available (`receive(k)` of the paper's model).
    #[inline]
    pub fn receive(&mut self, buf: &mut [u64]) {
        let queue = self.fabric.queue(self.id).expect("own queue always exists");
        if telemetry::ENABLED {
            // Occupancy sampled before the dequeue: words resident in the
            // local hardware queue when its owner came to read it.
            telemetry::record_value(Algo::Udn, Lane::Occupancy, queue.len() as u64);
            let t0 = telemetry::now_ns();
            queue.receive_blocking(buf);
            telemetry::count(Counter::UdnReceives, 1);
            telemetry::record_span(self.id.0, Algo::Udn, Lane::Receive, t0);
        } else {
            queue.receive_blocking(buf);
        }
        self.received.fetch_add(buf.len() as u64, Ordering::Relaxed);
    }

    /// Receives a single word (`receive(1)`).
    #[inline]
    pub fn receive1(&mut self) -> u64 {
        let mut buf = [0u64; 1];
        self.receive(&mut buf);
        buf[0]
    }

    /// Receives a three-word message (`receive(3)`), the request format used
    /// by MP-SERVER and HYBCOMB: `{sender_id, op, arg}`.
    #[inline]
    pub fn receive3(&mut self) -> [u64; 3] {
        let mut buf = [0u64; 3];
        self.receive(&mut buf);
        buf
    }

    /// Receives exactly `buf.len()` words like [`Endpoint::receive`], but
    /// gives up and returns `None` — consuming nothing — if no message has
    /// started arriving by `deadline`.
    ///
    /// The deadline gates only the wait for the *first* word: once a word is
    /// available the receive commits and blocks for the rest of the message
    /// (its words are already published contiguously or in flight behind
    /// it), so a returned `Some(n)` always means the full `n == buf.len()`
    /// words were read and the queue was never left mid-message.
    ///
    /// This is the building block for serving loops that must wake up
    /// periodically — e.g. to notice a shutdown flag — without busy-polling
    /// `try_receive` and without hanging forever on a quiet queue.
    #[inline]
    pub fn receive_deadline(
        &mut self,
        buf: &mut [u64],
        deadline: std::time::Instant,
    ) -> Option<usize> {
        let queue = self.fabric.queue(self.id).expect("own queue always exists");
        if queue.receive_deadline(buf, deadline) {
            if telemetry::ENABLED {
                // No Receive span here: the wait includes deliberate idle
                // polling, which would pollute the receive-latency histogram.
                telemetry::count(Counter::UdnReceives, 1);
            }
            self.received.fetch_add(buf.len() as u64, Ordering::Relaxed);
            Some(buf.len())
        } else {
            None
        }
    }

    /// Non-blocking receive of up to `buf.len()` words; returns the count
    /// actually read.
    #[inline]
    pub fn try_receive(&mut self, buf: &mut [u64]) -> usize {
        let n = self
            .fabric
            .queue(self.id)
            .expect("own queue always exists")
            .try_receive(buf);
        self.received.fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// `is_queue_empty()` of the paper's model: `true` if the local queue
    /// holds no published word.
    #[inline]
    pub fn is_queue_empty(&self) -> bool {
        self.fabric
            .queue(self.id)
            .expect("own queue always exists")
            .is_empty()
    }

    /// Counters observed so far on this endpoint.
    pub fn stats(&self) -> EndpointStats {
        EndpointStats {
            id: self.id,
            messages_sent: self.sent.load(Ordering::Relaxed),
            words_received: self.received.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.fabric.unregister(self.id);
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint").field("id", &self.id).finish()
    }
}

/// Send-only handle, not bound to any queue. Cheap to clone.
#[derive(Clone)]
pub struct Sender {
    fabric: Arc<Fabric>,
}

impl Sender {
    pub(crate) fn new(fabric: Arc<Fabric>) -> Self {
        Self { fabric }
    }

    /// Sends `words` to `dest`, blocking on back-pressure.
    #[inline]
    pub fn send(&self, dest: EndpointId, words: &[u64]) -> Result<(), SendError> {
        let waited = self.fabric.queue(dest)?.send_blocking(words);
        if telemetry::ENABLED {
            telemetry::count(Counter::UdnSends, 1);
            if waited {
                telemetry::count(Counter::UdnBlockedSends, 1);
            }
        }
        Ok(())
    }

    /// Attempts to send without blocking.
    #[inline]
    pub fn try_send(&self, dest: EndpointId, words: &[u64]) -> Result<(), SendError> {
        if self.fabric.queue(dest)?.try_send(words) {
            Ok(())
        } else {
            if telemetry::ENABLED {
                telemetry::count(Counter::UdnFailedSends, 1);
            }
            Err(SendError::Full(dest))
        }
    }
}

impl fmt::Debug for Sender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FabricConfig;

    #[test]
    fn id_roundtrip_through_words() {
        let id = EndpointId::from_index(42);
        assert_eq!(EndpointId::from_word(id.to_word()), id);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn core_channel_decomposition() {
        let cfg = FabricConfig::new(4); // 4 channels per core
        let id = EndpointId::from_index(9);
        assert_eq!(id.core(&cfg), 2);
        assert_eq!(id.channel(&cfg), 1);
    }

    #[test]
    fn send_receive_roundtrip() {
        let f = Arc::new(Fabric::new(FabricConfig::new(2)));
        let a = f.register_any().unwrap();
        let mut b = f.register_any().unwrap();
        a.send(b.id(), &[5, 6, 7]).unwrap();
        assert_eq!(b.receive3(), [5, 6, 7]);
        assert!(b.is_queue_empty());
    }

    #[test]
    fn send_to_missing_endpoint_errors() {
        let f = Arc::new(Fabric::new(FabricConfig::new(1).with_channels_per_core(1)));
        let a = f.register(0, 0).unwrap();
        let bogus = EndpointId::from_index(99);
        assert_eq!(a.send(bogus, &[1]), Err(SendError::NoSuchEndpoint(bogus)));
    }

    #[test]
    fn sender_handle_can_reach_endpoints() {
        let f = Arc::new(Fabric::new(FabricConfig::new(1)));
        let mut a = f.register_any().unwrap();
        let s = f.sender();
        s.send(a.id(), &[99]).unwrap();
        assert_eq!(a.receive1(), 99);
    }

    #[test]
    fn try_send_full_reports_dest() {
        let f = Arc::new(Fabric::new(FabricConfig::new(1).with_queue_capacity(2)));
        let a = f.register_any().unwrap();
        let b = f.register_any().unwrap();
        a.send(b.id(), &[1, 2]).unwrap();
        assert_eq!(a.try_send(b.id(), &[3]), Err(SendError::Full(b.id())));
        // The rejection is a failed send, not back-pressure.
        let stats = f.stats();
        assert_eq!(stats.failed_sends, 1);
        assert_eq!(stats.blocked_sends, 0);
    }

    #[test]
    fn receive_deadline_times_out_on_quiet_queue() {
        let f = Arc::new(Fabric::new(FabricConfig::new(1)));
        let mut a = f.register_any().unwrap();
        let mut buf = [0u64; 3];
        let t0 = std::time::Instant::now();
        let deadline = t0 + std::time::Duration::from_millis(10);
        assert_eq!(a.receive_deadline(&mut buf, deadline), None);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(10));
        // Nothing was consumed and the endpoint still works normally.
        let me = a.id();
        a.send(me, &[1, 2, 3]).unwrap();
        assert_eq!(a.receive3(), [1, 2, 3]);
    }

    #[test]
    fn receive_deadline_returns_message_when_present() {
        let f = Arc::new(Fabric::new(FabricConfig::new(1)));
        let mut a = f.register_any().unwrap();
        let me = a.id();
        a.send(me, &[7, 8]).unwrap();
        let mut buf = [0u64; 2];
        // Already-elapsed deadline still succeeds: the first word is there.
        let past = std::time::Instant::now();
        assert_eq!(a.receive_deadline(&mut buf, past), Some(2));
        assert_eq!(buf, [7, 8]);
    }

    #[test]
    fn receive_deadline_waits_for_late_arrival() {
        let f = Arc::new(Fabric::new(FabricConfig::new(1)));
        let mut a = f.register_any().unwrap();
        let target = a.id();
        let s = f.sender();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            s.send(target, &[42]).unwrap();
        });
        let mut buf = [0u64; 1];
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        assert_eq!(a.receive_deadline(&mut buf, deadline), Some(1));
        assert_eq!(buf, [42]);
        t.join().unwrap();
    }

    #[test]
    fn self_send_loopback() {
        let f = Arc::new(Fabric::new(FabricConfig::new(1)));
        let mut a = f.register_any().unwrap();
        let me = a.id();
        a.send(me, &[1]).unwrap();
        assert!(!a.is_queue_empty());
        assert_eq!(a.receive1(), 1);
    }
}
