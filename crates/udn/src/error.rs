//! Error types for registration and sending.

use std::fmt;

use crate::EndpointId;

/// Failure to register a thread on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterError {
    /// The requested core index does not exist on this fabric.
    NoSuchCore {
        /// Requested core.
        core: usize,
        /// Number of cores on the fabric.
        cores: usize,
    },
    /// The requested channel index exceeds the per-core multiplexing factor.
    NoSuchChannel {
        /// Requested channel.
        channel: usize,
        /// Channels available per core.
        channels: usize,
    },
    /// The (core, channel) pair is already registered by another thread.
    Busy(EndpointId),
    /// `register_any` found no free hardware queue anywhere on the fabric.
    Exhausted,
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSuchCore { core, cores } => {
                write!(f, "core {core} out of range (fabric has {cores} cores)")
            }
            Self::NoSuchChannel { channel, channels } => write!(
                f,
                "channel {channel} out of range (each core multiplexes {channels} queues)"
            ),
            Self::Busy(id) => write!(f, "hardware queue {id} is already registered"),
            Self::Exhausted => write!(f, "no free hardware queue on the fabric"),
        }
    }
}

impl std::error::Error for RegisterError {}

/// Failure to send a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// Destination endpoint id does not exist on this fabric.
    NoSuchEndpoint(EndpointId),
    /// `try_send` found the destination queue full.
    Full(EndpointId),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSuchEndpoint(id) => write!(f, "endpoint {id} does not exist"),
            Self::Full(id) => write!(f, "message queue of endpoint {id} is full"),
        }
    }
}

impl std::error::Error for SendError {}
