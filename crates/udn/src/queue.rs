//! Bounded multi-producer single-consumer FIFO of 64-bit words.
//!
//! This is the building block for one "hardware queue": a generalized
//! Vyukov-style bounded queue in which a producer reserves a *contiguous run*
//! of cells with a single `fetch_add`, so that a multi-word message occupies
//! consecutive positions (the UDN guarantee that the words of one message are
//! placed in the destination queue in order, without interleaving).
//!
//! Cell protocol (all positions are monotonically increasing global indices,
//! mapped onto the ring with `pos % capacity`):
//!
//! * `seq == pos`      — the cell is free for the producer that owns `pos`;
//! * `seq == pos + 1`  — the cell holds the word written for `pos`;
//! * after consuming `pos`, the consumer stores `seq = pos + capacity`,
//!   which is the "free" state for the next lap.
//!
//! All position arithmetic is wrapping: positions are indices modulo
//! 2⁶⁴, and every comparison in the protocol is an *equality* against a
//! value derived by wrapping addition, so the state machine is well defined
//! across the numeric wrap of `usize`. The one caveat is the ring mapping
//! itself: `pos % capacity` is continuous across the wrap only when
//! `capacity` divides 2⁶⁴ (i.e. is a power of two). With the default
//! 118-word queues a wrap is unreachable in practice (at 10⁹ words/s it is
//! ~584 years away), and the test-only [`WordQueue::with_start`] hook that
//! does start near the wrap uses a power-of-two capacity.
//!
//! A producer that reserved positions not yet freed by the consumer spins:
//! this is exactly the hardware back-pressure behaviour (§5.1: "if a hardware
//! queue is full, subsequent incoming messages back up into the network and
//! may cause the sender to block").

use std::sync::atomic::AtomicU64;
use std::time::Instant;

use crossbeam_utils::CachePadded;

use crate::sync::{backoff, AtomicUsize, Ordering, UnsafeCell};

/// One ring cell: a publication sequence number plus the word payload.
struct Cell {
    seq: AtomicUsize,
    value: UnsafeCell<u64>,
}

// The `UnsafeCell` is only written by the producer that owns the cell's
// current sequence window and only read by the single consumer after the
// producer published it with a `Release` store of `seq` (the loom models in
// `src/loom_models.rs` check exactly this discipline).
unsafe impl Sync for Cell {}

/// A bounded MPSC FIFO of `u64` words with contiguous multi-word enqueue.
///
/// The single-consumer discipline is enforced by the caller
/// ([`Endpoint`](crate::Endpoint) owns the consumer side exclusively); the
/// queue itself only assumes it, it cannot check it.
pub struct WordQueue {
    buf: Box<[Cell]>,
    /// Next position to be reserved by a producer.
    tail: CachePadded<AtomicUsize>,
    /// Next position to be consumed. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Number of times a producer had to wait for space (back-pressure).
    /// Plain std atomic on purpose: statistics, not protocol (see
    /// `crate::sync`).
    blocked_sends: AtomicU64,
    /// Number of [`WordQueue::try_send`] attempts rejected for lack of
    /// space. Distinct from `blocked_sends`: a failed non-blocking attempt
    /// never waited, so it is not back-pressure.
    failed_sends: AtomicU64,
}

/// Outcome of [`WordQueue::try_reserve`].
enum Reserve {
    /// Positions `[start, start + n)` were reserved.
    At(usize),
    /// Not enough free space at the moment of the attempt.
    Full,
}

impl WordQueue {
    /// Creates a queue holding at most `capacity` words.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_start(capacity, 0)
    }

    /// Creates a queue whose position counters start at `start` instead of
    /// zero. Test-only hook for exercising the protocol near the numeric
    /// wrap of `usize`; use a power-of-two `capacity` when `start` is close
    /// enough to `usize::MAX` for positions to wrap (see the module doc).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[doc(hidden)]
    pub fn with_start(capacity: usize, start: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        let buf: Box<[Cell]> = (0..capacity)
            .map(|_| Cell {
                seq: AtomicUsize::new(0),
                value: UnsafeCell::new(0),
            })
            .collect();
        // Seed each cell as free for its first owned position ≥ start.
        for i in 0..capacity {
            let pos = start.wrapping_add(i);
            buf[pos % capacity].seq.store(pos, Ordering::Relaxed);
        }
        Self {
            buf,
            tail: CachePadded::new(AtomicUsize::new(start)),
            head: CachePadded::new(AtomicUsize::new(start)),
            blocked_sends: AtomicU64::new(0),
            failed_sends: AtomicU64::new(0),
        }
    }

    /// Maximum number of words the queue can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Number of words currently enqueued (reserved-but-unpublished words
    /// count as enqueued; the value is a snapshot and may be stale by the
    /// time it is observed).
    #[inline]
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        // Wrapping distance: tail is never more than `capacity` ahead of
        // head, so the difference is exact even across the numeric wrap.
        // (The two loads are unordered snapshots, so clamp transient
        // tail-behind-head readings to zero rather than wrapping to 2⁶⁴.)
        let d = tail.wrapping_sub(head);
        if d > self.buf.len() {
            0
        } else {
            d
        }
    }

    /// `true` if no *published* word is available at the head.
    ///
    /// This is the consumer-side `is_queue_empty()` of the paper's system
    /// model: it looks at the head cell's publication flag, so a message
    /// whose reservation exists but whose first word has not been written
    /// yet is reported as "not yet there" — matching a hardware FIFO, where
    /// a word either arrived or did not.
    #[inline]
    pub fn is_empty(&self) -> bool {
        // `head` is consumer-owned, and the result is only a hint: every
        // actual dequeue re-loads `seq` with Acquire before touching the
        // payload, so Relaxed is sufficient here (audited by the hybcomb
        // eager-drain loom model, which calls this from the combiner).
        let head = self.head.load(Ordering::Relaxed);
        let cell = &self.buf[head % self.buf.len()];
        cell.seq.load(Ordering::Relaxed) != head.wrapping_add(1)
    }

    /// Number of sends that observed a full queue and had to wait.
    #[inline]
    pub fn blocked_sends(&self) -> u64 {
        self.blocked_sends.load(Ordering::Relaxed)
    }

    /// Number of non-blocking send attempts rejected because the queue had
    /// no room for the whole message.
    #[inline]
    pub fn failed_sends(&self) -> u64 {
        self.failed_sends.load(Ordering::Relaxed)
    }

    /// Attempts to reserve `n` contiguous positions without blocking.
    fn try_reserve(&self, n: usize) -> Reserve {
        let cap = self.buf.len();
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            // Acquire pairs with the consumer's Release store of `head` in
            // `receive_*`: it orders this thread after the consumer's
            // `seq = pos + cap` frees for every position below `head`.
            // That edge is what makes a successful reservation a *proof*
            // that `publish` finds its cells free (try_send's no-wait
            // guarantee); with a Relaxed load the guarantee — and the
            // debug assert in `try_send` — would be unsound.
            let head = self.head.load(Ordering::Acquire);
            // Used space is the wrapping distance tail − head (≤ cap by
            // construction), so this comparison cannot overflow.
            if tail.wrapping_sub(head) + n > cap {
                return Reserve::Full;
            }
            // Relaxed suffices for the reservation itself: winning the CAS
            // only orders producers among each other; payload publication
            // happens via each cell's `seq` Release store.
            match self.tail.compare_exchange_weak(
                tail,
                tail.wrapping_add(n),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Reserve::At(tail),
                Err(t) => tail = t,
            }
        }
    }

    /// Writes `words` into previously reserved positions starting at `start`.
    ///
    /// Returns `true` if any cell was still held by the consumer when first
    /// examined — i.e. the producer genuinely waited for space. With a
    /// successful `try_reserve` this never happens (the reservation proved
    /// every cell free); with a blocking reservation it is the back-pressure
    /// point.
    fn publish(&self, start: usize, words: &[u64]) -> bool {
        let cap = self.buf.len();
        let mut waited = false;
        for (i, &w) in words.iter().enumerate() {
            let pos = start.wrapping_add(i);
            let cell = &self.buf[pos % cap];
            // Wait until the consumer has freed this cell from the previous
            // lap. Acquire pairs with the consumer's `seq = pos + cap`
            // Release store: it orders our payload write after the
            // consumer's payload read of the previous lap (without it the
            // write below races that read).
            let mut spins = 0u32;
            while cell.seq.load(Ordering::Acquire) != pos {
                waited = true;
                backoff(&mut spins);
            }
            // SAFETY: the cell at `pos` is exclusively owned by this producer
            // between observing `seq == pos` and storing `seq == pos + 1`.
            cell.value.with_mut(|p| unsafe { *p = w });
            // Release publishes the payload write above to the consumer's
            // Acquire load of `seq` — the edge every receive relies on.
            cell.seq.store(pos.wrapping_add(1), Ordering::Release);
        }
        waited
    }

    /// Enqueues all of `words` as one contiguous message, blocking while the
    /// queue is full (hardware back-pressure semantics).
    ///
    /// Returns `true` if the send hit back-pressure — i.e. it genuinely
    /// waited for the consumer to free space (the same condition that
    /// increments [`WordQueue::blocked_sends`]).
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` exceeds the queue capacity: such a message
    /// could never fit and would deadlock real hardware too.
    pub fn send_blocking(&self, words: &[u64]) -> bool {
        assert!(
            words.len() <= self.buf.len(),
            "message of {} words cannot fit a queue of capacity {}",
            words.len(),
            self.buf.len()
        );
        if words.is_empty() {
            return false;
        }
        // Reserve unconditionally: the positions will become free once the
        // consumer drains preceding words. `publish` waits per-cell and
        // reports whether this send actually had to wait — a head snapshot
        // taken here instead would already be stale by the time the cells
        // are examined, counting sends the consumer drained in time.
        // Relaxed for the same reason as the CAS in `try_reserve`.
        let start = self.tail.fetch_add(words.len(), Ordering::Relaxed);
        let waited = self.publish(start, words);
        if waited {
            self.blocked_sends.fetch_add(1, Ordering::Relaxed);
        }
        waited
    }

    /// Attempts to enqueue `words` without blocking.
    ///
    /// Returns `false` if the queue did not have room for the whole message
    /// at the moment of the attempt (the message is *not* partially
    /// enqueued). Rejections are counted in [`WordQueue::failed_sends`] —
    /// not in [`WordQueue::blocked_sends`], which only counts sends that
    /// genuinely waited.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` exceeds the queue capacity.
    pub fn try_send(&self, words: &[u64]) -> bool {
        assert!(
            words.len() <= self.buf.len(),
            "message of {} words cannot fit a queue of capacity {}",
            words.len(),
            self.buf.len()
        );
        if words.is_empty() {
            return true;
        }
        match self.try_reserve(words.len()) {
            Reserve::At(start) => {
                // A successful reservation proved the space free, so this
                // publish never waits and counts no back-pressure.
                let waited = self.publish(start, words);
                debug_assert!(
                    !waited,
                    "try_send publish waited after a proven reservation"
                );
                true
            }
            Reserve::Full => {
                self.failed_sends.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Dequeues exactly `buf.len()` words from the head of the queue,
    /// blocking until they are available.
    ///
    /// # Safety contract (single consumer)
    ///
    /// Must only be called by the unique consumer of this queue. The crate
    /// upholds this by funnelling all receives through the owned
    /// [`Endpoint`](crate::Endpoint).
    pub(crate) fn receive_blocking(&self, buf: &mut [u64]) {
        let cap = self.buf.len();
        // `head` is only ever written by this (single) consumer, so reading
        // our own last store needs no ordering.
        let head = self.head.load(Ordering::Relaxed);
        for (i, slot) in buf.iter_mut().enumerate() {
            let pos = head.wrapping_add(i);
            let cell = &self.buf[pos % cap];
            let mut spins = 0u32;
            // Acquire pairs with the producer's `seq = pos + 1` Release
            // store: observing the published value orders us after the
            // producer's payload write.
            while cell.seq.load(Ordering::Acquire) != pos.wrapping_add(1) {
                backoff(&mut spins);
            }
            // SAFETY: publication observed with Acquire; only this consumer
            // reads the cell before marking it free.
            *slot = cell.value.with(|p| unsafe { *p });
            // Release frees the cell for the next lap: it publishes our
            // payload *read* to the producer's Acquire load in `publish`,
            // so the next write cannot overtake it.
            cell.seq.store(pos.wrapping_add(cap), Ordering::Release);
        }
        // Release pairs with the Acquire load in `try_reserve`: a producer
        // that observes the new head also observes every `seq` free above.
        self.head
            .store(head.wrapping_add(buf.len()), Ordering::Release);
    }

    /// Like [`WordQueue::receive_blocking`], but gives up — returning
    /// `false` and consuming nothing — if no word has been published at the
    /// head by `deadline`.
    ///
    /// The deadline only gates the *first* word: once any word of a message
    /// is available the receive commits and blocks for the remaining
    /// `buf.len() - 1` words regardless of the deadline. Multi-word messages
    /// are published contiguously, so the remainder is already in flight and
    /// the committed wait is bounded; aborting midway, in contrast, would
    /// tear a message (consumed words cannot be re-queued).
    ///
    /// # Safety contract (single consumer)
    ///
    /// As for [`WordQueue::receive_blocking`].
    pub(crate) fn receive_deadline(&self, buf: &mut [u64], deadline: Instant) -> bool {
        if buf.is_empty() {
            return true;
        }
        let head = self.head.load(Ordering::Relaxed);
        let cell = &self.buf[head % self.buf.len()];
        let mut spins = 0u32;
        // Relaxed availability probe: `receive_blocking` below re-loads
        // `seq` with Acquire before touching any payload.
        while cell.seq.load(Ordering::Relaxed) != head.wrapping_add(1) {
            if Instant::now() >= deadline {
                return false;
            }
            backoff(&mut spins);
        }
        self.receive_blocking(buf);
        true
    }

    /// Dequeues up to `buf.len()` words without blocking; returns how many
    /// words were read (a prefix of `buf` is filled).
    pub(crate) fn try_receive(&self, buf: &mut [u64]) -> usize {
        let cap = self.buf.len();
        let head = self.head.load(Ordering::Relaxed);
        let mut n = 0;
        for slot in buf.iter_mut() {
            let pos = head.wrapping_add(n);
            let cell = &self.buf[pos % cap];
            // Acquire on the publication check, as in `receive_blocking`.
            if cell.seq.load(Ordering::Acquire) != pos.wrapping_add(1) {
                break;
            }
            // SAFETY: as in `receive_blocking`.
            *slot = cell.value.with(|p| unsafe { *p });
            cell.seq.store(pos.wrapping_add(cap), Ordering::Release);
            n += 1;
        }
        if n > 0 {
            self.head.store(head.wrapping_add(n), Ordering::Release);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_words_fifo() {
        let q = WordQueue::new(8);
        for i in 0..5 {
            q.send_blocking(&[i]);
        }
        let mut buf = [0u64; 5];
        q.receive_blocking(&mut buf);
        assert_eq!(buf, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn multiword_message_is_contiguous() {
        let q = WordQueue::new(16);
        q.send_blocking(&[10, 11, 12]);
        q.send_blocking(&[20, 21, 22]);
        let mut buf = [0u64; 6];
        q.receive_blocking(&mut buf);
        assert_eq!(buf, [10, 11, 12, 20, 21, 22]);
    }

    #[test]
    fn empty_and_len() {
        let q = WordQueue::new(4);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        q.send_blocking(&[7]);
        assert!(!q.is_empty());
        assert_eq!(q.len(), 1);
        let mut buf = [0u64; 1];
        q.receive_blocking(&mut buf);
        assert!(q.is_empty());
    }

    #[test]
    fn try_send_full_queue() {
        let q = WordQueue::new(4);
        assert!(q.try_send(&[1, 2, 3, 4]));
        assert!(!q.try_send(&[5]));
        // A rejected non-blocking attempt never waited: it is a failure,
        // not back-pressure.
        assert_eq!(q.failed_sends(), 1);
        assert_eq!(q.blocked_sends(), 0);
        let mut buf = [0u64; 2];
        q.receive_blocking(&mut buf);
        assert_eq!(buf, [1, 2]);
        assert!(q.try_send(&[5, 6]));
        let mut rest = [0u64; 4];
        q.receive_blocking(&mut rest);
        assert_eq!(rest, [3, 4, 5, 6]);
        assert_eq!(q.failed_sends(), 1);
        assert_eq!(q.blocked_sends(), 0);
    }

    #[test]
    fn try_send_rejects_partial_fit() {
        let q = WordQueue::new(4);
        assert!(q.try_send(&[1, 2, 3]));
        // One slot free, three needed: must refuse without corrupting state.
        assert!(!q.try_send(&[4, 5, 6]));
        assert!(q.try_send(&[4]));
        let mut buf = [0u64; 4];
        q.receive_blocking(&mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn try_receive_partial() {
        let q = WordQueue::new(8);
        q.send_blocking(&[1, 2]);
        let mut buf = [0u64; 4];
        assert_eq!(q.try_receive(&mut buf), 2);
        assert_eq!(&buf[..2], &[1, 2]);
        assert_eq!(q.try_receive(&mut buf), 0);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn oversized_message_panics() {
        let q = WordQueue::new(2);
        q.send_blocking(&[1, 2, 3]);
    }

    #[test]
    fn zero_length_send_is_noop() {
        let q = WordQueue::new(2);
        q.send_blocking(&[]);
        assert!(q.try_send(&[]));
        assert!(q.is_empty());
    }

    #[test]
    fn uncontended_sends_count_no_backpressure() {
        let q = WordQueue::new(4);
        q.send_blocking(&[1]);
        q.send_blocking(&[2, 3]);
        let mut buf = [0u64; 3];
        q.receive_blocking(&mut buf);
        // Refill after the drain: the ring wraps, but no send ever waits on
        // the consumer, so nothing may be attributed to back-pressure.
        q.send_blocking(&[4, 5, 6, 7]);
        assert_eq!(q.blocked_sends(), 0);
        assert_eq!(q.failed_sends(), 0);
    }

    #[test]
    fn blocking_send_backpressure() {
        let q = Arc::new(WordQueue::new(2));
        q.send_blocking(&[1, 2]);
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            // Blocks until the consumer below frees space.
            q2.send_blocking(&[3, 4]);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut buf = [0u64; 2];
        q.receive_blocking(&mut buf);
        assert_eq!(buf, [1, 2]);
        t.join().unwrap();
        q.receive_blocking(&mut buf);
        assert_eq!(buf, [3, 4]);
        assert!(q.blocked_sends() >= 1);
        assert_eq!(q.failed_sends(), 0);
    }

    #[test]
    fn positions_wrap_across_usize_max() {
        // Power-of-two capacity: the `pos % capacity` ring mapping stays
        // continuous across the numeric wrap (see the module doc). Start 5
        // positions shy of the wrap so the test crosses it mid-stream.
        let q = WordQueue::with_start(8, usize::MAX - 4);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        // Fill across the wrap boundary.
        for i in 0..8u64 {
            assert!(q.try_send(&[100 + i]));
        }
        assert_eq!(q.len(), 8);
        assert!(!q.try_send(&[200]));
        assert_eq!(q.failed_sends(), 1);
        // Drain in two halves; the second half's positions have wrapped.
        let mut buf = [0u64; 4];
        q.receive_blocking(&mut buf);
        assert_eq!(buf, [100, 101, 102, 103]);
        assert_eq!(q.try_receive(&mut buf), 4);
        assert_eq!(buf, [104, 105, 106, 107]);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        // Another full lap entirely in post-wrap positions.
        q.send_blocking(&[1, 2, 3]);
        let mut rest = [0u64; 3];
        q.receive_blocking(&mut rest);
        assert_eq!(rest, [1, 2, 3]);
        assert_eq!(q.blocked_sends(), 0);
    }

    #[test]
    fn multiword_message_spanning_the_wrap_is_contiguous() {
        let q = WordQueue::with_start(4, usize::MAX - 1);
        // Positions MAX-1, MAX, 0, 1: the message itself spans the wrap.
        q.send_blocking(&[7, 8, 9, 10]);
        let mut buf = [0u64; 4];
        q.receive_blocking(&mut buf);
        assert_eq!(buf, [7, 8, 9, 10]);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_producers_preserve_per_sender_order() {
        // Miri executes this interpreter-slow; shrink the volume while
        // keeping real contention.
        const PER_SENDER: u64 = if cfg!(miri) { 40 } else { 2_000 };
        const SENDERS: u64 = 4;
        let q = Arc::new(WordQueue::new(64));
        let mut handles = Vec::new();
        for s in 0..SENDERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_SENDER {
                    // Two-word message: (sender, seq). Contiguity means the
                    // pair is never split by another sender's words.
                    q.send_blocking(&[s, i]);
                }
            }));
        }
        let mut next = [0u64; SENDERS as usize];
        let mut buf = [0u64; 2];
        for _ in 0..(PER_SENDER * SENDERS) {
            q.receive_blocking(&mut buf);
            let (s, i) = (buf[0], buf[1]);
            assert!(s < SENDERS, "corrupted sender id {s}");
            assert_eq!(i, next[s as usize], "per-sender FIFO violated");
            next[s as usize] += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(q.is_empty());
    }
}
