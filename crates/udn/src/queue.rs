//! Bounded multi-producer single-consumer FIFO of 64-bit words.
//!
//! This is the building block for one "hardware queue": a generalized
//! Vyukov-style bounded queue in which a producer reserves a *contiguous run*
//! of cells with a single `fetch_add`, so that a multi-word message occupies
//! consecutive positions (the UDN guarantee that the words of one message are
//! placed in the destination queue in order, without interleaving).
//!
//! Cell protocol (all positions are monotonically increasing global indices,
//! mapped onto the ring with `pos % capacity`):
//!
//! * `seq == pos`      — the cell is free for the producer that owns `pos`;
//! * `seq == pos + 1`  — the cell holds the word written for `pos`;
//! * after consuming `pos`, the consumer stores `seq = pos + capacity`,
//!   which is the "free" state for the next lap.
//!
//! A producer that reserved positions not yet freed by the consumer spins:
//! this is exactly the hardware back-pressure behaviour (§5.1: "if a hardware
//! queue is full, subsequent incoming messages back up into the network and
//! may cause the sender to block").

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use crossbeam_utils::CachePadded;

/// One ring cell: a publication sequence number plus the word payload.
struct Cell {
    seq: AtomicUsize,
    value: UnsafeCell<u64>,
}

// The `UnsafeCell` is only written by the producer that owns the cell's
// current sequence window and only read by the single consumer after the
// producer published it with a `Release` store of `seq`.
unsafe impl Sync for Cell {}

/// A bounded MPSC FIFO of `u64` words with contiguous multi-word enqueue.
///
/// The single-consumer discipline is enforced by the caller
/// ([`Endpoint`](crate::Endpoint) owns the consumer side exclusively); the
/// queue itself only assumes it, it cannot check it.
pub struct WordQueue {
    buf: Box<[Cell]>,
    /// Next position to be reserved by a producer.
    tail: CachePadded<AtomicUsize>,
    /// Next position to be consumed. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Number of times a producer had to wait for space (back-pressure).
    blocked_sends: AtomicU64,
}

/// Outcome of [`WordQueue::try_reserve`].
enum Reserve {
    /// Positions `[start, start + n)` were reserved.
    At(usize),
    /// Not enough free space at the moment of the attempt.
    Full,
}

impl WordQueue {
    /// Creates a queue holding at most `capacity` words.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        let buf = (0..capacity)
            .map(|i| Cell {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(0),
            })
            .collect();
        Self {
            buf,
            tail: CachePadded::new(AtomicUsize::new(0)),
            head: CachePadded::new(AtomicUsize::new(0)),
            blocked_sends: AtomicU64::new(0),
        }
    }

    /// Maximum number of words the queue can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Number of words currently enqueued (reserved-but-unpublished words
    /// count as enqueued; the value is a snapshot and may be stale by the
    /// time it is observed).
    #[inline]
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// `true` if no *published* word is available at the head.
    ///
    /// This is the consumer-side `is_queue_empty()` of the paper's system
    /// model: it looks at the head cell's publication flag, so a message
    /// whose reservation exists but whose first word has not been written
    /// yet is reported as "not yet there" — matching a hardware FIFO, where
    /// a word either arrived or did not.
    #[inline]
    pub fn is_empty(&self) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let cell = &self.buf[head % self.buf.len()];
        cell.seq.load(Ordering::Acquire) != head.wrapping_add(1)
    }

    /// Number of sends that observed a full queue and had to wait.
    #[inline]
    pub fn blocked_sends(&self) -> u64 {
        self.blocked_sends.load(Ordering::Relaxed)
    }

    /// Attempts to reserve `n` contiguous positions without blocking.
    fn try_reserve(&self, n: usize) -> Reserve {
        let cap = self.buf.len();
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let head = self.head.load(Ordering::Acquire);
            if tail + n > head + cap {
                return Reserve::Full;
            }
            match self.tail.compare_exchange_weak(
                tail,
                tail + n,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Reserve::At(tail),
                Err(t) => tail = t,
            }
        }
    }

    /// Writes `words` into previously reserved positions starting at `start`.
    ///
    /// Returns `true` if any cell was still held by the consumer when first
    /// examined — i.e. the producer genuinely waited for space. With a
    /// successful `try_reserve` this never happens (the reservation proved
    /// every cell free); with a blocking reservation it is the back-pressure
    /// point.
    fn publish(&self, start: usize, words: &[u64]) -> bool {
        let cap = self.buf.len();
        let mut waited = false;
        for (i, &w) in words.iter().enumerate() {
            let pos = start + i;
            let cell = &self.buf[pos % cap];
            // Wait until the consumer has freed this cell from the previous
            // lap.
            let mut spins = 0u32;
            while cell.seq.load(Ordering::Acquire) != pos {
                waited = true;
                backoff(&mut spins);
            }
            // SAFETY: the cell at `pos` is exclusively owned by this producer
            // between observing `seq == pos` and storing `seq == pos + 1`.
            unsafe { *cell.value.get() = w };
            cell.seq.store(pos + 1, Ordering::Release);
        }
        waited
    }

    /// Enqueues all of `words` as one contiguous message, blocking while the
    /// queue is full (hardware back-pressure semantics).
    ///
    /// Returns `true` if the send hit back-pressure — i.e. it genuinely
    /// waited for the consumer to free space (the same condition that
    /// increments [`WordQueue::blocked_sends`]).
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` exceeds the queue capacity: such a message
    /// could never fit and would deadlock real hardware too.
    pub fn send_blocking(&self, words: &[u64]) -> bool {
        assert!(
            words.len() <= self.buf.len(),
            "message of {} words cannot fit a queue of capacity {}",
            words.len(),
            self.buf.len()
        );
        if words.is_empty() {
            return false;
        }
        // Reserve unconditionally: the positions will become free once the
        // consumer drains preceding words. `publish` waits per-cell and
        // reports whether this send actually had to wait — a head snapshot
        // taken here instead would already be stale by the time the cells
        // are examined, counting sends the consumer drained in time.
        let start = self.tail.fetch_add(words.len(), Ordering::Relaxed);
        let waited = self.publish(start, words);
        if waited {
            self.blocked_sends.fetch_add(1, Ordering::Relaxed);
        }
        waited
    }

    /// Attempts to enqueue `words` without blocking.
    ///
    /// Returns `false` if the queue did not have room for the whole message
    /// at the moment of the attempt (the message is *not* partially
    /// enqueued).
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` exceeds the queue capacity.
    pub fn try_send(&self, words: &[u64]) -> bool {
        assert!(
            words.len() <= self.buf.len(),
            "message of {} words cannot fit a queue of capacity {}",
            words.len(),
            self.buf.len()
        );
        if words.is_empty() {
            return true;
        }
        match self.try_reserve(words.len()) {
            Reserve::At(start) => {
                // A successful reservation proved the space free, so this
                // publish never waits and counts no back-pressure.
                let waited = self.publish(start, words);
                debug_assert!(
                    !waited,
                    "try_send publish waited after a proven reservation"
                );
                true
            }
            Reserve::Full => {
                self.blocked_sends.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Dequeues exactly `buf.len()` words from the head of the queue,
    /// blocking until they are available.
    ///
    /// # Safety contract (single consumer)
    ///
    /// Must only be called by the unique consumer of this queue. The crate
    /// upholds this by funnelling all receives through the owned
    /// [`Endpoint`](crate::Endpoint).
    pub(crate) fn receive_blocking(&self, buf: &mut [u64]) {
        let cap = self.buf.len();
        let head = self.head.load(Ordering::Relaxed);
        for (i, slot) in buf.iter_mut().enumerate() {
            let pos = head + i;
            let cell = &self.buf[pos % cap];
            let mut spins = 0u32;
            while cell.seq.load(Ordering::Acquire) != pos + 1 {
                backoff(&mut spins);
            }
            // SAFETY: publication observed with Acquire; only this consumer
            // reads the cell before marking it free.
            *slot = unsafe { *cell.value.get() };
            cell.seq.store(pos + cap, Ordering::Release);
        }
        self.head.store(head + buf.len(), Ordering::Release);
    }

    /// Like [`WordQueue::receive_blocking`], but gives up — returning
    /// `false` and consuming nothing — if no word has been published at the
    /// head by `deadline`.
    ///
    /// The deadline only gates the *first* word: once any word of a message
    /// is available the receive commits and blocks for the remaining
    /// `buf.len() - 1` words regardless of the deadline. Multi-word messages
    /// are published contiguously, so the remainder is already in flight and
    /// the committed wait is bounded; aborting midway, in contrast, would
    /// tear a message (consumed words cannot be re-queued).
    ///
    /// # Safety contract (single consumer)
    ///
    /// As for [`WordQueue::receive_blocking`].
    pub(crate) fn receive_deadline(&self, buf: &mut [u64], deadline: Instant) -> bool {
        if buf.is_empty() {
            return true;
        }
        let head = self.head.load(Ordering::Relaxed);
        let cell = &self.buf[head % self.buf.len()];
        let mut spins = 0u32;
        while cell.seq.load(Ordering::Acquire) != head + 1 {
            if Instant::now() >= deadline {
                return false;
            }
            backoff(&mut spins);
        }
        self.receive_blocking(buf);
        true
    }

    /// Dequeues up to `buf.len()` words without blocking; returns how many
    /// words were read (a prefix of `buf` is filled).
    pub(crate) fn try_receive(&self, buf: &mut [u64]) -> usize {
        let cap = self.buf.len();
        let head = self.head.load(Ordering::Relaxed);
        let mut n = 0;
        for slot in buf.iter_mut() {
            let pos = head + n;
            let cell = &self.buf[pos % cap];
            if cell.seq.load(Ordering::Acquire) != pos + 1 {
                break;
            }
            // SAFETY: as in `receive_blocking`.
            *slot = unsafe { *cell.value.get() };
            cell.seq.store(pos + cap, Ordering::Release);
            n += 1;
        }
        if n > 0 {
            self.head.store(head + n, Ordering::Release);
        }
        n
    }
}

/// Spin with exponential escalation to `yield_now`, so that oversubscribed
/// hosts (fewer hardware threads than emulated cores) still make progress.
#[inline]
pub(crate) fn backoff(spins: &mut u32) {
    *spins = spins.saturating_add(1);
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_words_fifo() {
        let q = WordQueue::new(8);
        for i in 0..5 {
            q.send_blocking(&[i]);
        }
        let mut buf = [0u64; 5];
        q.receive_blocking(&mut buf);
        assert_eq!(buf, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn multiword_message_is_contiguous() {
        let q = WordQueue::new(16);
        q.send_blocking(&[10, 11, 12]);
        q.send_blocking(&[20, 21, 22]);
        let mut buf = [0u64; 6];
        q.receive_blocking(&mut buf);
        assert_eq!(buf, [10, 11, 12, 20, 21, 22]);
    }

    #[test]
    fn empty_and_len() {
        let q = WordQueue::new(4);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        q.send_blocking(&[7]);
        assert!(!q.is_empty());
        assert_eq!(q.len(), 1);
        let mut buf = [0u64; 1];
        q.receive_blocking(&mut buf);
        assert!(q.is_empty());
    }

    #[test]
    fn try_send_full_queue() {
        let q = WordQueue::new(4);
        assert!(q.try_send(&[1, 2, 3, 4]));
        assert!(!q.try_send(&[5]));
        assert_eq!(q.blocked_sends(), 1);
        let mut buf = [0u64; 2];
        q.receive_blocking(&mut buf);
        assert_eq!(buf, [1, 2]);
        assert!(q.try_send(&[5, 6]));
        let mut rest = [0u64; 4];
        q.receive_blocking(&mut rest);
        assert_eq!(rest, [3, 4, 5, 6]);
    }

    #[test]
    fn try_send_rejects_partial_fit() {
        let q = WordQueue::new(4);
        assert!(q.try_send(&[1, 2, 3]));
        // One slot free, three needed: must refuse without corrupting state.
        assert!(!q.try_send(&[4, 5, 6]));
        assert!(q.try_send(&[4]));
        let mut buf = [0u64; 4];
        q.receive_blocking(&mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn try_receive_partial() {
        let q = WordQueue::new(8);
        q.send_blocking(&[1, 2]);
        let mut buf = [0u64; 4];
        assert_eq!(q.try_receive(&mut buf), 2);
        assert_eq!(&buf[..2], &[1, 2]);
        assert_eq!(q.try_receive(&mut buf), 0);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn oversized_message_panics() {
        let q = WordQueue::new(2);
        q.send_blocking(&[1, 2, 3]);
    }

    #[test]
    fn zero_length_send_is_noop() {
        let q = WordQueue::new(2);
        q.send_blocking(&[]);
        assert!(q.try_send(&[]));
        assert!(q.is_empty());
    }

    #[test]
    fn uncontended_sends_count_no_backpressure() {
        let q = WordQueue::new(4);
        q.send_blocking(&[1]);
        q.send_blocking(&[2, 3]);
        let mut buf = [0u64; 3];
        q.receive_blocking(&mut buf);
        // Refill after the drain: the ring wraps, but no send ever waits on
        // the consumer, so nothing may be attributed to back-pressure.
        q.send_blocking(&[4, 5, 6, 7]);
        assert_eq!(q.blocked_sends(), 0);
    }

    #[test]
    fn blocking_send_backpressure() {
        let q = Arc::new(WordQueue::new(2));
        q.send_blocking(&[1, 2]);
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            // Blocks until the consumer below frees space.
            q2.send_blocking(&[3, 4]);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut buf = [0u64; 2];
        q.receive_blocking(&mut buf);
        assert_eq!(buf, [1, 2]);
        t.join().unwrap();
        q.receive_blocking(&mut buf);
        assert_eq!(buf, [3, 4]);
        assert!(q.blocked_sends() >= 1);
    }

    #[test]
    fn concurrent_producers_preserve_per_sender_order() {
        const PER_SENDER: u64 = 2_000;
        const SENDERS: u64 = 4;
        let q = Arc::new(WordQueue::new(64));
        let mut handles = Vec::new();
        for s in 0..SENDERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_SENDER {
                    // Two-word message: (sender, seq). Contiguity means the
                    // pair is never split by another sender's words.
                    q.send_blocking(&[s, i]);
                }
            }));
        }
        let mut next = [0u64; SENDERS as usize];
        let mut buf = [0u64; 2];
        for _ in 0..(PER_SENDER * SENDERS) {
            q.receive_blocking(&mut buf);
            let (s, i) = (buf[0], buf[1]);
            assert!(s < SENDERS, "corrupted sender id {s}");
            assert_eq!(i, next[s as usize], "per-sender FIFO violated");
            next[s as usize] += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(q.is_empty());
    }
}
