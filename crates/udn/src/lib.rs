//! Software emulation of TILE-Gx-style *hardware message passing* (the User
//! Dynamic Network, UDN).
//!
//! The PPoPP'14 paper "Leveraging Hardware Message Passing for Efficient
//! Thread Synchronization" (Petrović, Ropars, Schiper) evaluates its
//! algorithms on Tilera's TILE-Gx8036, whose cores exchange messages through
//! dedicated hardware FIFOs. That hardware is not available on commodity
//! machines, so this crate provides a faithful *functional* emulation of the
//! interface the paper's system model (§2) and platform description (§5.1)
//! rely on:
//!
//! * every registered thread owns an incoming FIFO **message queue** of
//!   64-bit words;
//! * each core's buffer is **4-way multiplexed** (four independent hardware
//!   queues per core, so up to four threads can share a core);
//! * a queue stores up to **118 words** (the TILE-Gx per-core buffer size);
//! * [`Endpoint::send`] is **asynchronous**: it may return before the message
//!   is consumed, and messages are never dropped — if the destination queue
//!   is full the sender eventually **blocks** (back-pressure), exactly like
//!   messages backing up into the mesh;
//! * a multi-word message `v1, v2, …, vn` is delivered **contiguously and in
//!   order** in the destination queue;
//! * [`Endpoint::receive`] returns `k` words from the head of the local
//!   queue, blocking until `k` words are available;
//! * [`Endpoint::is_queue_empty`] reports whether the local queue is empty.
//!
//! # Fidelity caveat
//!
//! This emulation runs over the host's cache-coherent shared memory, so it
//! *cannot* reproduce the performance property that makes hardware message
//! passing attractive (receives that read a core-local buffer without any
//! coherence traffic). It exists so that the synchronization algorithms built
//! on top of it (`mpsync-core`) are a real, correct, testable library. The
//! performance shape of the paper is reproduced separately by the `tilesim`
//! discrete-event simulator.
//!
//! # Quick example
//!
//! ```
//! use std::sync::Arc;
//! use mpsync_udn::{Fabric, FabricConfig};
//!
//! let fabric = Arc::new(Fabric::new(FabricConfig::new(2)));
//! let a = fabric.register_any().unwrap();
//! let mut b = fabric.register_any().unwrap();
//! let b_id = b.id();
//!
//! let t = std::thread::spawn(move || {
//!     let mut buf = [0u64; 3];
//!     b.receive(&mut buf);
//!     buf
//! });
//! a.send(b_id, &[1, 2, 3]).unwrap();
//! assert_eq!(t.join().unwrap(), [1, 2, 3]);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod endpoint;
mod error;
mod fabric;
mod queue;
mod stats;
pub(crate) mod sync;

#[cfg(all(test, loom))]
mod loom_models;

pub use endpoint::{Endpoint, EndpointId, Sender};
pub use error::{RegisterError, SendError};
pub use fabric::{Fabric, FabricConfig};
pub use queue::WordQueue;
pub use stats::{EndpointStats, FabricStats};

/// Number of independent hardware queues multiplexed onto one core's message
/// buffer on the TILE-Gx (§5.1: "4-way multiplexed").
pub const CHANNELS_PER_CORE: usize = 4;

/// Capacity, in 64-bit words, of one hardware message queue on the TILE-Gx
/// (§5.1: "capable of storing up to 118 64-bit words").
pub const QUEUE_CAPACITY_WORDS: usize = 118;
