//! Lightweight observability counters for the emulated fabric.

use crate::EndpointId;

/// Counters for one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndpointStats {
    /// Which endpoint these counters belong to.
    pub id: EndpointId,
    /// Messages sent *from* this handle (each `send` counts once).
    pub messages_sent: u64,
    /// Words received on this endpoint's queue.
    pub words_received: u64,
}

/// Aggregate counters for a whole fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricStats {
    /// Number of hardware queues on the fabric.
    pub endpoints: usize,
    /// Words currently enqueued across all queues (snapshot).
    pub words_pending: u64,
    /// Total sends that observed a full destination queue and waited.
    pub blocked_sends: u64,
    /// Total non-blocking send attempts rejected because the destination
    /// queue had no room (these never waited — not back-pressure).
    pub failed_sends: u64,
}
