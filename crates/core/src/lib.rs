//! Critical-section executors ("universal constructions") from *Leveraging
//! Hardware Message Passing for Efficient Thread Synchronization* (Petrović,
//! Ropars, Schiper — PPoPP 2014), plus the shared-memory state of the art the
//! paper compares against.
//!
//! All executors share one model: a mutable state `S` is owned by the
//! construction, and threads submit *operations* — `(op, arg)` pairs of
//! 64-bit words, interpreted by a [`Dispatcher`] — that must execute in
//! mutual exclusion. The `(op, arg)` encoding mirrors the paper's
//! "unique opcode of the CS" optimization (§5.2), which lets the servicing
//! thread inline the per-opcode code instead of jumping through a function
//! pointer; a function-pointer-table dispatcher ([`OpTable`]) is provided for
//! the ablation of that choice.
//!
//! # The constructions
//!
//! | Type | Paper name | Mechanism |
//! |---|---|---|
//! | [`MpServer`]  | MP-SERVER  (§4.1) | dedicated server thread; requests/responses over hardware message queues |
//! | [`HybComb`]   | HYBCOMB    (§4.2, Algorithm 1) | combining; messages for requests/responses, shared memory for combiner identity |
//! | [`ShmServer`] | SHM-SERVER (§5.2, RCL-like) | dedicated server thread; per-client cache-line channels |
//! | [`CcSynch`]   | CC-SYNCH [Fatourou & Kallimanis 2012] | combining over a SWAP-built request list |
//! | [`LockCs`]    | classic locks (§3) | inline execution under [`TasLock`]/[`TicketLock`]/[`McsLock`] |
//!
//! Every per-thread handle implements [`ApplyOp`], so code built on top (see
//! the `mpsync-objects` crate) is generic over the construction.
//!
//! # Example: a shared counter served by MP-SERVER
//!
//! ```
//! use std::sync::Arc;
//! use mpsync_udn::{Fabric, FabricConfig};
//! use mpsync_core::{ApplyOp, MpServer};
//!
//! // Opcode 0: fetch-and-increment.
//! fn dispatch(state: &mut u64, _op: u64, _arg: u64) -> u64 {
//!     let old = *state;
//!     *state += 1;
//!     old
//! }
//!
//! let fabric = Arc::new(Fabric::new(FabricConfig::new(4)));
//! let server = MpServer::spawn(fabric.register_any().unwrap(), 0u64, dispatch);
//!
//! let mut handles = Vec::new();
//! for _ in 0..3 {
//!     let mut client = server.client(fabric.register_any().unwrap());
//!     handles.push(std::thread::spawn(move || {
//!         for _ in 0..100 {
//!             client.apply(0, 0);
//!         }
//!     }));
//! }
//! for h in handles { h.join().unwrap(); }
//! assert_eq!(server.shutdown(), 300);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod cc_synch;
mod dispatch;
mod flat_combining;
mod hybcomb;
pub mod locks;
mod mp_server;
mod shm_server;
mod state;
pub(crate) mod sync;
pub mod wire;

#[cfg(all(test, loom))]
mod loom_models;

pub use cc_synch::{CcSynch, CcSynchHandle};
pub use dispatch::{Dispatcher, OpTable};
pub use flat_combining::{FlatCombining, FlatCombiningHandle};
pub use hybcomb::{HybComb, HybCombHandle, HybCombStats, DEFAULT_MAX_OPS};
pub use locks::{CsLock, LockCs, LockCsHandle, McsLock, TasLock, TicketLock};
pub use mp_server::{MpClient, MpServer};
pub use shm_server::{ShmClient, ShmServer};
pub use state::CsState;

/// A per-thread handle through which operations are submitted for execution
/// in mutual exclusion (the paper's `apply_op`).
///
/// Handles take `&mut self` because they own per-thread resources (a message
/// endpoint, a combining node, a lock queue node) whose single-owner
/// discipline Rust enforces through exclusive borrows.
pub trait ApplyOp {
    /// Executes `(op, arg)` in mutual exclusion with every other operation
    /// on the same underlying state, and returns the operation's result.
    fn apply(&mut self, op: u64, arg: u64) -> u64;
}

/// Blanket impl so `&mut H` can be passed where an `ApplyOp` is consumed.
impl<T: ApplyOp + ?Sized> ApplyOp for &mut T {
    #[inline]
    fn apply(&mut self, op: u64, arg: u64) -> u64 {
        (**self).apply(op, arg)
    }
}
