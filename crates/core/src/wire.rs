//! The delegation wire protocol: request encoding shared by MP-SERVER,
//! HYBCOMB, and the runtime's shard servers.
//!
//! The paper's protocol is three words — `{sender, op, arg}` — answered by
//! a one-word response. When telemetry is enabled ([`mpsync_telemetry::ENABLED`])
//! the request grows a **fourth word carrying the client's submit timestamp**
//! (ns since the telemetry epoch, from [`mpsync_telemetry::now_ns`]). That is
//! what makes queue-wait honest: the servicing thread computes
//! `now − submit_ns` for a request that genuinely crossed a hardware queue,
//! instead of guessing from its own receive cadence. [`REQ_WORDS`] is a
//! compile-time constant, so the disabled build sends exactly the paper's
//! three words with no runtime branching anywhere on the path.

use mpsync_telemetry as telemetry;

/// Words per request message: 3 (paper protocol), or 4 with telemetry
/// enabled (the extra word is the client submit timestamp).
pub const REQ_WORDS: usize = if telemetry::ENABLED { 4 } else { 3 };

/// A decoded request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The sender's endpoint id as a word (where the response goes).
    pub sender: u64,
    /// Opcode.
    pub op: u64,
    /// Argument.
    pub arg: u64,
    /// Client submit time (ns since the telemetry epoch), or 0 when
    /// telemetry is off ("no timestamp" — span recording ignores it).
    pub submit_ns: u64,
}

/// Encodes a request stamped with the current time. Equivalent to
/// [`request_at`]`(sender, op, arg, telemetry::now_ns())`.
#[inline]
pub fn request(sender: u64, op: u64, arg: u64) -> [u64; REQ_WORDS] {
    request_at(sender, op, arg, telemetry::now_ns())
}

/// Encodes a request with an explicit submit timestamp (callers that
/// already read the clock — e.g. to time the client's own wait — pass it
/// through instead of reading twice). The timestamp is carried only when
/// [`REQ_WORDS`] is 4; in 3-word builds it is dropped.
#[inline]
pub fn request_at(sender: u64, op: u64, arg: u64, submit_ns: u64) -> [u64; REQ_WORDS] {
    let mut words = [0u64; REQ_WORDS];
    words[0] = sender;
    words[1] = op;
    words[2] = arg;
    if let Some(slot) = words.get_mut(3) {
        *slot = submit_ns;
    }
    words
}

/// Decodes a request received off the wire.
#[inline]
pub fn decode(words: [u64; REQ_WORDS]) -> Request {
    Request {
        sender: words[0],
        op: words[1],
        arg: words[2],
        submit_ns: words.get(3).copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let r = decode(request_at(7, 2, 99, 1234));
        assert_eq!((r.sender, r.op, r.arg), (7, 2, 99));
        if telemetry::ENABLED {
            assert_eq!(REQ_WORDS, 4);
            assert_eq!(r.submit_ns, 1234);
        } else {
            assert_eq!(REQ_WORDS, 3);
            assert_eq!(r.submit_ns, 0);
        }
    }

    #[test]
    fn stamped_request_matches_mode() {
        let r = decode(request(1, 2, 3));
        // now_ns() is 0 when disabled, ≥ 1 when enabled — either way the
        // decoded timestamp agrees with the mode.
        assert_eq!(r.submit_ns > 0, telemetry::ENABLED);
    }
}
