//! HYBCOMB (§4.2, Algorithm 1): the paper's hybrid combining construction.
//!
//! HYBCOMB splits the two interaction patterns of combining across the two
//! communication substrates of a hybrid machine:
//!
//! * **requests and responses** between clients and the current combiner
//!   travel over *hardware message passing* (three-word requests
//!   `{id, op, arg}`, one-word responses), so the combiner reads requests
//!   from its local queue without coherence stalls;
//! * **combiner identity** is managed in *shared memory*, because doing it
//!   with messages would require either a dedicated thread (what combining
//!   tries to avoid) or broadcast-style communication.
//!
//! ## Shared-memory protocol (Algorithm 1, line numbers in comments)
//!
//! Each thread owns a `Node {thread_id, n_ops, combining_done}`. A global
//! pointer `last_registered_combiner` names the node a client may register
//! with: registration is a fetch-and-add on that node's `n_ops`; a result
//! `< MAX_OPS` entitles the client to send one request to the node's owner.
//! If registration fails, the client CASes `last_registered_combiner` to its
//! own node, joining a logical queue of would-be combiners (`CSqueue` of the
//! proof sketch); it then waits for its predecessor's `combining_done`.
//!
//! A combiner executes its own operation, eagerly drains its message queue
//! (beneficial but not necessary for correctness — the `eager_drain` knob
//! ablates it), closes registration by `SWAP`ing `MAX_OPS` into its `n_ops`
//! (learning the exact number of registered requests), serves the remainder,
//! and finally exchanges its node with the global `departed_combiner` spare
//! so the `combining_done` flag it leaves behind can be reset safely by a
//! later round.

// Statistics counters stay on std atomics on purpose (see `crate::sync`).
use std::sync::atomic::{AtomicU64 as StdAtomicU64, AtomicUsize as StdAtomicUsize};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use mpsync_telemetry as telemetry;
use mpsync_telemetry::{Algo, AtomicLog2Hist, Counter, Lane, Log2Hist};
use mpsync_udn::{Endpoint, EndpointId};

use crate::dispatch::Dispatcher;
use crate::state::{CsState, PoisonGuard};
use crate::sync::{spin, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::wire;
use crate::ApplyOp;

/// Default bound on requests served per combining round; the paper uses 200
/// for its main experiments (Figure 3c studies the sweep).
pub const DEFAULT_MAX_OPS: u64 = 200;

/// Placeholder owner id for the initial spare node (the paper's ⊥).
const NO_THREAD: u64 = u64::MAX;

/// Panic message once the construction is poisoned (a combiner panicked
/// inside its round, so the protected state may be torn, registered clients
/// will never get responses, and `combining_done` will never be set).
const POISONED: &str = "HYBCOMB poisoned: a combiner panicked inside the critical section and the \
     protected state may be inconsistent";

/// Algorithm 1's `Node` (line 2).
struct Node {
    thread_id: AtomicU64,
    n_ops: AtomicU64,
    combining_done: AtomicBool,
}

impl Node {
    fn new(thread_id: u64, n_ops: u64, combining_done: bool) -> Self {
        Self {
            thread_id: AtomicU64::new(thread_id),
            n_ops: AtomicU64::new(n_ops),
            combining_done: AtomicBool::new(combining_done),
        }
    }
}

/// Counters exposed for the paper's in-text measurements (§5.3): CAS cost
/// and combining behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybCombStats {
    /// `apply` calls observed.
    pub ops: u64,
    /// CAS attempts on `last_registered_combiner` (line 17).
    pub cas_attempts: u64,
    /// CAS attempts that failed.
    pub cas_failures: u64,
    /// Combining rounds (times some thread became combiner).
    pub rounds: u64,
    /// Requests executed by combiners (their own + received ones).
    pub combined_ops: u64,
    /// Rounds in which the combiner served no request besides its own —
    /// the benign race of lines 17–18 discussed in §4.2.
    pub orphan_rounds: u64,
}

impl HybCombStats {
    /// Average requests served per combining round (Figure 4b's
    /// "actual combining rate").
    pub fn combining_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.combined_ops as f64 / self.rounds as f64
        }
    }

    /// CAS executions per `apply` call (paper: ≤ 0.1 at high concurrency,
    /// ≤ 0.7 across multithreaded executions).
    pub fn cas_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.cas_attempts as f64 / self.ops as f64
        }
    }
}

struct Shared<S, D> {
    /// Node arena: index `i < max_threads` is thread `i`'s initial node;
    /// index `max_threads` is the single extra spare (line 3's
    /// `departed_combiner` initial node). Nodes migrate between threads via
    /// the `departed_combiner` exchange, so indices — not ownership — are
    /// the identity.
    nodes: Box<[CachePadded<Node>]>,
    /// Algorithm 1 line 4 (global). Holds a node index.
    last_registered_combiner: CachePadded<AtomicUsize>,
    /// Algorithm 1 line 3 (global). Holds a node index.
    departed_combiner: CachePadded<AtomicUsize>,
    state: CsState<S>,
    dispatch: D,
    max_ops: u64,
    eager_drain: bool,
    /// Set when a combiner's dispatch panicked mid-round: responses and the
    /// `combining_done` hand-off will never come, so every polling client
    /// and spinning would-be combiner panics instead (see [`PoisonGuard`]).
    poisoned: AtomicBool,
    next_handle: StdAtomicUsize,
    // Stats (relaxed counters; negligible cost next to the protocol).
    ops: StdAtomicU64,
    cas_attempts: StdAtomicU64,
    cas_failures: StdAtomicU64,
    rounds: StdAtomicU64,
    combined_ops: StdAtomicU64,
    orphan_rounds: StdAtomicU64,
    /// Distribution of combining-round sizes (requests served per round,
    /// combiner's own included). Always recorded — one histogram update per
    /// *round*, negligible next to the round itself — so runtime-level
    /// stats see round sizes even without the telemetry feature.
    batch_hist: AtomicLog2Hist,
    /// Debug-build check of Proposition 1 (mutual exclusion of lines
    /// 23–43): the number of threads currently in `combine`. Under loom the
    /// proposition is additionally *model-checked*: the `CsState` cell turns
    /// any two overlapping combiners into a reported data race.
    #[cfg(debug_assertions)]
    active_combiners: StdAtomicU64,
}

/// The HYBCOMB construction protecting a state `S`.
///
/// Create it with [`HybComb::new`], then register each participating thread
/// with [`HybComb::handle`], passing the thread's message
/// [`Endpoint`] — every participant must be able to receive, since any of
/// them may become the combiner.
///
/// ```
/// use std::sync::Arc;
/// use mpsync_udn::{Fabric, FabricConfig};
/// use mpsync_core::{ApplyOp, HybComb};
///
/// fn add(state: &mut u64, _op: u64, arg: u64) -> u64 { *state += arg; *state }
///
/// let fabric = Arc::new(Fabric::new(FabricConfig::new(1)));
/// let hc = Arc::new(HybComb::new(2, 200, 0u64, add as fn(&mut u64, u64, u64) -> u64));
///
/// let mut a = hc.handle(fabric.register_any().unwrap());
/// let mut b = hc.handle(fabric.register_any().unwrap());
/// let t = std::thread::spawn(move || { for _ in 0..1000 { b.apply(0, 1); } });
/// for _ in 0..1000 { a.apply(0, 1); }
/// t.join().unwrap();
/// assert_eq!(hc.stats().combined_ops, 2000);
/// ```
pub struct HybComb<S, D> {
    shared: Arc<Shared<S, D>>,
}

impl<S, D> HybComb<S, D>
where
    S: Send + 'static,
    D: Dispatcher<S>,
{
    /// Creates the construction for at most `max_threads` threads with the
    /// given combining bound (`MAX_OPS`).
    pub fn new(max_threads: usize, max_ops: u64, state: S, dispatch: D) -> Self {
        Self::with_options(max_threads, max_ops, state, dispatch, true)
    }

    /// Like [`HybComb::new`] but allowing the eager-drain loop (Algorithm 1
    /// lines 25–28) to be disabled, for the `abl-nodrain` ablation.
    pub fn with_options(
        max_threads: usize,
        max_ops: u64,
        state: S,
        dispatch: D,
        eager_drain: bool,
    ) -> Self {
        assert!(max_threads > 0, "need at least one thread");
        assert!(
            max_ops > 0 && max_ops < u64::MAX / 2,
            "max_ops must be positive and far from the counter's range end"
        );
        let spare = max_threads;
        let nodes: Box<[CachePadded<Node>]> = (0..max_threads + 1)
            .map(|i| {
                if i == spare {
                    // Line 3: departed_combiner ← {⊥, MAX_OPS, true}
                    CachePadded::new(Node::new(NO_THREAD, max_ops, true))
                } else {
                    // Line 5: my_node ← {id, MAX_OPS, false}; thread_id is
                    // filled in when the handle registers its endpoint.
                    CachePadded::new(Node::new(NO_THREAD, max_ops, false))
                }
            })
            .collect();
        Self {
            shared: Arc::new(Shared {
                nodes,
                // Line 4: last_registered_combiner ← departed_combiner
                last_registered_combiner: CachePadded::new(AtomicUsize::new(spare)),
                departed_combiner: CachePadded::new(AtomicUsize::new(spare)),
                state: CsState::new(state),
                dispatch,
                max_ops,
                eager_drain,
                poisoned: AtomicBool::new(false),
                next_handle: StdAtomicUsize::new(0),
                ops: StdAtomicU64::new(0),
                cas_attempts: StdAtomicU64::new(0),
                cas_failures: StdAtomicU64::new(0),
                rounds: StdAtomicU64::new(0),
                combined_ops: StdAtomicU64::new(0),
                orphan_rounds: StdAtomicU64::new(0),
                batch_hist: AtomicLog2Hist::new(),
                #[cfg(debug_assertions)]
                active_combiners: StdAtomicU64::new(0),
            }),
        }
    }

    /// Registers a participating thread with its message endpoint.
    ///
    /// # Panics
    ///
    /// Panics if more than `max_threads` handles are created.
    pub fn handle(&self, endpoint: Endpoint) -> HybCombHandle<S, D> {
        let i = self.shared.next_handle.fetch_add(1, Ordering::Relaxed);
        let max = self.shared.nodes.len() - 1;
        assert!(i < max, "HYBCOMB sized for {max} threads");
        self.shared.nodes[i]
            .thread_id
            .store(endpoint.id().to_word(), Ordering::Release);
        HybCombHandle {
            shared: Arc::clone(&self.shared),
            endpoint,
            my_node: i,
        }
    }

    /// Snapshot of the construction-wide counters.
    pub fn stats(&self) -> HybCombStats {
        let sh = &*self.shared;
        HybCombStats {
            ops: sh.ops.load(Ordering::Relaxed),
            cas_attempts: sh.cas_attempts.load(Ordering::Relaxed),
            cas_failures: sh.cas_failures.load(Ordering::Relaxed),
            rounds: sh.rounds.load(Ordering::Relaxed),
            combined_ops: sh.combined_ops.load(Ordering::Relaxed),
            orphan_rounds: sh.orphan_rounds.load(Ordering::Relaxed),
        }
    }

    /// Distribution of combining-round sizes observed so far (requests per
    /// round, the combiner's own operation included). Complements
    /// [`HybCombStats::combining_rate`] with the full shape, not just the
    /// mean.
    pub fn batch_hist(&self) -> Log2Hist {
        self.shared.batch_hist.snapshot()
    }

    /// Consumes the construction and returns the protected state.
    ///
    /// # Panics
    ///
    /// Panics if handles are still alive, or if a combiner panicked
    /// mid-round (the state may be torn, so it must not escape looking
    /// valid).
    pub fn into_state(self) -> S {
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => {
                assert!(!shared.poisoned.load(Ordering::Relaxed), "{POISONED}");
                shared.state.into_inner()
            }
            Err(_) => panic!("HYBCOMB handles still alive at into_state"),
        }
    }
}

/// Per-thread handle to a [`HybComb`] instance (owns the thread's message
/// endpoint and its current node index).
pub struct HybCombHandle<S, D> {
    shared: Arc<Shared<S, D>>,
    endpoint: Endpoint,
    my_node: usize,
}

impl<S, D> HybCombHandle<S, D>
where
    S: Send + 'static,
    D: Dispatcher<S>,
{
    /// The id of this thread's endpoint (where responses arrive).
    pub fn id(&self) -> EndpointId {
        self.endpoint.id()
    }

    /// Serves one received request: queue-wait span from the client's submit
    /// stamp, serve span around dispatch + reply. An associated function
    /// (not a method) so `combine` can call it while holding the
    /// `state`/`shared` borrows alongside the endpoint.
    #[inline]
    fn serve_one(
        endpoint: &mut Endpoint,
        sh: &Shared<S, D>,
        state: &mut S,
        buf: [u64; wire::REQ_WORDS],
    ) {
        let req = wire::decode(buf);
        let track = endpoint.id().index() as u32;
        let t_serve = if telemetry::ENABLED {
            telemetry::record_span(track, Algo::HybComb, Lane::QueueWait, req.submit_ns);
            telemetry::now_ns()
        } else {
            0
        };
        let ret = sh.dispatch.dispatch(state, req.op, req.arg);
        endpoint
            .send(EndpointId::from_word(req.sender), &[ret])
            .expect("HYBCOMB response endpoint vanished");
        if telemetry::ENABLED {
            telemetry::record_span(track, Algo::HybComb, Lane::Serve, t_serve);
        }
    }

    /// Runs the combiner phase (Algorithm 1 lines 23–43) and returns the
    /// value of this thread's own operation.
    #[cold]
    fn combine(&mut self, op: u64, arg: u64) -> u64 {
        let sh = &*self.shared;
        let nodes = &sh.nodes;
        let my = self.my_node;
        let endpoint = &mut self.endpoint;
        let track = endpoint.id().index() as u32;
        let t_hold = telemetry::now_ns();

        // Executable witness of Proposition 1 in debug builds: at most one
        // thread may be between this point and the `combining_done` release.
        // (Under loom the proposition is model-checked independently: the
        // `CsState` access below reports overlapping combiners as a race.)
        #[cfg(debug_assertions)]
        {
            let prev = sh.active_combiners.fetch_add(1, Ordering::AcqRel);
            debug_assert_eq!(prev, 0, "two active combiners — Proposition 1 violated");
        }

        // If a dispatched operation panics, mark the construction poisoned
        // on the way out: registered clients poll for it while awaiting
        // their response, and would-be combiners while awaiting our
        // `combining_done` — neither of which would otherwise ever arrive.
        let guard = PoisonGuard::new(&sh.poisoned);

        // SAFETY: Proposition 1 of the paper — the CAS on
        // `last_registered_combiner` plus the `combining_done` hand-off
        // build a queue (CSqueue) whose head is the unique thread executing
        // these lines; the Acquire spin on the predecessor's flag (done by
        // our caller) synchronizes with the previous combiner's Release, so
        // this thread is the unique accessor for the closure's whole extent.
        let (retval, ops_completed) = unsafe {
            sh.state.with_mut(|state| {
                // Line 23: execute my own operation first.
                let retval = sh.dispatch.dispatch(state, op, arg);
                let mut ops_completed: u64 = 0;

                // Lines 25–28: as long as the message queue is non-empty,
                // serve. (`is_queue_empty` is only a hint — a missed message
                // here is picked up by the post-SWAP blocking loop below.)
                let mut buf = [0u64; wire::REQ_WORDS];
                if sh.eager_drain {
                    while !endpoint.is_queue_empty() {
                        endpoint.receive(&mut buf);
                        Self::serve_one(endpoint, sh, state, buf);
                        ops_completed += 1;
                    }
                }

                // Lines 30–32: close combining for new requests; the SWAP's
                // old value is the number of successful registrations this
                // round. AcqRel: the Acquire side pairs with each client's
                // `n_ops` FAA (Release side), ordering the count we read
                // after the registrations it counts; the Release side pairs
                // with the FAA of clients that *fail* to register, so they
                // fail against a fully-closed node.
                let mut total_ops = nodes[my].n_ops.swap(sh.max_ops, Ordering::AcqRel);
                if total_ops > sh.max_ops {
                    total_ops = sh.max_ops;
                }

                // Lines 34–37: serve the remaining registered requests
                // (their messages may still be in flight; a client that
                // registered always sends — there is deliberately no poison
                // check between its FAA and its send — so these blocking
                // receives cannot wait on a request that never comes).
                while ops_completed < total_ops {
                    endpoint.receive(&mut buf);
                    Self::serve_one(endpoint, sh, state, buf);
                    ops_completed += 1;
                }
                (retval, ops_completed)
            })
        };
        guard.disarm();

        // Stats before departing (still in mutual exclusion, cheap).
        sh.rounds.fetch_add(1, Ordering::Relaxed);
        sh.combined_ops
            .fetch_add(ops_completed + 1, Ordering::Relaxed);
        if ops_completed == 0 {
            sh.orphan_rounds.fetch_add(1, Ordering::Relaxed);
        }
        // Round size including the combiner's own op; one histogram update
        // per round, recorded regardless of the telemetry feature.
        sh.batch_hist.record(ops_completed + 1);
        if telemetry::ENABLED {
            telemetry::count(Counter::HybRounds, 1);
            telemetry::count(Counter::HybServed, ops_completed + 1);
        }

        // Lines 39–42: exchange my node with the departed-combiner spare,
        // initialize the acquired node, and release the next combiner.
        // AcqRel on the swap: Acquire makes the parked node's last round
        // visible before we reinitialize it; Release publishes our parked
        // node. The acquired node's reinit can be Relaxed: its only future
        // reader synchronizes through our *next* registration CAS on
        // `last_registered_combiner` (Release), which is program-ordered
        // after these stores — and no one can still be spinning on the
        // acquired node, because the unique thread that ever spun on it is
        // the combiner that parked it (it stopped before parking).
        let new_my = sh.departed_combiner.swap(my, Ordering::AcqRel);
        nodes[new_my].combining_done.store(false, Ordering::Relaxed);
        nodes[new_my]
            .thread_id
            .store(self.endpoint.id().to_word(), Ordering::Relaxed);
        self.my_node = new_my;
        #[cfg(debug_assertions)]
        sh.active_combiners.fetch_sub(1, Ordering::AcqRel);
        // Line 42: `departed_combiner.combining_done ← true` — the node we
        // just parked (our old `my`) is the one our successor spins on. The
        // Release publishes the state mutations of this whole round.
        nodes[my].combining_done.store(true, Ordering::Release);

        if telemetry::ENABLED {
            // Combiner hold time: own op + eager drain + registered serves.
            telemetry::record_span(track, Algo::HybComb, Lane::Hold, t_hold);
        }
        retval
    }
}

impl<S, D> ApplyOp for HybCombHandle<S, D>
where
    S: Send + 'static,
    D: Dispatcher<S>,
{
    fn apply(&mut self, op: u64, arg: u64) -> u64 {
        let sh = &*self.shared;
        let nodes = &sh.nodes;
        assert!(!sh.poisoned.load(Ordering::Relaxed), "{POISONED}");
        sh.ops.fetch_add(1, Ordering::Relaxed);

        loop {
            // Line 9: read the last registered combiner. Acquire pairs with
            // the registering combiner's CAS Release: it makes that node's
            // reinit (`combining_done = false`, `thread_id`) visible before
            // we FAA into it.
            let last_reg = sh.last_registered_combiner.load(Ordering::Acquire);

            // Line 11: try to register with it. AcqRel: the Release side
            // pairs with the combiner's closing SWAP so our registration is
            // counted before it closes; the Acquire side pairs with the
            // combiner's `n_ops = 0` opening Release.
            if nodes[last_reg].n_ops.fetch_add(1, Ordering::AcqRel) < sh.max_ops {
                // Lines 13–14: send the request, await the response. NOTE:
                // there must be no poison check between the successful FAA
                // and the send — the combiner's blocking receives count on
                // every registered client's message arriving.
                let dest = EndpointId::from_word(nodes[last_reg].thread_id.load(Ordering::Acquire));
                let t0 = telemetry::now_ns();
                self.endpoint
                    .send(
                        dest,
                        &wire::request_at(self.endpoint.id().to_word(), op, arg, t0),
                    )
                    .expect("HYBCOMB combiner endpoint vanished");
                // Poll rather than block: if the combiner panics mid-round
                // our response never comes, and the poison flag is the only
                // signal left.
                let mut buf = [0u64; 1];
                let mut spins = 0u32;
                let ret = loop {
                    if self.endpoint.try_receive(&mut buf) == 1 {
                        break buf[0];
                    }
                    if sh.poisoned.load(Ordering::Relaxed) {
                        panic!("{POISONED}");
                    }
                    spin(&mut spins);
                };
                if telemetry::ENABLED {
                    let track = self.endpoint.id().index() as u32;
                    telemetry::record_span(track, Algo::HybComb, Lane::ClientWait, t0);
                }
                return ret;
            }

            // Line 17: try to register as a combiner. AcqRel: Release
            // publishes our node's state (most recently its departure
            // reinit) to clients and to our successor; Acquire pairs with
            // the previous registrant's Release for the same fields.
            sh.cas_attempts.fetch_add(1, Ordering::Relaxed);
            if sh
                .last_registered_combiner
                .compare_exchange(last_reg, self.my_node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Line 18: open my node for registrations. (Not atomic with
                // the CAS — the benign race of §4.2: a client that FAAs in
                // between simply fails to register and tries to become the
                // next combiner.)
                nodes[self.my_node].n_ops.store(0, Ordering::Release);

                // Lines 19–20: wait until my predecessor finished combining.
                // Acquire pairs with the departing combiner's
                // `combining_done` Release — crossing it hands us the
                // critical section (every state mutation of every previous
                // round). The poison check keeps us from spinning forever on
                // a predecessor that panicked mid-round.
                let mut spins = 0u32;
                while !nodes[last_reg].combining_done.load(Ordering::Acquire) {
                    if sh.poisoned.load(Ordering::Relaxed) {
                        panic!("{POISONED}");
                    }
                    spin(&mut spins);
                }
                // Line 21: break — become the active combiner.
                return self.combine(op, arg);
            }
            sh.cas_failures.fetch_add(1, Ordering::Relaxed);
            // Loop (line 8): re-read last_registered_combiner and retry.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsync_udn::{Fabric, FabricConfig};

    type CounterFn = fn(&mut u64, u64, u64) -> u64;

    fn fai(state: &mut u64, _op: u64, _arg: u64) -> u64 {
        let old = *state;
        *state += 1;
        old
    }

    fn fabric_for(threads: usize) -> Arc<Fabric> {
        Arc::new(Fabric::new(FabricConfig::new(threads.div_ceil(4).max(1))))
    }

    #[test]
    fn single_thread_becomes_combiner_every_time() {
        let fabric = fabric_for(1);
        let hc = HybComb::new(1, 8, 0u64, fai as CounterFn);
        let mut h = hc.handle(fabric.register_any().unwrap());
        for i in 0..50 {
            assert_eq!(h.apply(0, 0), i);
        }
        drop(h);
        let stats = hc.stats();
        assert_eq!(stats.ops, 50);
        assert_eq!(stats.rounds, 50);
        assert_eq!(stats.orphan_rounds, 50, "no other thread ever registers");
        assert_eq!(hc.into_state(), 50);
    }

    #[test]
    fn multithreaded_permutation() {
        const THREADS: usize = 8;
        const OPS: u64 = if cfg!(miri) { 40 } else { 3_000 };
        let fabric = fabric_for(THREADS);
        let hc = Arc::new(HybComb::new(THREADS, 50, 0u64, fai as CounterFn));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let mut h = hc.handle(fabric.register_any().unwrap());
            joins.push(std::thread::spawn(move || {
                (0..OPS).map(|_| h.apply(0, 0)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..THREADS as u64 * OPS).collect::<Vec<_>>());
        let stats = hc.stats();
        assert_eq!(stats.ops, THREADS as u64 * OPS);
        assert_eq!(stats.combined_ops, THREADS as u64 * OPS);
        assert!(stats.rounds > 0);
    }

    #[test]
    fn max_ops_one_degenerates_but_stays_correct() {
        const THREADS: usize = 4;
        const OPS: u64 = if cfg!(miri) { 30 } else { 800 };
        let fabric = fabric_for(THREADS);
        let hc = Arc::new(HybComb::new(THREADS, 1, 0u64, fai as CounterFn));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let mut h = hc.handle(fabric.register_any().unwrap());
            joins.push(std::thread::spawn(move || {
                (0..OPS).map(|_| h.apply(0, 0)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..THREADS as u64 * OPS).collect::<Vec<_>>());
    }

    #[test]
    fn no_drain_ablation_stays_correct() {
        const THREADS: usize = 4;
        const OPS: u64 = if cfg!(miri) { 30 } else { 1_500 };
        let fabric = fabric_for(THREADS);
        let hc = Arc::new(HybComb::with_options(
            THREADS,
            50,
            0u64,
            fai as CounterFn,
            false,
        ));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let mut h = hc.handle(fabric.register_any().unwrap());
            joins.push(std::thread::spawn(move || {
                (0..OPS).map(|_| h.apply(0, 0)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..THREADS as u64 * OPS).collect::<Vec<_>>());
    }

    #[test]
    fn stats_identities_hold() {
        const THREADS: usize = 6;
        const OPS: u64 = if cfg!(miri) { 30 } else { 1_000 };
        let fabric = fabric_for(THREADS);
        let hc = Arc::new(HybComb::new(THREADS, 30, 0u64, fai as CounterFn));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let mut h = hc.handle(fabric.register_any().unwrap());
            joins.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    h.apply(0, 0);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let s = hc.stats();
        // Every op is executed exactly once, either by its own combiner
        // round or on a combiner's behalf.
        assert_eq!(s.combined_ops, THREADS as u64 * OPS);
        assert!(s.combining_rate() >= 1.0);
        assert!(s.combining_rate() <= 30.0 + 1.0);
        assert!(
            s.cas_attempts >= s.rounds,
            "every round needs a successful CAS"
        );
        assert_eq!(s.cas_attempts - s.cas_failures, s.rounds);
    }

    #[test]
    #[should_panic(expected = "sized for")]
    fn too_many_handles_panics() {
        let fabric = fabric_for(2);
        let hc = HybComb::new(1, 8, 0u64, fai as CounterFn);
        let _a = hc.handle(fabric.register_any().unwrap());
        let _b = hc.handle(fabric.register_any().unwrap());
    }

    #[test]
    fn combiner_panic_poisons_instead_of_wedging() {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        fn boom(state: &mut u64, op: u64, _arg: u64) -> u64 {
            if op == 1 {
                panic!("dispatch exploded");
            }
            *state += 1;
            *state
        }

        let fabric = fabric_for(2);
        let hc = Arc::new(HybComb::new(2, 8, 0u64, boom as CounterFn));
        let mut a = hc.handle(fabric.register_any().unwrap());
        // Single thread, so `a` deterministically becomes the combiner and
        // its own panicking op unwinds out of the dispatch region.
        let err = catch_unwind(AssertUnwindSafe(|| a.apply(1, 0))).unwrap_err();
        assert_eq!(err.downcast_ref::<&str>(), Some(&"dispatch exploded"));

        // Every later apply must report the poisoning, not hang waiting for
        // a response or hand-off that will never come.
        let mut b = hc.handle(fabric.register_any().unwrap());
        let err = catch_unwind(AssertUnwindSafe(|| b.apply(0, 0))).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("formatted panic");
        assert!(msg.contains("HYBCOMB poisoned"), "got: {msg}");

        // And the (possibly torn) state must not escape looking valid.
        drop((a, b));
        let hc = Arc::try_unwrap(hc).unwrap_or_else(|_| panic!("handles alive"));
        let err = catch_unwind(AssertUnwindSafe(|| hc.into_state())).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("formatted panic");
        assert!(msg.contains("HYBCOMB poisoned"), "got: {msg}");
    }
}
