//! Operation dispatch: how a servicing thread turns `(op, arg)` words into
//! an execution against the protected state.

/// Interprets encoded operations against the protected state.
///
/// The common instantiation is a plain function pointer
/// `fn(&mut S, u64, u64) -> u64` matching the paper's opcode interface
/// (§5.2): the servicing thread switches on a small opcode, which the
/// compiler can inline. [`OpTable`] provides the function-pointer-per-opcode
/// alternative (the paper's original `apply_op(func_ptr, args)` shape) for
/// the inlining ablation.
pub trait Dispatcher<S>: Send + Sync + 'static {
    /// Executes `(op, arg)` against `state`, returning the result word.
    fn dispatch(&self, state: &mut S, op: u64, arg: u64) -> u64;
}

impl<S, F> Dispatcher<S> for F
where
    F: Fn(&mut S, u64, u64) -> u64 + Send + Sync + 'static,
{
    #[inline(always)]
    fn dispatch(&self, state: &mut S, op: u64, arg: u64) -> u64 {
        self(state, op, arg)
    }
}

/// Function-pointer-table dispatch: `op` indexes a table of
/// `fn(&mut S, u64) -> u64`.
///
/// This is the shape of the paper's original interface, where a client ships
/// a function pointer and the servicing thread calls through it — an
/// indirect call the compiler cannot inline. The paper reports that
/// replacing it with a unique opcode (a direct, inlinable dispatch) gives "a
/// visible performance increase in most cases" while the results stay
/// qualitatively the same; `repro abl-fptr` measures exactly that gap.
pub struct OpTable<S> {
    table: Vec<fn(&mut S, u64) -> u64>,
}

impl<S> OpTable<S> {
    /// Builds a table from the given per-opcode functions; opcode `i`
    /// invokes `fns[i]`.
    pub fn new(fns: Vec<fn(&mut S, u64) -> u64>) -> Self {
        Self { table: fns }
    }

    /// Number of opcodes in the table.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` if the table has no opcodes.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl<S: 'static> Dispatcher<S> for OpTable<S> {
    #[inline]
    fn dispatch(&self, state: &mut S, op: u64, arg: u64) -> u64 {
        // The indirect call below is the point: it models shipping a
        // function pointer in the request message.
        let f = self.table[op as usize];
        f(state, arg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inc(s: &mut u64, _arg: u64) -> u64 {
        *s += 1;
        *s
    }

    fn add(s: &mut u64, arg: u64) -> u64 {
        *s += arg;
        *s
    }

    #[test]
    fn fn_pointer_dispatch() {
        let d: fn(&mut u64, u64, u64) -> u64 = |s, op, arg| match op {
            0 => {
                *s += arg;
                *s
            }
            _ => *s,
        };
        let mut state = 5u64;
        assert_eq!(d.dispatch(&mut state, 0, 3), 8);
        assert_eq!(d.dispatch(&mut state, 1, 0), 8);
    }

    #[test]
    fn op_table_dispatch() {
        let t = OpTable::new(vec![inc, add]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let mut state = 0u64;
        assert_eq!(t.dispatch(&mut state, 0, 0), 1);
        assert_eq!(t.dispatch(&mut state, 1, 10), 11);
        assert_eq!(state, 11);
    }

    #[test]
    #[should_panic]
    fn op_table_unknown_opcode_panics() {
        let t = OpTable::new(vec![inc]);
        let mut state = 0u64;
        t.dispatch(&mut state, 7, 0);
    }
}
