//! Loom models for the core executors (`RUSTFLAGS="--cfg loom" cargo test
//! -p mpsync-core --lib`).
//!
//! Every protocol-bearing atomic in this crate goes through `crate::sync`,
//! and the protected state sits in a loom `UnsafeCell` (`CsState`), so these
//! models explore bounded interleavings of the *production* code and any
//! mutual-exclusion violation — two combiners, two lock holders — surfaces
//! as a reported data race on the state cell. See DESIGN.md §9 for the
//! happens-before graphs being checked.
//!
//! Under `--cfg loom` the whole dependency tree is built with the facade, so
//! HYBCOMB models also explore the underlying `WordQueue` protocol of
//! `mpsync-udn` — requests and responses travel through the real ring.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use mpsync_udn::{Fabric, FabricConfig};

use crate::locks::{McsLock, TasLock};
use crate::{ApplyOp, CcSynch, HybComb, LockCs};

type CounterFn = fn(&mut u64, u64, u64) -> u64;

fn fai(state: &mut u64, _op: u64, _arg: u64) -> u64 {
    let old = *state;
    *state += 1;
    old
}

/// Dispatch that panics on opcode 1 — the poison-model trigger.
fn boom(state: &mut u64, op: u64, _arg: u64) -> u64 {
    if op == 1 {
        panic!("dispatch exploded");
    }
    let old = *state;
    *state += 1;
    old
}

/// A panic payload is acceptable in the poison models iff it is either the
/// injected dispatch panic or the construction's poison report.
fn assert_expected_panic(err: &(dyn std::any::Any + Send), poison_tag: &str) {
    let msg = err
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| err.downcast_ref::<String>().cloned())
        .expect("panic payload should be a string");
    assert!(
        msg.contains("dispatch exploded") || msg.contains(poison_tag),
        "unexpected panic: {msg}"
    );
}

/// CC-SYNCH, two threads, one op each: every interleaving must execute both
/// ops exactly once (a permutation of {0, 1}) with the state cell race-free
/// — the enqueue `tail` SWAP plus the `wait` Release/Acquire hand-off are
/// the edges under test.
#[test]
fn cc_synch_two_threads_permutation() {
    loom::model(|| {
        let cs = Arc::new(CcSynch::new(2, 8, 0u64, fai as CounterFn));
        let mut a = cs.handle();
        let t = {
            let cs = Arc::clone(&cs);
            loom::thread::spawn(move || {
                let mut b = cs.handle();
                b.apply(0, 0)
            })
        };
        let ra = a.apply(0, 0);
        let rb = t.join().unwrap();
        let mut seen = [ra, rb];
        seen.sort_unstable();
        assert_eq!(seen, [0, 1]);
        drop(a);
        let cs = Arc::try_unwrap(cs).unwrap_or_else(|_| panic!("handles alive"));
        assert_eq!(cs.into_state(), 2);
    });
}

/// CC-SYNCH with `max_ops == 1`: a combiner that serves only itself must
/// hand the combiner role to its successor (the explicit hand-off Release),
/// never wedge it.
#[test]
fn cc_synch_hand_off_with_max_ops_one() {
    loom::model(|| {
        let cs = Arc::new(CcSynch::new(2, 1, 0u64, fai as CounterFn));
        let mut a = cs.handle();
        let t = {
            let cs = Arc::clone(&cs);
            loom::thread::spawn(move || {
                let mut b = cs.handle();
                b.apply(0, 0)
            })
        };
        let ra = a.apply(0, 0);
        let rb = t.join().unwrap();
        let mut seen = [ra, rb];
        seen.sort_unstable();
        assert_eq!(seen, [0, 1]);
    });
}

/// Loom regression model for the panic-safety fix: a combiner whose dispatch
/// panics must poison the construction so the other thread panics (with the
/// injected or the poison message) or completes — but never spins forever
/// (loom's step bound would flag the wedge the old code produced).
#[test]
fn cc_synch_combiner_panic_poisons_waiters() {
    loom::model(|| {
        let cs = Arc::new(CcSynch::new(2, 8, 0u64, boom as CounterFn));
        let mut a = cs.handle();
        let t = {
            let cs = Arc::clone(&cs);
            loom::thread::spawn(move || {
                let mut b = cs.handle();
                // The benign op: may be served before the poison round, may
                // observe the poisoning, or may itself serve op 1 and panic.
                catch_unwind(AssertUnwindSafe(|| b.apply(0, 0)))
            })
        };
        let ra = catch_unwind(AssertUnwindSafe(|| a.apply(1, 0)));
        let rb = t.join().unwrap();
        for r in [&ra, &rb] {
            if let Err(e) = r {
                assert_expected_panic(e.as_ref(), "CC-SYNCH poisoned");
            }
        }
        // Op 1 executed (and panicked) under exactly one combiner, so at
        // least one of the two applies must have unwound.
        assert!(ra.is_err() || rb.is_err());
    });
}

/// HYBCOMB, two threads, one op each, registration open (`max_ops` large):
/// all interleavings of FAA-registration vs. CAS-combining must execute both
/// ops exactly once. Proposition 1 (at most one active combiner) is checked
/// by construction: an interleaving with two combiners would overlap on the
/// `CsState` cell and be reported as a data race. This model also audits the
/// eager-drain `is_queue_empty` Relaxed hint: a stale answer may only skip
/// the drain, never corrupt a serve.
#[test]
fn hybcomb_single_active_combiner_proposition1() {
    loom::model(|| {
        let fabric = Arc::new(Fabric::new(FabricConfig::new(1)));
        let hc = Arc::new(HybComb::new(2, 8, 0u64, fai as CounterFn));
        let mut a = hc.handle(fabric.register_any().unwrap());
        let t = {
            let hc = Arc::clone(&hc);
            let fabric = Arc::clone(&fabric);
            loom::thread::spawn(move || {
                let mut b = hc.handle(fabric.register_any().unwrap());
                b.apply(0, 0)
            })
        };
        let ra = a.apply(0, 0);
        let rb = t.join().unwrap();
        let mut seen = [ra, rb];
        seen.sort_unstable();
        assert_eq!(seen, [0, 1]);
        drop(a);
        let hc = Arc::try_unwrap(hc).unwrap_or_else(|_| panic!("handles alive"));
        assert_eq!(hc.into_state(), 2);
    });
}

/// HYBCOMB with `max_ops == 1`: the second thread cannot register (the FAA
/// gate is closed after one op), so it must CAS itself onto the combiner
/// queue and cross the `combining_done` Release/Acquire hand-off — the
/// departure path (`departed_combiner` node exchange) is exercised in every
/// interleaving.
#[test]
fn hybcomb_combiner_hand_off_with_max_ops_one() {
    loom::model(|| {
        let fabric = Arc::new(Fabric::new(FabricConfig::new(1)));
        let hc = Arc::new(HybComb::new(2, 1, 0u64, fai as CounterFn));
        let mut a = hc.handle(fabric.register_any().unwrap());
        let t = {
            let hc = Arc::clone(&hc);
            let fabric = Arc::clone(&fabric);
            loom::thread::spawn(move || {
                let mut b = hc.handle(fabric.register_any().unwrap());
                b.apply(0, 0)
            })
        };
        let ra = a.apply(0, 0);
        let rb = t.join().unwrap();
        let mut seen = [ra, rb];
        seen.sort_unstable();
        assert_eq!(seen, [0, 1]);
    });
}

/// Loom regression model for the panic-safety fix: a HYBCOMB combiner whose
/// dispatch panics must poison the construction; a registered client polling
/// for its response (rather than blocking — the fix under test) observes the
/// poison instead of waiting forever for a reply that cannot come.
#[test]
fn hybcomb_combiner_panic_poisons_clients() {
    loom::model(|| {
        let fabric = Arc::new(Fabric::new(FabricConfig::new(1)));
        let hc = Arc::new(HybComb::new(2, 8, 0u64, boom as CounterFn));
        let mut a = hc.handle(fabric.register_any().unwrap());
        let t = {
            let hc = Arc::clone(&hc);
            let fabric = Arc::clone(&fabric);
            loom::thread::spawn(move || {
                let mut b = hc.handle(fabric.register_any().unwrap());
                catch_unwind(AssertUnwindSafe(|| b.apply(0, 0)))
            })
        };
        let ra = catch_unwind(AssertUnwindSafe(|| a.apply(1, 0)));
        let rb = t.join().unwrap();
        for r in [&ra, &rb] {
            if let Err(e) = r {
                assert_expected_panic(e.as_ref(), "HYBCOMB poisoned");
            }
        }
        assert!(ra.is_err() || rb.is_err());
    });
}

/// MCS under LockCs: the `tail` SWAP enqueue, successor link Release, local
/// `locked` spin, and both unlock paths (tail CAS back to empty vs. waiting
/// for the successor link) must all transfer the critical section race-free.
#[test]
fn mcs_lock_cs_mutual_exclusion() {
    loom::model(|| {
        let cs = Arc::new(LockCs::<u64, McsLock, CounterFn>::new(0, fai as CounterFn));
        let mut a = cs.handle();
        let t = {
            let cs = Arc::clone(&cs);
            loom::thread::spawn(move || {
                let mut b = cs.handle();
                b.apply(0, 0)
            })
        };
        let ra = a.apply(0, 0);
        let rb = t.join().unwrap();
        let mut seen = [ra, rb];
        seen.sort_unstable();
        assert_eq!(seen, [0, 1]);
        drop(a);
        let cs = Arc::try_unwrap(cs).unwrap_or_else(|_| panic!("handles alive"));
        assert_eq!(cs.into_state(), 2);
    });
}

/// TAS lock hand-off: the Acquire SWAP / Release store pair is the only
/// edge; the Relaxed test loop must stay a hint.
#[test]
fn tas_lock_cs_mutual_exclusion() {
    loom::model(|| {
        let cs = Arc::new(LockCs::<u64, TasLock, CounterFn>::new(0, fai as CounterFn));
        let mut a = cs.handle();
        let t = {
            let cs = Arc::clone(&cs);
            loom::thread::spawn(move || {
                let mut b = cs.handle();
                b.apply(0, 0)
            })
        };
        let ra = a.apply(0, 0);
        let rb = t.join().unwrap();
        let mut seen = [ra, rb];
        seen.sort_unstable();
        assert_eq!(seen, [0, 1]);
    });
}
