//! Atomic/cell facade: `std::sync` in production, `loom` under
//! `RUSTFLAGS="--cfg loom"` (see DESIGN.md §9).
//!
//! Only *protocol-bearing* shared state goes through this module — the
//! enqueue/hand-off atomics of CC-SYNCH, HYBCOMB's combiner-identity words,
//! the lock words, flat combining's publication records, and the `CsState`
//! cell they all guard. Pure statistics counters (`rounds`, `combined`,
//! `cas_attempts`, …) stay on `std::sync::atomic` deliberately: they carry
//! no synchronization and modelling them would blow up loom's state space
//! without checking anything.

#[cfg(loom)]
pub(crate) use loom::cell::UnsafeCell;
#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Thin `std` stand-in for loom's closure-based `UnsafeCell` so production
/// code and model share one access idiom (`with` / `with_mut`).
#[cfg(not(loom))]
#[derive(Debug)]
pub(crate) struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(loom))]
impl<T> UnsafeCell<T> {
    pub(crate) const fn new(value: T) -> Self {
        Self(std::cell::UnsafeCell::new(value))
    }

    #[inline(always)]
    pub(crate) fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }

    pub(crate) fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

/// One iteration of a bounded spin-wait: cheap PAUSE while young, OS yield
/// once the wait drags on. Under loom every iteration must instead be a
/// scheduling point (`loom::thread::yield_now`), or the model's preemption
/// bound can pin the spinner and livelock the exploration.
#[inline]
pub(crate) fn spin(spins: &mut u32) {
    #[cfg(loom)]
    {
        let _ = spins;
        loom::thread::yield_now();
    }
    #[cfg(not(loom))]
    {
        *spins = spins.saturating_add(1);
        if *spins < 128 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}
