//! SHM-SERVER (§5.2): the client/server approach over cache-coherent shared
//! memory — a simplified Remote Core Locking (RCL) server.
//!
//! Each client owns a dedicated cache-line-sized *channel*; to execute a
//! critical section it writes its request into the channel and spins there
//! until the server's reply appears (Figure 1 of the paper). The server
//! scans the channels round-robin. On a cache-coherent machine both the
//! server's read of a fresh request and its write of the response are RMRs —
//! the two stalls per CS that MP-SERVER eliminates.
//!
//! As in the paper, this is RCL's core mechanism without the advanced
//! features (nested CSes etc.), a simplification that does not reduce
//! performance.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_utils::CachePadded;

use crate::dispatch::Dispatcher;
use crate::ApplyOp;

/// Channel states. The client flips `IDLE → REQ`; the server flips
/// `REQ → DONE`; the client consumes `DONE` and later writes `REQ` again.
const IDLE: u64 = 0;
const REQ: u64 = 1;
const DONE: u64 = 2;

/// One client's bi-directional channel, padded to its own cache line so
/// that client/server traffic on different channels never falsely shares.
struct Channel {
    status: AtomicU64,
    op: AtomicU64,
    arg: AtomicU64,
    ret: AtomicU64,
}

impl Channel {
    fn new() -> Self {
        Self {
            status: AtomicU64::new(IDLE),
            op: AtomicU64::new(0),
            arg: AtomicU64::new(0),
            ret: AtomicU64::new(0),
        }
    }
}

struct Shared {
    channels: Box<[CachePadded<Channel>]>,
    next_slot: AtomicUsize,
    stop: AtomicBool,
}

/// Handle to a running SHM-SERVER instance.
pub struct ShmServer<S> {
    shared: Arc<Shared>,
    join: Option<JoinHandle<S>>,
}

impl<S: Send + 'static> ShmServer<S> {
    /// Spawns the server thread, with room for `max_clients` client
    /// channels.
    pub fn spawn<D>(max_clients: usize, state: S, dispatch: D) -> Self
    where
        D: Dispatcher<S>,
    {
        assert!(max_clients > 0, "need at least one client channel");
        let shared = Arc::new(Shared {
            channels: (0..max_clients)
                .map(|_| CachePadded::new(Channel::new()))
                .collect(),
            next_slot: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
        });
        let worker = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name("shm-server".into())
            .spawn(move || Self::serve(worker, state, dispatch))
            .expect("failed to spawn SHM-SERVER thread");
        Self {
            shared,
            join: Some(join),
        }
    }

    /// The server loop of Figure 1: R(i) — CS(i) — W(i), scanning channels.
    fn serve<D>(shared: Arc<Shared>, mut state: S, dispatch: D) -> S
    where
        D: Dispatcher<S>,
    {
        let mut idle_scans = 0u32;
        loop {
            let mut served = false;
            for ch in shared.channels.iter() {
                if ch.status.load(Ordering::Acquire) == REQ {
                    let op = ch.op.load(Ordering::Relaxed);
                    let arg = ch.arg.load(Ordering::Relaxed);
                    let ret = dispatch.dispatch(&mut state, op, arg);
                    ch.ret.store(ret, Ordering::Relaxed);
                    ch.status.store(DONE, Ordering::Release);
                    served = true;
                }
            }
            if served {
                idle_scans = 0;
            } else {
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                idle_scans = idle_scans.saturating_add(1);
                if idle_scans > 64 {
                    // Oversubscribed hosts: let clients run.
                    std::thread::yield_now();
                }
            }
        }
        state
    }

    /// Allocates a client channel.
    ///
    /// # Panics
    ///
    /// Panics if more than `max_clients` clients are created.
    pub fn client(&self) -> ShmClient {
        let slot = self.shared.next_slot.fetch_add(1, Ordering::Relaxed);
        assert!(
            slot < self.shared.channels.len(),
            "SHM-SERVER has only {} client channels",
            self.shared.channels.len()
        );
        ShmClient {
            shared: Arc::clone(&self.shared),
            slot,
        }
    }

    /// Stops the server thread (after it finishes any requests already
    /// visible) and returns the final protected state.
    pub fn shutdown(mut self) -> S {
        self.shared.stop.store(true, Ordering::Release);
        self.join
            .take()
            .expect("server already shut down")
            .join()
            .expect("SHM-SERVER thread panicked")
    }
}

impl<S> Drop for ShmServer<S> {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            self.shared.stop.store(true, Ordering::Release);
            let _ = join.join();
        }
    }
}

/// Per-thread client of a [`ShmServer`], owning one cache-line channel.
pub struct ShmClient {
    shared: Arc<Shared>,
    slot: usize,
}

impl ShmClient {
    /// Index of this client's channel (its RCL "client id").
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl ApplyOp for ShmClient {
    #[inline]
    fn apply(&mut self, op: u64, arg: u64) -> u64 {
        let ch = &self.shared.channels[self.slot];
        ch.op.store(op, Ordering::Relaxed);
        ch.arg.store(arg, Ordering::Relaxed);
        ch.status.store(REQ, Ordering::Release);
        let mut spins = 0u32;
        while ch.status.load(Ordering::Acquire) != DONE {
            spins = spins.saturating_add(1);
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        let ret = ch.ret.load(Ordering::Relaxed);
        ch.status.store(IDLE, Ordering::Relaxed);
        ret
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_dispatch(state: &mut u64, _op: u64, _arg: u64) -> u64 {
        let old = *state;
        *state += 1;
        old
    }

    #[test]
    fn single_client_roundtrip() {
        let server = ShmServer::spawn(2, 0u64, counter_dispatch as fn(&mut u64, u64, u64) -> u64);
        let mut c = server.client();
        assert_eq!(c.apply(0, 0), 0);
        assert_eq!(c.apply(0, 0), 1);
        assert_eq!(server.shutdown(), 2);
    }

    #[test]
    fn fetch_and_inc_results_are_a_permutation() {
        const THREADS: usize = 6;
        const OPS: u64 = 2_000;
        let server = ShmServer::spawn(
            THREADS,
            0u64,
            counter_dispatch as fn(&mut u64, u64, u64) -> u64,
        );
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let mut c = server.client();
            joins.push(std::thread::spawn(move || {
                (0..OPS).map(|_| c.apply(0, 0)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..THREADS as u64 * OPS).collect::<Vec<_>>());
        assert_eq!(server.shutdown(), THREADS as u64 * OPS);
    }

    #[test]
    #[should_panic(expected = "client channels")]
    fn too_many_clients_panics() {
        let server = ShmServer::spawn(1, 0u64, counter_dispatch as fn(&mut u64, u64, u64) -> u64);
        let _a = server.client();
        let _b = server.client();
    }

    #[test]
    fn shutdown_returns_state() {
        let server = ShmServer::spawn(1, String::new(), |s: &mut String, _op: u64, arg: u64| {
            s.push((b'a' + arg as u8) as char);
            s.len() as u64
        });
        let mut c = server.client();
        for i in 0..3 {
            c.apply(0, i);
        }
        drop(c);
        assert_eq!(server.shutdown(), "abc");
    }
}
