//! Interior-mutable holder for the state protected by a construction, plus
//! the panic-safety guard the combining executors wrap around it.

use crate::sync::{AtomicBool, Ordering, UnsafeCell};

/// The state a construction protects, wrapped so that it can be shared
/// across threads while only ever being *accessed* by the thread currently
/// holding the (implicit) mutual exclusion.
///
/// Each executor in this crate establishes mutual exclusion by its own
/// protocol (a dedicated server thread, a unique combiner, a held lock); the
/// `unsafe` blocks touching this cell cite the relevant argument.
///
/// Access is closure-scoped (`with_mut`) rather than reference-returning so
/// that under `--cfg loom` the model checker sees the exact extent of every
/// critical section and reports any pair of overlapping accesses as a data
/// race — the executable form of each construction's mutual-exclusion proof.
///
/// Public so layers above can build *their own* mutual-exclusion protocols
/// over one state — the runtime's adaptive backend hands a single `CsState`
/// between a lock, a combiner, and a server thread across live switches.
pub struct CsState<S> {
    cell: UnsafeCell<S>,
}

// SAFETY: access to the cell is funnelled through the constructions'
// mutual-exclusion protocols; `S: Send` suffices because at most one thread
// holds a reference at any time and hand-offs are synchronized with
// release/acquire edges (message publication, `combining_done`, lock
// release).
unsafe impl<S: Send> Sync for CsState<S> {}

impl<S> CsState<S> {
    /// Wraps `state` for protocol-guarded shared access.
    pub fn new(state: S) -> Self {
        Self {
            cell: UnsafeCell::new(state),
        }
    }

    /// Runs `f` with a mutable reference to the protected state.
    ///
    /// # Safety
    ///
    /// The caller must be the unique servicing thread for the whole duration
    /// of `f`: a dedicated server, the active combiner, or a lock holder. No
    /// other reference (shared or exclusive) may exist concurrently.
    #[inline]
    pub unsafe fn with_mut<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        // SAFETY: forwarded to the caller's contract above; the pointer is
        // valid and uniquely accessible while `f` runs.
        self.cell.with_mut(|p| f(unsafe { &mut *p }))
    }

    /// Consumes the holder, returning the state (used on shutdown once all
    /// servicing activity has quiesced).
    pub fn into_inner(self) -> S {
        self.cell.into_inner()
    }
}

/// Arms on creation; unless [`PoisonGuard::disarm`]ed before drop (i.e. the
/// servicing thread's dispatch region unwound), marks the construction
/// poisoned so spinning waiters panic instead of wedging forever on a
/// hand-off or response that will never come.
pub(crate) struct PoisonGuard<'a> {
    flag: &'a AtomicBool,
    armed: bool,
}

impl<'a> PoisonGuard<'a> {
    pub(crate) fn new(flag: &'a AtomicBool) -> Self {
        Self { flag, armed: true }
    }

    pub(crate) fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            // Relaxed would suffice for the waiters (they only panic on
            // seeing it, no payload is read); Release costs nothing on the
            // unwind path and keeps the flag ordered after the partial
            // mutations for any post-mortem inspection.
            self.flag.store(true, Ordering::Release);
        }
    }
}
