//! Interior-mutable holder for the state protected by a construction.

use std::cell::UnsafeCell;

/// The state a construction protects, wrapped so that it can be shared
/// across threads while only ever being *accessed* by the thread currently
/// holding the (implicit) mutual exclusion.
///
/// Each executor in this crate establishes mutual exclusion by its own
/// protocol (a dedicated server thread, a unique combiner, a held lock); the
/// `unsafe` blocks touching this cell cite the relevant argument.
pub(crate) struct CsState<S> {
    cell: UnsafeCell<S>,
}

// SAFETY: access to the cell is funnelled through the constructions'
// mutual-exclusion protocols; `S: Send` suffices because at most one thread
// holds a reference at any time and hand-offs are synchronized with
// release/acquire edges (message publication, `combining_done`, lock
// release).
unsafe impl<S: Send> Sync for CsState<S> {}

impl<S> CsState<S> {
    pub(crate) fn new(state: S) -> Self {
        Self {
            cell: UnsafeCell::new(state),
        }
    }

    /// Returns a mutable reference to the protected state.
    ///
    /// # Safety
    ///
    /// The caller must be the unique servicing thread at this moment: a
    /// dedicated server, the active combiner, or a lock holder. No other
    /// reference (shared or exclusive) may exist concurrently.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get_mut(&self) -> &mut S {
        // SAFETY: forwarded to the caller's contract above.
        unsafe { &mut *self.cell.get() }
    }

    /// Consumes the holder, returning the state (used on shutdown once all
    /// servicing activity has quiesced).
    pub(crate) fn into_inner(self) -> S {
        self.cell.into_inner()
    }
}
