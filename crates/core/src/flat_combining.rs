//! Flat combining [Hendler, Incze, Shavit, Tzafrir — SPAA 2010]: the
//! original combining construction the paper cites as prior art ([13]).
//!
//! Threads *publish* their requests in per-thread records; whoever acquires
//! the global try-lock becomes the combiner and serves the whole publication
//! list for a few scans. Compared to CC-SYNCH there is no hand-off queue —
//! just a test-and-set lock plus scanning — which makes it simpler but less
//! cache-friendly (the combiner re-reads every record every scan, served or
//! not). Included as an additional baseline for the counter benchmarks and
//! as a reference point for the evaluation's "combining" family.

// Statistics counters stay on std atomics on purpose (see `crate::sync`).
use std::sync::atomic::{AtomicU64 as StdAtomicU64, AtomicUsize as StdAtomicUsize};
use std::sync::Arc;

use crossbeam_utils::CachePadded;

use crate::dispatch::Dispatcher;
use crate::state::CsState;
use crate::sync::{spin, AtomicBool, AtomicU64, Ordering};
use crate::ApplyOp;

/// Publication-record states.
const EMPTY: u64 = 0;
const PENDING: u64 = 1;
const DONE: u64 = 2;

/// One thread's publication record (a cache line of its own).
struct Record {
    state: AtomicU64,
    op: AtomicU64,
    arg: AtomicU64,
    ret: AtomicU64,
}

impl Record {
    fn new() -> Self {
        Self {
            state: AtomicU64::new(EMPTY),
            op: AtomicU64::new(0),
            arg: AtomicU64::new(0),
            ret: AtomicU64::new(0),
        }
    }
}

struct Shared<S, D> {
    records: Box<[CachePadded<Record>]>,
    lock: CachePadded<AtomicBool>,
    state: CsState<S>,
    dispatch: D,
    scans: u32,
    next_handle: StdAtomicUsize,
    rounds: StdAtomicU64,
    combined: StdAtomicU64,
}

/// The flat-combining construction protecting a state `S`.
pub struct FlatCombining<S, D> {
    shared: Arc<Shared<S, D>>,
}

impl<S, D> FlatCombining<S, D>
where
    S: Send + 'static,
    D: Dispatcher<S>,
{
    /// Creates the construction for at most `max_threads` threads. The
    /// combiner makes `scans` passes over the publication list per
    /// acquisition (the classic implementations use a small constant).
    pub fn new(max_threads: usize, scans: u32, state: S, dispatch: D) -> Self {
        assert!(max_threads > 0, "need at least one thread");
        assert!(scans > 0, "combiner must scan at least once");
        Self {
            shared: Arc::new(Shared {
                records: (0..max_threads)
                    .map(|_| CachePadded::new(Record::new()))
                    .collect(),
                lock: CachePadded::new(AtomicBool::new(false)),
                state: CsState::new(state),
                dispatch,
                scans,
                next_handle: StdAtomicUsize::new(0),
                rounds: StdAtomicU64::new(0),
                combined: StdAtomicU64::new(0),
            }),
        }
    }

    /// Registers a participating thread.
    ///
    /// # Panics
    ///
    /// Panics if more than `max_threads` handles are created.
    pub fn handle(&self) -> FlatCombiningHandle<S, D> {
        let i = self.shared.next_handle.fetch_add(1, Ordering::Relaxed);
        assert!(
            i < self.shared.records.len(),
            "flat combining sized for {} threads",
            self.shared.records.len()
        );
        FlatCombiningHandle {
            shared: Arc::clone(&self.shared),
            slot: i,
        }
    }

    /// Average requests served per combining round.
    pub fn combining_rate(&self) -> f64 {
        let rounds = self.shared.rounds.load(Ordering::Relaxed);
        if rounds == 0 {
            0.0
        } else {
            self.shared.combined.load(Ordering::Relaxed) as f64 / rounds as f64
        }
    }

    /// Consumes the construction and returns the protected state.
    ///
    /// # Panics
    ///
    /// Panics if handles are still alive.
    pub fn into_state(self) -> S {
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => shared.state.into_inner(),
            Err(_) => panic!("flat-combining handles still alive at into_state"),
        }
    }
}

/// Per-thread handle to a [`FlatCombining`] instance.
pub struct FlatCombiningHandle<S, D> {
    shared: Arc<Shared<S, D>>,
    slot: usize,
}

impl<S, D> FlatCombiningHandle<S, D>
where
    S: Send + 'static,
    D: Dispatcher<S>,
{
    /// Serves every pending publication record, `scans` times.
    fn combine(&self) -> u64 {
        let sh = &*self.shared;
        // SAFETY: `lock` was acquired with Acquire; only the lock holder
        // reaches this point (flat combining's mutual exclusion), and the
        // Release store unlocking publishes the state mutations to the next
        // combiner's `swap(true, Acquire)`.
        unsafe {
            sh.state.with_mut(|state| {
                let mut served = 0u64;
                for _ in 0..sh.scans {
                    for rec in sh.records.iter() {
                        // Acquire pairs with the publisher's PENDING Release:
                        // it makes op/arg (stored Relaxed before it) visible.
                        if rec.state.load(Ordering::Acquire) == PENDING {
                            let ret = sh.dispatch.dispatch(
                                state,
                                rec.op.load(Ordering::Relaxed),
                                rec.arg.load(Ordering::Relaxed),
                            );
                            rec.ret.store(ret, Ordering::Relaxed);
                            // Release publishes `ret` to the owner's DONE
                            // Acquire check in `apply`.
                            rec.state.store(DONE, Ordering::Release);
                            served += 1;
                        }
                    }
                }
                served
            })
        }
    }
}

impl<S, D> ApplyOp for FlatCombiningHandle<S, D>
where
    S: Send + 'static,
    D: Dispatcher<S>,
{
    fn apply(&mut self, op: u64, arg: u64) -> u64 {
        let sh = &*self.shared;
        let rec = &sh.records[self.slot];
        rec.op.store(op, Ordering::Relaxed);
        rec.arg.store(arg, Ordering::Relaxed);
        // Release publishes op/arg (stored Relaxed above) to the combiner's
        // PENDING Acquire scan.
        rec.state.store(PENDING, Ordering::Release);

        let mut spins = 0u32;
        loop {
            // Acquire pairs with the combiner's DONE Release: it makes `ret`
            // visible before we read it.
            if rec.state.load(Ordering::Acquire) == DONE {
                rec.state.store(EMPTY, Ordering::Relaxed);
                return rec.ret.load(Ordering::Relaxed);
            }
            // Try to become the combiner (test-and-test-and-set). The swap's
            // Acquire pairs with the unlocking Release, ordering this
            // combiner's state access after the previous one's.
            if !sh.lock.load(Ordering::Relaxed) && !sh.lock.swap(true, Ordering::Acquire) {
                let served = self.combine();
                sh.lock.store(false, Ordering::Release);
                sh.rounds.fetch_add(1, Ordering::Relaxed);
                sh.combined.fetch_add(served, Ordering::Relaxed);
                // My own record was PENDING, so the scan served it.
                debug_assert_eq!(rec.state.load(Ordering::Acquire), DONE);
                rec.state.store(EMPTY, Ordering::Relaxed);
                return rec.ret.load(Ordering::Relaxed);
            }
            spin(&mut spins);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type CounterFn = fn(&mut u64, u64, u64) -> u64;

    fn fai(state: &mut u64, _op: u64, _arg: u64) -> u64 {
        let old = *state;
        *state += 1;
        old
    }

    #[test]
    fn single_thread_sequence() {
        let fc = FlatCombining::new(1, 2, 0u64, fai as CounterFn);
        let mut h = fc.handle();
        for i in 0..100 {
            assert_eq!(h.apply(0, 0), i);
        }
        drop(h);
        assert_eq!(fc.into_state(), 100);
    }

    #[test]
    fn multithreaded_permutation() {
        const THREADS: usize = 8;
        const OPS: u64 = if cfg!(miri) { 40 } else { 3_000 };
        let fc = Arc::new(FlatCombining::new(THREADS, 2, 0u64, fai as CounterFn));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let mut h = fc.handle();
            joins.push(std::thread::spawn(move || {
                (0..OPS).map(|_| h.apply(0, 0)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..THREADS as u64 * OPS).collect::<Vec<_>>());
        assert!(fc.combining_rate() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "sized for")]
    fn too_many_handles_panics() {
        let fc = FlatCombining::new(1, 1, 0u64, fai as CounterFn);
        let _a = fc.handle();
        let _b = fc.handle();
    }

    #[test]
    fn non_counter_state() {
        let fc = FlatCombining::new(
            2,
            3,
            Vec::<u64>::new(),
            |s: &mut Vec<u64>, _op: u64, arg: u64| {
                s.push(arg);
                (s.len() - 1) as u64
            },
        );
        let mut a = fc.handle();
        let mut b = fc.handle();
        assert_eq!(a.apply(0, 5), 0);
        assert_eq!(b.apply(0, 9), 1);
        drop((a, b));
        assert_eq!(fc.into_state(), vec![5, 9]);
    }
}
