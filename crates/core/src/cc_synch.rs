//! CC-SYNCH [Fatourou & Kallimanis, PPoPP 2012]: the most efficient known
//! pure-shared-memory combining construction, reproduced here as the paper's
//! main combining baseline (§3, §5).
//!
//! Threads append their requests to a list with a single `SWAP` on a shared
//! tail pointer and spin locally on their own node. The thread at the head
//! of the list becomes the *combiner*: it walks the list executing up to
//! `max_ops` requests (marking each node completed and releasing its
//! owner's spin), then hands the combiner role to the first unserved node.
//! Per served request the combiner performs one remote read (fetching the
//! request from the owner's node) and one remote write (the release) — the
//! two RMRs the paper identifies as the dominant cost for short critical
//! sections.
//!
//! # Node recycling
//!
//! Each thread owns one node and, after a successful `SWAP`, adopts the node
//! it displaced (the classic CC-SYNCH recycling). Nodes therefore migrate
//! between threads; they live in a fixed arena owned by the construction and
//! are addressed by index, which keeps the implementation free of dangling
//! pointers by construction.

// Statistics counters stay on std atomics on purpose (see `crate::sync`).
use std::sync::atomic::{AtomicU64 as StdAtomicU64, AtomicUsize as StdAtomicUsize};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use mpsync_telemetry as telemetry;
use mpsync_telemetry::{Algo, AtomicLog2Hist, Counter, Lane, Log2Hist};

use crate::dispatch::Dispatcher;
use crate::state::{CsState, PoisonGuard};
use crate::sync::{spin, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::ApplyOp;

/// Sentinel for "no successor" in a node's `next` field.
const NIL: usize = usize::MAX;

/// Panic message once the construction is poisoned (a combiner panicked
/// while holding the critical section, so the protected state may be torn
/// and the hand-off chain is broken).
const POISONED: &str =
    "CC-SYNCH poisoned: a combiner panicked inside the critical section and the \
     protected state may be inconsistent";

/// One list node. `wait`/`completed` are the owner's local-spin flags; `op`,
/// `arg`, `ret` carry the request and its result.
struct Node {
    wait: AtomicBool,
    completed: AtomicBool,
    next: AtomicUsize,
    op: AtomicU64,
    arg: AtomicU64,
    ret: AtomicU64,
    /// Enqueue timestamp (ns, telemetry epoch) — written only when
    /// telemetry is enabled; lets the combiner attribute queue-wait to the
    /// request's owner.
    t_enq: AtomicU64,
}

impl Node {
    fn new() -> Self {
        Self {
            wait: AtomicBool::new(false),
            completed: AtomicBool::new(false),
            next: AtomicUsize::new(NIL),
            op: AtomicU64::new(0),
            arg: AtomicU64::new(0),
            ret: AtomicU64::new(0),
            t_enq: AtomicU64::new(0),
        }
    }
}

struct Shared<S, D> {
    nodes: Box<[CachePadded<Node>]>,
    tail: CachePadded<AtomicUsize>,
    state: CsState<S>,
    dispatch: D,
    max_ops: u64,
    /// Set when a combiner's dispatch panicked mid-round: the hand-off chain
    /// is broken, so every waiter and later caller panics instead of
    /// spinning forever (see [`PoisonGuard`]).
    poisoned: AtomicBool,
    next_handle: StdAtomicUsize,
    /// Total requests executed by combiners on behalf of *other* threads
    /// plus their own — used to compute the actual combining rate (Fig. 4b).
    rounds: StdAtomicU64,
    combined: StdAtomicU64,
    /// Distribution of combining-round sizes. Always recorded (one update
    /// per round), so runtime-level stats see round sizes even without the
    /// telemetry feature.
    batch_hist: AtomicLog2Hist,
}

/// The CC-SYNCH construction protecting a state `S`.
///
/// ```
/// use std::sync::Arc;
/// use mpsync_core::{ApplyOp, CcSynch};
///
/// fn fai(state: &mut u64, _op: u64, _arg: u64) -> u64 { let v = *state; *state += 1; v }
///
/// let cs = Arc::new(CcSynch::new(2, 200, 0u64, fai as fn(&mut u64, u64, u64) -> u64));
/// let mut a = cs.handle();
/// let mut b = cs.handle();
/// let t = std::thread::spawn(move || (0..500).map(|_| b.apply(0, 0)).max());
/// let _ = (0..500).map(|_| a.apply(0, 0)).max();
/// t.join().unwrap();
/// drop(a);
/// let cs = Arc::try_unwrap(cs).unwrap_or_else(|_| panic!("handles alive"));
/// assert_eq!(cs.into_state(), 1000);
/// ```
pub struct CcSynch<S, D> {
    shared: Arc<Shared<S, D>>,
}

impl<S, D> CcSynch<S, D>
where
    S: Send + 'static,
    D: Dispatcher<S>,
{
    /// Creates the construction for at most `max_threads` participating
    /// threads, combining at most `max_ops` requests per combiner (the
    /// paper's `MAX_OPS`, set to 200 in its experiments).
    pub fn new(max_threads: usize, max_ops: u64, state: S, dispatch: D) -> Self {
        assert!(max_threads > 0, "need at least one thread");
        assert!(max_ops > 0, "max_ops must be positive");
        // One node per thread plus the initial tail dummy.
        let nodes: Box<[CachePadded<Node>]> = (0..max_threads + 1)
            .map(|_| CachePadded::new(Node::new()))
            .collect();
        // Node 0 is the initial dummy: wait == false so the first thread to
        // swap it out becomes the combiner immediately.
        Self {
            shared: Arc::new(Shared {
                nodes,
                tail: CachePadded::new(AtomicUsize::new(0)),
                state: CsState::new(state),
                dispatch,
                max_ops,
                poisoned: AtomicBool::new(false),
                next_handle: StdAtomicUsize::new(0),
                rounds: StdAtomicU64::new(0),
                combined: StdAtomicU64::new(0),
                batch_hist: AtomicLog2Hist::new(),
            }),
        }
    }

    /// Registers a participating thread.
    ///
    /// # Panics
    ///
    /// Panics if more than `max_threads` handles are created.
    pub fn handle(&self) -> CcSynchHandle<S, D> {
        let i = self.shared.next_handle.fetch_add(1, Ordering::Relaxed);
        let max = self.shared.nodes.len() - 1;
        assert!(i < max, "CC-SYNCH sized for {max} threads");
        CcSynchHandle {
            shared: Arc::clone(&self.shared),
            my_node: i + 1, // node 0 is the initial dummy
        }
    }

    /// Average number of requests served per combining round so far
    /// (the "actual combining rate" of Figure 4b).
    pub fn combining_rate(&self) -> f64 {
        let rounds = self.shared.rounds.load(Ordering::Relaxed);
        if rounds == 0 {
            0.0
        } else {
            self.shared.combined.load(Ordering::Relaxed) as f64 / rounds as f64
        }
    }

    /// Distribution of combining-round sizes observed so far (requests per
    /// round, the combiner's own operation included). Complements
    /// [`CcSynch::combining_rate`] with the full shape, not just the mean.
    pub fn batch_hist(&self) -> Log2Hist {
        self.shared.batch_hist.snapshot()
    }

    /// Consumes the construction and returns the protected state.
    ///
    /// # Panics
    ///
    /// Panics if handles are still alive (their owners might still submit
    /// operations), or if a combiner panicked mid-round (the state may be
    /// torn, so it must not escape looking valid).
    pub fn into_state(self) -> S {
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => {
                assert!(!shared.poisoned.load(Ordering::Relaxed), "{POISONED}");
                shared.state.into_inner()
            }
            Err(_) => panic!("CC-SYNCH handles still alive at into_state"),
        }
    }
}

/// Per-thread handle to a [`CcSynch`] instance.
pub struct CcSynchHandle<S, D> {
    shared: Arc<Shared<S, D>>,
    /// Index of the node this thread currently owns.
    my_node: usize,
}

impl<S, D> ApplyOp for CcSynchHandle<S, D>
where
    S: Send + 'static,
    D: Dispatcher<S>,
{
    fn apply(&mut self, op: u64, arg: u64) -> u64 {
        let sh = &*self.shared;
        let nodes = &sh.nodes;
        assert!(!sh.poisoned.load(Ordering::Relaxed), "{POISONED}");

        // Prepare my node to become the new tail dummy.
        let next_node = self.my_node;
        nodes[next_node].next.store(NIL, Ordering::Relaxed);
        nodes[next_node].wait.store(true, Ordering::Relaxed);
        nodes[next_node].completed.store(false, Ordering::Relaxed);

        // Enqueue: displace the tail, write my request into the displaced
        // node, link it to my (former) node, and adopt the displaced node.
        // AcqRel edge on `tail`: the Release side publishes my node-init
        // stores above to the *next* swapper (which writes its request into
        // my node); the Acquire side makes the displaced node's init by its
        // previous owner visible before I write into it.
        let cur_node = sh.tail.swap(next_node, Ordering::AcqRel);
        let cur = &nodes[cur_node];
        cur.op.store(op, Ordering::Relaxed);
        cur.arg.store(arg, Ordering::Relaxed);
        let t_enq = telemetry::now_ns();
        if telemetry::ENABLED {
            // Published by the Release below alongside op/arg.
            cur.t_enq.store(t_enq, Ordering::Relaxed);
        }
        // Release edge on `next`: publishes op/arg/t_enq to the combiner's
        // Acquire load in its serve loop.
        cur.next.store(next_node, Ordering::Release);
        self.my_node = cur_node;

        // Local spin until a combiner either served me or made me combiner.
        // The poison check keeps a waiter from spinning forever when the
        // combiner ahead of it panicked and will never release this node.
        let mut spins = 0u32;
        while cur.wait.load(Ordering::Acquire) {
            if sh.poisoned.load(Ordering::Relaxed) {
                panic!("{POISONED}");
            }
            spin(&mut spins);
        }
        if cur.completed.load(Ordering::Relaxed) {
            if telemetry::ENABLED {
                telemetry::record_span(cur_node as u32, Algo::CcSynch, Lane::ClientWait, t_enq);
            }
            // Relaxed is enough for `completed`/`ret`: both were published
            // by the same `wait` Release/Acquire edge the spin just crossed.
            return cur.ret.load(Ordering::Relaxed);
        }

        // I am the combiner. The release of `wait` by my predecessor (or the
        // initial dummy state) orders all previous critical sections before
        // this point.
        let t_hold = telemetry::now_ns();
        let mut served = 0u64;
        let mut tmp_node = cur_node;
        // If a dispatched operation panics, mark the construction poisoned
        // on the way out so every spinning waiter panics too instead of
        // wedging on a release that will never come.
        let guard = PoisonGuard::new(&sh.poisoned);
        // SAFETY: exactly one thread at a time observes `wait == false &&
        // completed == false` for the head node — mutual exclusion follows
        // from the list structure (each node released exactly once), so this
        // thread is the unique accessor for the closure's whole extent. The
        // hand-off store below runs *after* the closure, so the next
        // combiner's access is ordered after ours (loom checks exactly this).
        unsafe {
            sh.state.with_mut(|state| {
                loop {
                    // Acquire pairs with the enqueuer's `next` Release: it
                    // makes the request words (op/arg/t_enq) visible.
                    let next = nodes[tmp_node].next.load(Ordering::Acquire);
                    if next == NIL || served >= sh.max_ops {
                        break;
                    }
                    let tmp = &nodes[tmp_node];
                    let t_serve = if telemetry::ENABLED {
                        // Queue wait: owner's enqueue → combiner reaching it.
                        telemetry::record_span(
                            tmp_node as u32,
                            Algo::CcSynch,
                            Lane::QueueWait,
                            tmp.t_enq.load(Ordering::Relaxed),
                        );
                        telemetry::now_ns()
                    } else {
                        0
                    };
                    let ret = sh.dispatch.dispatch(
                        state,
                        tmp.op.load(Ordering::Relaxed),
                        tmp.arg.load(Ordering::Relaxed),
                    );
                    tmp.ret.store(ret, Ordering::Relaxed);
                    tmp.completed.store(true, Ordering::Relaxed);
                    // Release publishes ret/completed (stored Relaxed above)
                    // to the owner's Acquire spin on `wait`.
                    tmp.wait.store(false, Ordering::Release);
                    if telemetry::ENABLED {
                        telemetry::record_span(
                            tmp_node as u32,
                            Algo::CcSynch,
                            Lane::Serve,
                            t_serve,
                        );
                    }
                    served += 1;
                    tmp_node = next;
                }
            });
        }
        guard.disarm();
        // Hand over the combiner role to the first unserved node (or mark
        // the tail dummy ready for the next arrival). Release publishes this
        // whole round's state mutations to the next combiner's Acquire spin.
        nodes[tmp_node].wait.store(false, Ordering::Release);

        sh.rounds.fetch_add(1, Ordering::Relaxed);
        sh.combined.fetch_add(served, Ordering::Relaxed);
        // One histogram update per round, recorded regardless of the
        // telemetry feature (the combiner always serves at least itself).
        sh.batch_hist.record(served);
        if telemetry::ENABLED {
            telemetry::count(Counter::CcRounds, 1);
            telemetry::count(Counter::CcServed, served);
            telemetry::record_span(cur_node as u32, Algo::CcSynch, Lane::Hold, t_hold);
        }
        cur.ret.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type CounterFn = fn(&mut u64, u64, u64) -> u64;

    fn fai(state: &mut u64, _op: u64, _arg: u64) -> u64 {
        let old = *state;
        *state += 1;
        old
    }

    #[test]
    fn single_thread_sequence() {
        let cs = CcSynch::new(1, 8, 0u64, fai as CounterFn);
        let mut h = cs.handle();
        for i in 0..100 {
            assert_eq!(h.apply(0, 0), i);
        }
        drop(h);
        assert_eq!(cs.into_state(), 100);
    }

    #[test]
    fn multithreaded_permutation() {
        const THREADS: usize = 8;
        // Miri runs every access through its borrow tracker; keep the
        // schedule-diverse shape but shrink the volume.
        const OPS: u64 = if cfg!(miri) { 40 } else { 3_000 };
        let cs = Arc::new(CcSynch::new(THREADS, 64, 0u64, fai as CounterFn));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let mut h = cs.handle();
            joins.push(std::thread::spawn(move || {
                (0..OPS).map(|_| h.apply(0, 0)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..THREADS as u64 * OPS).collect::<Vec<_>>());
    }

    #[test]
    fn combining_rate_reported() {
        const THREADS: usize = 4;
        let cs = Arc::new(CcSynch::new(THREADS, 200, 0u64, fai as CounterFn));
        const OPS: u64 = if cfg!(miri) { 40 } else { 2_000 };
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let mut h = cs.handle();
            joins.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    h.apply(0, 0);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let rate = cs.combining_rate();
        assert!(
            rate >= 1.0,
            "combiners serve at least their own op, got {rate}"
        );
        assert!(rate <= 200.0, "rate bounded by max_ops, got {rate}");
    }

    #[test]
    fn max_ops_one_still_correct() {
        const THREADS: usize = 4;
        const OPS: u64 = if cfg!(miri) { 40 } else { 1_000 };
        let cs = Arc::new(CcSynch::new(THREADS, 1, 0u64, fai as CounterFn));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let mut h = cs.handle();
            joins.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    h.apply(0, 0);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        drop(cs); // handles dropped inside threads
    }

    #[test]
    #[should_panic(expected = "sized for")]
    fn too_many_handles_panics() {
        let cs = CcSynch::new(1, 8, 0u64, fai as CounterFn);
        let _a = cs.handle();
        let _b = cs.handle();
    }

    #[test]
    fn combiner_panic_poisons_instead_of_wedging() {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        fn boom(state: &mut u64, op: u64, _arg: u64) -> u64 {
            if op == 1 {
                panic!("dispatch exploded");
            }
            *state += 1;
            *state
        }

        let cs = Arc::new(CcSynch::new(2, 8, 0u64, boom as CounterFn));
        let mut a = cs.handle();
        // Single thread, so `a` deterministically becomes the combiner and
        // its own panicking op unwinds out of the dispatch region.
        let err = catch_unwind(AssertUnwindSafe(|| a.apply(1, 0))).unwrap_err();
        assert_eq!(err.downcast_ref::<&str>(), Some(&"dispatch exploded"));

        // Every later apply must report the poisoning, not hang on the
        // broken hand-off chain.
        let mut b = cs.handle();
        let err = catch_unwind(AssertUnwindSafe(|| b.apply(0, 0))).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("formatted panic");
        assert!(msg.contains("CC-SYNCH poisoned"), "got: {msg}");

        // And the (possibly torn) state must not escape looking valid.
        drop((a, b));
        let cs = Arc::try_unwrap(cs).unwrap_or_else(|_| panic!("handles alive"));
        let err = catch_unwind(AssertUnwindSafe(|| cs.into_state())).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("formatted panic");
        assert!(msg.contains("CC-SYNCH poisoned"), "got: {msg}");
    }

    #[test]
    fn non_counter_state() {
        let cs = CcSynch::new(
            2,
            8,
            Vec::<u64>::new(),
            |s: &mut Vec<u64>, _op: u64, arg: u64| {
                s.push(arg);
                (s.len() - 1) as u64
            },
        );
        let mut a = cs.handle();
        let mut b = cs.handle();
        assert_eq!(a.apply(0, 10), 0);
        assert_eq!(b.apply(0, 20), 1);
        drop((a, b));
        assert_eq!(cs.into_state(), vec![10, 20]);
    }
}
