//! Classical spin locks (§3 context) and an adapter that turns any of them
//! into an [`ApplyOp`] executor, so lock-based critical sections can be
//! compared head-to-head with the delegation/combining constructions.
//!
//! Provided locks:
//!
//! * [`TasLock`] — test-and-test-and-set with exponential backoff; the
//!   baseline that generates unbounded RMRs under contention;
//! * [`TicketLock`] — FIFO-fair, one RMR-generating variable;
//! * [`McsLock`] — the queue lock of Mellor-Crummey & Scott with *local
//!   spinning* and O(1) RMR complexity per acquisition.

use std::ptr;
use std::sync::Arc;

use crossbeam_utils::CachePadded;

use crate::dispatch::Dispatcher;
use crate::state::CsState;
use crate::sync::{spin, AtomicBool, AtomicPtr, AtomicU64, Ordering};
use crate::ApplyOp;

/// A raw mutual-exclusion lock usable by [`LockCs`].
///
/// `Ctx` is the per-thread context a lock needs across an
/// acquire/release pair (the MCS queue node; `()` for centralized locks).
pub trait CsLock: Send + Sync + Default + 'static {
    /// Per-thread context carried by the handle.
    type Ctx: Default + Send;

    /// Acquires the lock, spinning as needed.
    fn lock(&self, ctx: &mut Self::Ctx);

    /// Releases the lock.
    ///
    /// Must only be called by the current holder, with the same `ctx` used
    /// to acquire.
    fn unlock(&self, ctx: &mut Self::Ctx);
}

/// Test-and-test-and-set lock with exponential backoff.
#[derive(Default)]
pub struct TasLock {
    locked: CachePadded<AtomicBool>,
}

impl CsLock for TasLock {
    type Ctx = ();

    fn lock(&self, _ctx: &mut ()) {
        let mut backoff = 1u32;
        loop {
            // Acquire pairs with `unlock`'s Release: entering the critical
            // section must see every mutation of the previous holder.
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
            // Test loop: spin on the local cached copy until it looks free.
            // Relaxed is fine — it is only a hint; the swap above is the
            // synchronizing access.
            let mut spins = 0u32;
            while self.locked.load(Ordering::Relaxed) {
                spin(&mut spins);
            }
            #[cfg(not(loom))]
            for _ in 0..backoff {
                std::hint::spin_loop();
            }
            backoff = (backoff * 2).min(1024);
        }
    }

    fn unlock(&self, _ctx: &mut ()) {
        self.locked.store(false, Ordering::Release);
    }
}

/// Ticket lock: FIFO fairness with a single grant variable.
#[derive(Default)]
pub struct TicketLock {
    next_ticket: CachePadded<AtomicU64>,
    now_serving: CachePadded<AtomicU64>,
}

impl CsLock for TicketLock {
    type Ctx = ();

    fn lock(&self, _ctx: &mut ()) {
        let my = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let mut spins = 0u32;
        while self.now_serving.load(Ordering::Acquire) != my {
            spin(&mut spins);
        }
    }

    fn unlock(&self, _ctx: &mut ()) {
        // Relaxed read is fine: the holder is the only writer of
        // `now_serving`; the Release store publishes the critical section to
        // the next ticket holder's Acquire spin.
        let next = self.now_serving.load(Ordering::Relaxed) + 1;
        self.now_serving.store(next, Ordering::Release);
    }
}

/// Queue node for [`McsLock`]. One per (thread, lock); owned by the
/// [`LockCsHandle`] or supplied by the caller of the raw API.
pub struct McsNode {
    next: AtomicPtr<McsNode>,
    locked: AtomicBool,
}

impl Default for McsNode {
    fn default() -> Self {
        Self {
            next: AtomicPtr::new(ptr::null_mut()),
            locked: AtomicBool::new(false),
        }
    }
}

/// The MCS queue lock: local spinning, O(1) RMRs per acquisition.
#[derive(Default)]
pub struct McsLock {
    tail: CachePadded<AtomicPtr<McsNode>>,
}

// SAFETY invariants for the raw pointers: a node is published to `tail` only
// by its owner inside `lock`; it is unlinked before `unlock` returns; the
// owner does not move or reuse the node between `lock` and `unlock` because
// `Ctx` is borrowed mutably for the whole critical section by `LockCs`, and
// the raw-API contract requires the same.
impl CsLock for McsLock {
    type Ctx = McsNode;

    fn lock(&self, node: &mut McsNode) {
        node.next.store(ptr::null_mut(), Ordering::Relaxed);
        node.locked.store(true, Ordering::Relaxed);
        let me: *mut McsNode = node;
        // AcqRel on `tail`: Release publishes my node init (the two Relaxed
        // stores above) to the successor that displaces me; Acquire pairs
        // with the previous holder's Release (`locked`/CAS) so an
        // uncontended acquisition still sees the last critical section.
        let pred = self.tail.swap(me, Ordering::AcqRel);
        if !pred.is_null() {
            // SAFETY: `pred` was published by its owner, which cannot
            // release-and-reuse it until we link ourselves (its unlock spins
            // on `next` once its CAS on `tail` fails — and it must fail,
            // because we swapped after it).
            unsafe { (*pred).next.store(me, Ordering::Release) };
            // Acquire pairs with the predecessor's `locked` Release in
            // `unlock`: crossing it hands us the critical section.
            let mut spins = 0u32;
            while node.locked.load(Ordering::Acquire) {
                spin(&mut spins);
            }
        }
    }

    fn unlock(&self, node: &mut McsNode) {
        let me: *mut McsNode = node;
        // Acquire pairs with the successor's `next` Release in `lock`: it
        // makes the successor's node (where we store the release) valid here.
        let mut next = node.next.load(Ordering::Acquire);
        if next.is_null() {
            // No known successor: try to swing tail back to empty. The
            // success Release publishes the critical section to the next
            // uncontended acquirer's `tail` swap (Acquire).
            if self
                .tail
                .compare_exchange(me, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
            // A successor swapped in; wait for it to link itself.
            let mut spins = 0u32;
            loop {
                next = node.next.load(Ordering::Acquire);
                if !next.is_null() {
                    break;
                }
                spin(&mut spins);
            }
        }
        // SAFETY: the successor is spinning on its own `locked` flag and its
        // node outlives the spin (guaranteed by its `lock` call frame).
        unsafe { (*next).locked.store(false, Ordering::Release) };
    }
}

struct LockShared<S, L, D> {
    lock: L,
    state: CsState<S>,
    dispatch: D,
}

/// Executes critical sections inline under a lock `L` — the classical
/// approach the paper's §3 contrasts with delegation and combining.
pub struct LockCs<S, L: CsLock, D> {
    shared: Arc<LockShared<S, L, D>>,
}

impl<S, L, D> LockCs<S, L, D>
where
    S: Send + 'static,
    L: CsLock,
    D: Dispatcher<S>,
{
    /// Creates the lock-protected state.
    pub fn new(state: S, dispatch: D) -> Self {
        Self {
            shared: Arc::new(LockShared {
                lock: L::default(),
                state: CsState::new(state),
                dispatch,
            }),
        }
    }

    /// Creates a per-thread handle (any number may be created).
    pub fn handle(&self) -> LockCsHandle<S, L, D> {
        LockCsHandle {
            shared: Arc::clone(&self.shared),
            ctx: L::Ctx::default(),
        }
    }

    /// Consumes the executor and returns the protected state.
    ///
    /// # Panics
    ///
    /// Panics if handles are still alive.
    pub fn into_state(self) -> S {
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => shared.state.into_inner(),
            Err(_) => panic!("LockCs handles still alive at into_state"),
        }
    }
}

/// Per-thread handle to a [`LockCs`].
pub struct LockCsHandle<S, L: CsLock, D> {
    shared: Arc<LockShared<S, L, D>>,
    ctx: L::Ctx,
}

impl<S, L, D> ApplyOp for LockCsHandle<S, L, D>
where
    S: Send + 'static,
    L: CsLock,
    D: Dispatcher<S>,
{
    #[inline]
    fn apply(&mut self, op: u64, arg: u64) -> u64 {
        self.shared.lock.lock(&mut self.ctx);
        // SAFETY: we hold the lock for the closure's whole extent; `CsLock`
        // implementations provide mutual exclusion and release/acquire
        // ordering across the hand-off.
        let ret = unsafe {
            self.shared
                .state
                .with_mut(|state| self.shared.dispatch.dispatch(state, op, arg))
        };
        self.shared.lock.unlock(&mut self.ctx);
        ret
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type CounterFn = fn(&mut u64, u64, u64) -> u64;

    fn fai(state: &mut u64, _op: u64, _arg: u64) -> u64 {
        let old = *state;
        *state += 1;
        old
    }

    fn hammer<L: CsLock>() {
        const THREADS: usize = 8;
        const OPS: u64 = if cfg!(miri) { 40 } else { 3_000 };
        let cs = LockCs::<u64, L, CounterFn>::new(0, fai as CounterFn);
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let mut h = cs.handle();
            joins.push(std::thread::spawn(move || {
                (0..OPS).map(|_| h.apply(0, 0)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..THREADS as u64 * OPS).collect::<Vec<_>>());
        assert_eq!(cs.into_state(), THREADS as u64 * OPS);
    }

    #[test]
    fn tas_lock_mutual_exclusion() {
        hammer::<TasLock>();
    }

    #[test]
    fn ticket_lock_mutual_exclusion() {
        hammer::<TicketLock>();
    }

    #[test]
    fn mcs_lock_mutual_exclusion() {
        hammer::<McsLock>();
    }

    #[test]
    fn mcs_uncontended_fast_path() {
        let lock = McsLock::default();
        let mut node = McsNode::default();
        for _ in 0..100 {
            lock.lock(&mut node);
            lock.unlock(&mut node);
        }
    }

    #[test]
    fn ticket_lock_is_fifo_single_thread() {
        let lock = TicketLock::default();
        for _ in 0..10 {
            lock.lock(&mut ());
            lock.unlock(&mut ());
        }
        assert_eq!(lock.next_ticket.load(Ordering::Relaxed), 10);
        assert_eq!(lock.now_serving.load(Ordering::Relaxed), 10);
    }
}
