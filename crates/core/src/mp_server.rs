//! MP-SERVER (§4.1): the client/server (delegation) approach over hardware
//! message passing.
//!
//! A dedicated server thread owns the protected state and loops on
//! `receive(3)`, executing one critical section per request and answering
//! with a one-word response. Because `receive` reads the server's *local*
//! message queue and `send` is asynchronous, no synchronization-related
//! remote memory reference remains on the server's critical path (Figure 2
//! of the paper) — on real hardware; under this crate's software emulation
//! the functional behaviour is identical but the stall-free property is not
//! reproduced (see the `tilesim` crate for that).

use std::sync::Arc;
use std::thread::JoinHandle;

use mpsync_telemetry as telemetry;
use mpsync_telemetry::{Algo, Counter, Lane};
use mpsync_udn::{Endpoint, EndpointId, Fabric};

use crate::dispatch::Dispatcher;
use crate::wire;
use crate::ApplyOp;

/// Reserved opcode used internally to stop the server loop. Client code must
/// not submit it through [`ApplyOp::apply`].
pub(crate) const OP_SHUTDOWN: u64 = u64::MAX;

/// Handle to a running MP-SERVER instance.
///
/// Created by [`MpServer::spawn`]; produces clients with
/// [`MpServer::client`] and returns the final state on
/// [`MpServer::shutdown`].
pub struct MpServer<S> {
    fabric: Arc<Fabric>,
    server_id: EndpointId,
    join: Option<JoinHandle<S>>,
}

impl<S: Send + 'static> MpServer<S> {
    /// Spawns the server thread on the given endpoint (the paper pins the
    /// server to core 0; choose the endpoint's core accordingly).
    ///
    /// `dispatch` interprets each request's `(op, arg)` against the state.
    pub fn spawn<D>(endpoint: Endpoint, state: S, dispatch: D) -> Self
    where
        D: Dispatcher<S>,
    {
        let fabric = Arc::clone(endpoint.fabric());
        let server_id = endpoint.id();
        let join = std::thread::Builder::new()
            .name(format!("mp-server-{server_id}"))
            .spawn(move || Self::serve(endpoint, state, dispatch))
            .expect("failed to spawn MP-SERVER thread");
        Self {
            fabric,
            server_id,
            join: Some(join),
        }
    }

    /// The server loop of Figure 2: `r()` — execute CS — `s(t)`.
    fn serve<D>(mut endpoint: Endpoint, mut state: S, dispatch: D) -> S
    where
        D: Dispatcher<S>,
    {
        let track = endpoint.id().index() as u32;
        let mut buf = [0u64; wire::REQ_WORDS];
        loop {
            endpoint.receive(&mut buf);
            let req = wire::decode(buf);
            if req.op == OP_SHUTDOWN {
                break;
            }
            let t_serve = if telemetry::ENABLED {
                // Queue wait: client submit stamp → the server picking the
                // request up (the coherence-free local read of Figure 2).
                telemetry::record_span(track, Algo::MpServer, Lane::QueueWait, req.submit_ns);
                telemetry::now_ns()
            } else {
                0
            };
            let ret = dispatch.dispatch(&mut state, req.op, req.arg);
            let client = EndpointId::from_word(req.sender);
            endpoint
                .send(client, &[ret])
                .expect("MP-SERVER response to unknown endpoint");
            if telemetry::ENABLED {
                telemetry::record_span(track, Algo::MpServer, Lane::Serve, t_serve);
                telemetry::count(Counter::MpServed, 1);
            }
        }
        state
    }

    /// The endpoint id clients address their requests to.
    pub fn server_id(&self) -> EndpointId {
        self.server_id
    }

    /// Creates a client bound to `endpoint`. Each application thread needs
    /// its own endpoint (its private hardware queue for responses).
    pub fn client(&self, endpoint: Endpoint) -> MpClient {
        MpClient {
            server: self.server_id,
            endpoint,
        }
    }

    /// Stops the server thread and returns the final protected state.
    ///
    /// The caller must ensure no client still has a request in flight
    /// (dropping or quiescing all clients first).
    pub fn shutdown(mut self) -> S {
        self.signal_shutdown();
        self.join
            .take()
            .expect("server already shut down")
            .join()
            .expect("MP-SERVER thread panicked")
    }
}

impl<S> MpServer<S> {
    fn signal_shutdown(&self) {
        // The sender id accompanying OP_SHUTDOWN is never used for a reply.
        let _ = self
            .fabric
            .sender()
            .send(self.server_id, &wire::request_at(0, OP_SHUTDOWN, 0, 0));
    }
}

impl<S> Drop for MpServer<S> {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            self.signal_shutdown();
            let _ = join.join();
        }
    }
}

/// Per-thread client of an [`MpServer`].
///
/// `apply` sends the request `{id, op, arg}` (Algorithm of §4.1 / Figure 2;
/// see [`wire`] for the telemetry-mode timestamp extension) and blocks on
/// the one-word response.
pub struct MpClient {
    server: EndpointId,
    endpoint: Endpoint,
}

impl MpClient {
    /// The id of this client's own endpoint.
    pub fn id(&self) -> EndpointId {
        self.endpoint.id()
    }
}

impl ApplyOp for MpClient {
    #[inline]
    fn apply(&mut self, op: u64, arg: u64) -> u64 {
        debug_assert_ne!(op, OP_SHUTDOWN, "opcode u64::MAX is reserved");
        let t0 = telemetry::now_ns();
        self.endpoint
            .send(
                self.server,
                &wire::request_at(self.endpoint.id().to_word(), op, arg, t0),
            )
            .expect("MP-SERVER vanished");
        let ret = self.endpoint.receive1();
        if telemetry::ENABLED {
            let track = self.endpoint.id().index() as u32;
            telemetry::record_span(track, Algo::MpServer, Lane::ClientWait, t0);
        }
        ret
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsync_udn::FabricConfig;

    fn counter_dispatch(state: &mut u64, op: u64, arg: u64) -> u64 {
        match op {
            0 => {
                let old = *state;
                *state += 1;
                old
            }
            1 => {
                *state += arg;
                *state
            }
            2 => *state,
            _ => unreachable!("unknown opcode"),
        }
    }

    #[test]
    fn single_client_counter() {
        let fabric = Arc::new(Fabric::new(FabricConfig::new(2)));
        let server = MpServer::spawn(
            fabric.register_any().unwrap(),
            0u64,
            counter_dispatch as fn(&mut u64, u64, u64) -> u64,
        );
        let mut c = server.client(fabric.register_any().unwrap());
        assert_eq!(c.apply(0, 0), 0);
        assert_eq!(c.apply(0, 0), 1);
        assert_eq!(c.apply(1, 10), 12);
        assert_eq!(c.apply(2, 0), 12);
        drop(c);
        assert_eq!(server.shutdown(), 12);
    }

    #[test]
    fn many_clients_sum_is_exact() {
        const THREADS: usize = 6;
        const OPS: u64 = 2_000;
        let fabric = Arc::new(Fabric::new(FabricConfig::new(8)));
        let server = MpServer::spawn(
            fabric.register_any().unwrap(),
            0u64,
            counter_dispatch as fn(&mut u64, u64, u64) -> u64,
        );
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let mut c = server.client(fabric.register_any().unwrap());
            joins.push(std::thread::spawn(move || {
                let mut seen = Vec::with_capacity(OPS as usize);
                for _ in 0..OPS {
                    seen.push(c.apply(0, 0));
                }
                seen
            }));
        }
        let mut all: Vec<u64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        // Fetch-and-increment results must be a permutation of 0..N — the
        // strongest possible evidence of mutual exclusion and atomicity.
        let expect: Vec<u64> = (0..THREADS as u64 * OPS).collect();
        assert_eq!(all, expect);
        assert_eq!(server.shutdown(), THREADS as u64 * OPS);
    }

    #[test]
    fn drop_without_shutdown_stops_server() {
        let fabric = Arc::new(Fabric::new(FabricConfig::new(2)));
        let server = MpServer::spawn(
            fabric.register_any().unwrap(),
            0u64,
            counter_dispatch as fn(&mut u64, u64, u64) -> u64,
        );
        drop(server); // must not hang
    }

    #[test]
    fn state_returned_on_shutdown_reflects_all_ops() {
        let fabric = Arc::new(Fabric::new(FabricConfig::new(2)));
        let server = MpServer::spawn(
            fabric.register_any().unwrap(),
            Vec::<u64>::new(),
            |state: &mut Vec<u64>, _op: u64, arg: u64| {
                state.push(arg);
                state.len() as u64
            },
        );
        let mut c = server.client(fabric.register_any().unwrap());
        for i in 0..5 {
            assert_eq!(c.apply(0, i * 7), i + 1);
        }
        drop(c);
        assert_eq!(server.shutdown(), vec![0, 7, 14, 21, 28]);
    }
}
