//! Serving a sharded KV store over the network.
//!
//! Starts a [`NetServer`] front door over a `ShardedKvStore`, talks to it
//! with the blocking [`NetClient`] — single calls, then a pipelined batch —
//! and shuts down gracefully, printing the server's drain report and the
//! runtime's stats JSON.
//!
//! Run with: `cargo run --example net_kv`

use std::sync::Arc;

use mpsync::net::{NetClient, NetServer, ServerConfig};
use mpsync::objects::seq::kv_ops;
use mpsync::objects::EMPTY;
use mpsync::runtime::{RuntimeConfig, ShardedKvStore};

fn main() {
    // The service: a 2-shard KV runtime on the default (MP-SERVER) backend.
    let store = Arc::new(ShardedKvStore::new(
        RuntimeConfig::new(2).with_max_sessions(8),
    ));

    // The wire front door. `:0` picks an ephemeral port; cap opcodes at the
    // KV dispatch range so a stray peer can't poke undefined ops.
    let server = NetServer::builder(store.clone())
        .config(ServerConfig::default().with_max_op(kv_ops::SUB as u8))
        .tcp("127.0.0.1:0")
        .expect("bind")
        .start()
        .expect("start server");
    let addr = server.tcp_addrs()[0];
    println!("serving KV on {addr}");

    // One-shot calls: (key, op, arg) words, the same shape a local
    // KvSession submits. PUT returns the previous value (EMPTY = none).
    let mut client = NetClient::connect_tcp(addr).expect("connect");
    assert_eq!(client.call(7, kv_ops::PUT as u8, 40).expect("put"), EMPTY);
    let now = client.call(7, kv_ops::ADD as u8, 2).expect("add");
    println!("key 7 = {now}");

    // Pipelining: queue many requests, one flush, then reap the acks — the
    // server coalesces the whole burst into few shard batches.
    for key in 0..100u64 {
        client.send(key, kv_ops::PUT as u8, key * 10);
    }
    client.flush().expect("flush");
    let mut acked = 0;
    for _ in 0..100 {
        let resp = client.recv().expect("recv").expect("server closed early");
        assert_eq!(resp.status, mpsync::net::frame::Status::Ok);
        acked += 1;
    }
    println!("pipelined burst: {acked} acks");
    drop(client);

    // Graceful shutdown: answer everything received, FIN, then report.
    let report = server.shutdown();
    print!("drain report: {report}");

    let store = Arc::try_unwrap(store)
        .ok()
        .expect("server released its handle");
    let (map, stats) = store.shutdown();
    println!("final keys: {} (key 7 = {:?})", map.len(), map.get(&7));
    println!("runtime stats: {}", stats.to_json());
}
