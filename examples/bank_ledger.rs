//! A bank ledger: arbitrary critical sections over non-trivial shared state,
//! executed by delegation (MP-SERVER).
//!
//! This shows the "universal construction" aspect of the paper's
//! constructions: the protected state is a whole accounts table, and
//! operations (transfers, audits) are ordinary sequential Rust executed by
//! the server on behalf of clients. Because only the server touches the
//! table, its cache lines never migrate — the locality argument of RCL and
//! MP-SERVER (§3, §4.1).
//!
//! Run with: `cargo run --release --example bank_ledger`

use std::sync::Arc;

use mpsync::sync::{ApplyOp, MpServer};
use mpsync::udn::{Fabric, FabricConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

const ACCOUNTS: usize = 64;
const INITIAL_BALANCE: u64 = 1_000;
const TELLERS: usize = 4;
const TRANSFERS_PER_TELLER: u64 = 100_000;

/// Opcodes of the ledger's critical sections.
mod ops {
    /// `arg = from<<32 | to` (amount fixed at 1 for compactness): move one
    /// unit between accounts; returns 1 on success, 0 if `from` is broke.
    pub const TRANSFER: u64 = 0;
    /// Audit: returns the sum of all balances (a long critical section).
    pub const AUDIT: u64 = 1;
    /// Balance of account `arg`.
    pub const BALANCE: u64 = 2;
}

struct Ledger {
    balances: Vec<u64>,
}

fn ledger_cs(state: &mut Ledger, op: u64, arg: u64) -> u64 {
    match op {
        ops::TRANSFER => {
            let from = (arg >> 32) as usize;
            let to = (arg & 0xffff_ffff) as usize;
            if state.balances[from] == 0 {
                0
            } else {
                state.balances[from] -= 1;
                state.balances[to] += 1;
                1
            }
        }
        ops::AUDIT => state.balances.iter().sum(),
        ops::BALANCE => state.balances[arg as usize],
        _ => panic!("unknown ledger opcode {op}"),
    }
}

fn main() {
    let fabric = Arc::new(Fabric::new(FabricConfig::new(8)));
    let ledger = Ledger {
        balances: vec![INITIAL_BALANCE; ACCOUNTS],
    };
    let server = MpServer::spawn(
        fabric.register_any().unwrap(),
        ledger,
        ledger_cs as fn(&mut Ledger, u64, u64) -> u64,
    );

    let expected_total = INITIAL_BALANCE * ACCOUNTS as u64;
    let mut joins = Vec::new();
    for t in 0..TELLERS {
        let mut client = server.client(fabric.register_any().unwrap());
        joins.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(t as u64);
            let mut done = 0u64;
            for i in 0..TRANSFERS_PER_TELLER {
                let from = rng.gen_range(0..ACCOUNTS) as u64;
                let to = rng.gen_range(0..ACCOUNTS) as u64;
                done += client.apply(ops::TRANSFER, (from << 32) | to);
                // Sporadic audits interleave long CSes with short ones; the
                // total must hold at *every* linearization point.
                if i % 10_000 == 0 {
                    let total = client.apply(ops::AUDIT, 0);
                    assert_eq!(total, expected_total, "money created or destroyed!");
                }
            }
            done
        }));
    }

    let mut completed = 0;
    for j in joins {
        completed += j.join().unwrap();
    }
    let ledger = server.shutdown();
    let final_total: u64 = ledger.balances.iter().sum();
    println!(
        "{} transfers completed across {TELLERS} tellers and {ACCOUNTS} accounts",
        completed
    );
    println!("final total: {final_total} (expected {expected_total})");
    assert_eq!(final_total, expected_total);
    let (min, max) = ledger
        .balances
        .iter()
        .fold((u64::MAX, 0), |(lo, hi), &b| (lo.min(b), hi.max(b)));
    println!("balance spread after the run: min {min}, max {max}");
}
