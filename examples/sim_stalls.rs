//! Drive the `tilesim` machine model directly: reproduce the paper's
//! Figure 4a insight — on a cache-coherent machine the servicing thread of
//! a shared-memory server/combiner spends most of its cycles stalled on the
//! coherence protocol, while a hardware-message-passing server barely
//! stalls at all.
//!
//! Run with: `cargo run --release --example sim_stalls`

use mpsync::tilesim::algos::Approach;
use mpsync::tilesim::workload::{run_counter_fixed, servicing_core};
use mpsync::tilesim::{MachineConfig, Metric};

fn main() {
    let cfg = MachineConfig::tile_gx8036();
    let threads = 10;
    let horizon = 300_000;

    println!(
        "simulated {}-core TILE-Gx-like machine, {threads} app threads, counter CS",
        cfg.cores()
    );
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12}",
        "approach", "stall/op", "total/op", "stall %", "served ops"
    );
    for a in Approach::ALL {
        let r = run_counter_fixed(cfg, a, threads, horizon, 7);
        let core = servicing_core(&r);
        let stalls = r.stalls_per_served_op(core);
        let total = r.cycles_per_served_op(core);
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>9.0}% {:>12}",
            a.label(),
            stalls,
            total,
            100.0 * stalls / total.max(1e-9),
            r.metric(core, Metric::Served),
        );
    }
    println!();
    println!("(The paper's Figure 4a: mp-server and HybComb show virtually no");
    println!(" stalls; shm-server and CC-Synch lose >50% of servicing cycles");
    println!(" to remote memory references.)");
}
