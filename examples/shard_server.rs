//! Sharded runtime tour: a keyed KV store served by `mpsync::runtime`,
//! showing key→shard striping, bounded submission, cross-shard fan-out
//! (`transfer`), graceful shutdown, and the per-shard stats the runtime
//! keeps (ops, batch-size distribution, queue pressure).
//!
//! Run with: `cargo run --release --example shard_server`
//! Pick a backend with e.g. `cargo run --release --example shard_server hybcomb`
//! (one of: mp-server, hybcomb, cc-synch, lock).

use std::sync::Arc;

use mpsync::runtime::{Backend, RuntimeConfig, RuntimeError, ShardedKvStore};

const SHARDS: usize = 4;
const SESSIONS: usize = 3;
const ACCOUNTS: u64 = 64;
const OPS_PER_SESSION: u64 = 50_000;

fn parse_backend(arg: Option<String>) -> Backend {
    let Some(arg) = arg else {
        return Backend::MpServer;
    };
    Backend::ALL
        .into_iter()
        .find(|b| b.label() == arg)
        .unwrap_or_else(|| {
            let labels: Vec<_> = Backend::ALL.iter().map(|b| b.label()).collect();
            eprintln!("unknown backend {arg:?}; pick one of {labels:?}");
            std::process::exit(2);
        })
}

fn main() {
    let backend = parse_backend(std::env::args().nth(1));
    let store = Arc::new(ShardedKvStore::new(
        RuntimeConfig::new(SHARDS)
            .with_backend(backend)
            // +1 for the seeding session below: the combining backends'
            // executor slots are a lifetime budget, not a concurrent one.
            .with_max_sessions(SESSIONS + 1)
            .with_max_batch(64)
            .with_queue_depth(32),
    ));

    // Seed every account with an opening balance; keys stripe across the
    // shards via the runtime's hash router.
    {
        let mut s = store.session().expect("session budget");
        for account in 0..ACCOUNTS {
            s.put(account, 1_000).expect("runtime open");
        }
    }

    // Concurrent tellers move money between accounts. A transfer is a
    // cross-shard fan-out: the runtime applies the debit and the credit in
    // a deterministic shard order, one admitted operation per shard.
    let mut joins = Vec::new();
    for t in 0..SESSIONS {
        let store = Arc::clone(&store);
        joins.push(std::thread::spawn(move || {
            let mut session = store.session().expect("session budget");
            let mut moved = 0u64;
            for i in 0..OPS_PER_SESSION {
                let from = (t as u64 + i) % ACCOUNTS;
                let to = (t as u64 + i * 7 + 1) % ACCOUNTS;
                if from == to {
                    continue;
                }
                match session.transfer(from, to, 1) {
                    Ok(_) => moved += 1,
                    Err(RuntimeError::Closed) => break,
                    Err(e) => panic!("transfer failed: {e}"),
                }
            }
            moved
        }));
    }
    let moved: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();

    // Graceful shutdown: close admissions, drain every in-flight op, stop
    // the shard executors, and hand back the merged state plus stats.
    let store = Arc::into_inner(store).expect("sessions died with their threads");
    let (kv, stats) = store.shutdown();

    let total: u64 = (0..ACCOUNTS)
        .map(|a| kv.get(&a).copied().unwrap_or(0))
        .sum();
    println!(
        "backend {:<10} {moved} transfers across {SHARDS} shards",
        backend.label()
    );
    println!(
        "ledger total {total} (conserved: {})",
        total == ACCOUNTS * 1_000
    );
    println!("{stats}");
    assert_eq!(total, ACCOUNTS * 1_000, "transfers must conserve money");
}
