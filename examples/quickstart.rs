//! Quickstart: a shared counter behind the two constructions from the
//! paper — MP-SERVER (delegation to a dedicated server core) and HYBCOMB
//! (combining; no dedicated core).
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use mpsync::objects::counter::CsCounter;
use mpsync::objects::Counter;
use mpsync::sync::{HybComb, MpServer};
use mpsync::udn::{Fabric, FabricConfig};

/// The critical section: opcode 0 = fetch-and-increment.
fn counter_cs(state: &mut u64, _op: u64, _arg: u64) -> u64 {
    let old = *state;
    *state += 1;
    old
}

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 100_000;

fn main() {
    // A fabric with TILE-Gx-like hardware message queues. Every thread that
    // wants to receive messages registers an endpoint (its private queue).
    let fabric = Arc::new(Fabric::new(FabricConfig::new(8)));

    // --- MP-SERVER: one dedicated server thread owns the counter. -------
    let server = MpServer::spawn(
        fabric.register_any().unwrap(),
        0u64,
        counter_cs as fn(&mut u64, u64, u64) -> u64,
    );
    let mut joins = Vec::new();
    for _ in 0..THREADS {
        let mut counter = CsCounter::new(server.client(fabric.register_any().unwrap()));
        joins.push(std::thread::spawn(move || {
            let mut last = 0;
            for _ in 0..OPS_PER_THREAD {
                last = counter.fetch_inc();
            }
            last
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let final_count = server.shutdown();
    println!("MP-SERVER : {THREADS} threads x {OPS_PER_THREAD} increments -> {final_count}");
    assert_eq!(final_count, THREADS as u64 * OPS_PER_THREAD);

    // --- HYBCOMB: no dedicated core; the combiner role floats. ----------
    let hybcomb = Arc::new(HybComb::new(
        THREADS,
        200, // MAX_OPS, the paper's default combining bound
        0u64,
        counter_cs as fn(&mut u64, u64, u64) -> u64,
    ));
    let mut joins = Vec::new();
    for _ in 0..THREADS {
        let mut counter = CsCounter::new(hybcomb.handle(fabric.register_any().unwrap()));
        joins.push(std::thread::spawn(move || {
            for _ in 0..OPS_PER_THREAD {
                counter.fetch_inc();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let stats = hybcomb.stats();
    let hybcomb = Arc::try_unwrap(hybcomb).unwrap_or_else(|_| panic!("handles still alive"));
    let final_count = hybcomb.into_state();
    println!("HYBCOMB   : {THREADS} threads x {OPS_PER_THREAD} increments -> {final_count}");
    println!(
        "            combining rate {:.1} ops/round, {:.2} CAS/op over {} rounds",
        stats.combining_rate(),
        stats.cas_per_op(),
        stats.rounds
    );
    assert_eq!(final_count, THREADS as u64 * OPS_PER_THREAD);
}
