//! Run the same contended-counter workload through every construction in
//! the repository and print wall-clock throughput — a native mini-version
//! of the paper's Figure 3a (with the fidelity caveat that the emulated
//! UDN cannot reproduce the hardware speedups; see DESIGN.md).
//!
//! Run with: `cargo run --release --example combining_showdown`

use std::sync::Arc;
use std::time::Instant;

use mpsync::objects::counter::{AtomicCounter, CsCounter};
use mpsync::objects::Counter;
use mpsync::sync::{
    CcSynch, FlatCombining, HybComb, LockCs, McsLock, MpServer, ShmServer, TasLock, TicketLock,
};
use mpsync::udn::{Fabric, FabricConfig};

type CounterFn = fn(&mut u64, u64, u64) -> u64;

fn counter_cs(state: &mut u64, _op: u64, _arg: u64) -> u64 {
    let old = *state;
    *state += 1;
    old
}

const DISPATCH: CounterFn = counter_cs;
const THREADS: usize = 4;
const OPS: u64 = 200_000;

fn run<C, F>(name: &str, mut mk: F)
where
    C: Counter + Send + 'static,
    F: FnMut(usize) -> C,
{
    let clients: Vec<C> = (0..THREADS).map(&mut mk).collect();
    let start = Instant::now();
    let joins: Vec<_> = clients
        .into_iter()
        .map(|mut c| {
            std::thread::spawn(move || {
                for _ in 0..OPS {
                    c.fetch_inc();
                }
            })
        })
        .collect();
    for j in joins {
        j.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    let mops = (THREADS as u64 * OPS) as f64 / secs / 1e6;
    println!("{name:<16} {mops:>8.2} Mops/s");
}

fn main() {
    println!("{THREADS} threads x {OPS} fetch-and-increments each\n");

    {
        let c = AtomicCounter::new();
        run("atomic-faa", |_| c.clone());
    }
    {
        let fabric = Arc::new(Fabric::new(FabricConfig::new(8)));
        let server = Arc::new(MpServer::spawn(
            fabric.register_any().unwrap(),
            0u64,
            DISPATCH,
        ));
        let s = Arc::clone(&server);
        let f = Arc::clone(&fabric);
        run("mp-server", move |_| {
            CsCounter::new(s.client(f.register_any().unwrap()))
        });
    }
    {
        let server = Arc::new(ShmServer::spawn(THREADS, 0u64, DISPATCH));
        let s = Arc::clone(&server);
        run("shm-server", move |_| CsCounter::new(s.client()));
    }
    {
        let fabric = Arc::new(Fabric::new(FabricConfig::new(8)));
        let hc = Arc::new(HybComb::new(THREADS, 200, 0u64, DISPATCH));
        let h = Arc::clone(&hc);
        let f = Arc::clone(&fabric);
        run("hybcomb", move |_| {
            CsCounter::new(h.handle(f.register_any().unwrap()))
        });
        let stats = hc.stats();
        println!(
            "  (combining rate {:.1}, CAS/op {:.2})",
            stats.combining_rate(),
            stats.cas_per_op()
        );
    }
    {
        let cs = Arc::new(CcSynch::new(THREADS, 200, 0u64, DISPATCH));
        let c = Arc::clone(&cs);
        run("cc-synch", move |_| CsCounter::new(c.handle()));
    }
    {
        let fc = Arc::new(FlatCombining::new(THREADS, 2, 0u64, DISPATCH));
        let f = Arc::clone(&fc);
        run("flat-combining", move |_| CsCounter::new(f.handle()));
    }
    {
        let cs = Arc::new(LockCs::<u64, TasLock, CounterFn>::new(0, DISPATCH));
        let c = Arc::clone(&cs);
        run("tas-lock", move |_| CsCounter::new(c.handle()));
    }
    {
        let cs = Arc::new(LockCs::<u64, TicketLock, CounterFn>::new(0, DISPATCH));
        let c = Arc::clone(&cs);
        run("ticket-lock", move |_| CsCounter::new(c.handle()));
    }
    {
        let cs = Arc::new(LockCs::<u64, McsLock, CounterFn>::new(0, DISPATCH));
        let c = Arc::clone(&cs);
        run("mcs-lock", move |_| CsCounter::new(c.handle()));
    }

    println!("\n(On this host the emulated UDN is itself shared memory; the");
    println!(" paper's hardware ordering is reproduced by `repro fig3a`.)");
}
