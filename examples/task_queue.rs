//! A parallelization-framework work queue — the use case the paper's
//! introduction motivates ("fast synchronization on simple concurrent
//! objects, such as queues, is key to the performance of parallelization
//! frameworks").
//!
//! A coordinator enqueues work items into a linearizable FIFO backed by
//! HYBCOMB (the paper's best construction that needs no dedicated core);
//! worker threads dequeue items, compute, and accumulate results through a
//! second HYBCOMB-protected reduction variable.
//!
//! Run with: `cargo run --release --example task_queue`

use std::sync::Arc;

use mpsync::objects::queue::CsQueue;
use mpsync::objects::seq::{queue_dispatch, SeqQueue};
use mpsync::objects::ConcurrentQueue;
use mpsync::sync::{ApplyOp, HybComb};
use mpsync::udn::{Fabric, FabricConfig};

const WORKERS: usize = 4;
const TASKS: u64 = 50_000;

type QueueFn = fn(&mut SeqQueue, u64, u64) -> u64;

fn reduction_cs(state: &mut u64, _op: u64, arg: u64) -> u64 {
    *state = state.wrapping_add(arg);
    *state
}

/// The per-task computation: a little integer crunching.
fn process(task: u64) -> u64 {
    (1..=task % 97).map(|x| x * x).sum::<u64>() % 1009
}

fn main() {
    let fabric = Arc::new(Fabric::new(FabricConfig::new(16)));
    let threads = WORKERS + 1; // workers + coordinator

    let queue = Arc::new(HybComb::new(
        threads,
        200,
        SeqQueue::new(),
        queue_dispatch as QueueFn,
    ));
    let sum = Arc::new(HybComb::new(
        threads,
        200,
        0u64,
        reduction_cs as fn(&mut u64, u64, u64) -> u64,
    ));

    let mut joins = Vec::new();
    for w in 0..WORKERS {
        let mut q = CsQueue::new(queue.handle(fabric.register_any().unwrap()));
        let mut acc = sum.handle(fabric.register_any().unwrap());
        joins.push(std::thread::spawn(move || {
            let mut processed = 0u64;
            let mut local = 0u64;
            loop {
                match q.dequeue() {
                    Some(task) if task == u64::MAX - 1 => break, // poison pill
                    Some(task) => {
                        local = local.wrapping_add(process(task));
                        processed += 1;
                        // Flush the local accumulator through the shared
                        // reduction every so often.
                        if processed.is_multiple_of(1024) {
                            acc.apply(0, local);
                            local = 0;
                        }
                    }
                    None => std::hint::spin_loop(),
                }
            }
            acc.apply(0, local);
            (w, processed)
        }));
    }

    // Coordinator: enqueue all tasks, then one poison pill per worker.
    let mut q = CsQueue::new(queue.handle(fabric.register_any().unwrap()));
    for t in 0..TASKS {
        q.enqueue(t);
    }
    for _ in 0..WORKERS {
        q.enqueue(u64::MAX - 1);
    }

    let mut total_processed = 0;
    for j in joins {
        let (w, processed) = j.join().unwrap();
        println!("worker {w}: {processed} tasks");
        total_processed += processed;
    }
    drop(q);

    let expected: u64 = (0..TASKS).fold(0u64, |a, t| a.wrapping_add(process(t)));
    let mut check = sum.handle(fabric.register_any().unwrap());
    let got = check.apply(0, 0);
    drop(check);
    println!("tasks processed: {total_processed} / {TASKS}");
    println!("reduction      : {got} (expected {expected})");
    assert_eq!(total_processed, TASKS);
    assert_eq!(got, expected);
    println!(
        "queue combining rate: {:.1} ops/round",
        queue.stats().combining_rate()
    );
}
